//! Hilbert index <-> axis coordinates, plus a float-point mapper.

use geographer_geometry::{Aabb, Point};

/// Maximum bits per axis such that `D * bits` fits into the `u64` key.
pub const fn max_bits(d: usize) -> u32 {
    (64 / d) as u32
}

/// Skilling's AxesToTranspose: turn axis coordinates into the "transposed"
/// Hilbert representation (in place).
fn axes_to_transpose<const D: usize>(x: &mut [u32; D], bits: u32) {
    debug_assert!(bits >= 1);
    let m: u32 = 1 << (bits - 1);
    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = m;
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Skilling's TransposeToAxes: inverse of [`axes_to_transpose`].
fn transpose_to_axes<const D: usize>(x: &mut [u32; D], bits: u32) {
    debug_assert!(bits >= 1);
    let n: u32 = 1 << bits; // 2^bits, may be 2^32? bits <= 31 enforced by callers for D=2.
    // Gray decode by H ^ (H/2).
    let mut t = x[D - 1] >> 1;
    for i in (1..D).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q: u32 = 2;
    while q != n {
        let p = q.wrapping_sub(1);
        for i in (0..D).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Interleave the transposed representation into a single `u64` key
/// (most significant Hilbert digit first).
fn interleave<const D: usize>(x: &[u32; D], bits: u32) -> u64 {
    let mut key: u64 = 0;
    for b in (0..bits).rev() {
        for v in x.iter() {
            key = (key << 1) | ((*v >> b) & 1) as u64;
        }
    }
    key
}

/// Inverse of [`interleave`].
fn deinterleave<const D: usize>(key: u64, bits: u32) -> [u32; D] {
    let mut x = [0u32; D];
    let total = bits * D as u32;
    for pos in 0..total {
        let bit = (key >> (total - 1 - pos)) & 1;
        let b = bits - 1 - pos / D as u32;
        let i = (pos % D as u32) as usize;
        x[i] |= (bit as u32) << b;
    }
    x
}

/// Hilbert index of the integer lattice cell `coords`, with `bits` of
/// resolution per axis. Each coordinate must be `< 2^bits`.
///
/// # Panics
/// If `bits == 0`, `bits > 64/D`, or a coordinate is out of range.
pub fn hilbert_index<const D: usize>(coords: [u32; D], bits: u32) -> u64 {
    assert!(bits >= 1 && bits <= max_bits(D).min(31), "bits out of range");
    if bits < 32 {
        for &c in &coords {
            assert!(c < (1 << bits), "coordinate {c} out of range for {bits} bits");
        }
    }
    hilbert_index_unchecked(coords, bits)
}

/// [`hilbert_index`] without the per-call range asserts, for callers that
/// already guarantee them — [`HilbertMapper::key_of`] validates `bits`
/// once at construction and clamps every coordinate in `cell_of`, so the
/// per-point checks would only re-prove invariants in the key-derivation
/// hot loop. Debug builds still verify.
#[inline]
fn hilbert_index_unchecked<const D: usize>(coords: [u32; D], bits: u32) -> u64 {
    debug_assert!(bits >= 1 && bits <= max_bits(D).min(31), "bits out of range");
    debug_assert!(
        bits >= 32 || coords.iter().all(|&c| c < (1 << bits)),
        "coordinate out of range for {bits} bits"
    );
    let mut x = coords;
    axes_to_transpose(&mut x, bits);
    interleave(&x, bits)
}

/// Axis coordinates of the lattice cell with the given Hilbert `index`.
pub fn hilbert_coords<const D: usize>(index: u64, bits: u32) -> [u32; D] {
    assert!(bits >= 1 && bits <= max_bits(D).min(31), "bits out of range");
    let mut x = deinterleave::<D>(index, bits);
    transpose_to_axes(&mut x, bits);
    x
}

/// Maps floating-point points inside a fixed bounding box to Hilbert keys.
///
/// All SPMD ranks must construct the mapper from the *global* bounding box
/// so keys are comparable across ranks.
#[derive(Debug, Clone)]
pub struct HilbertMapper<const D: usize> {
    bb: Aabb<D>,
    bits: u32,
    scale: [f64; D],
}

impl<const D: usize> HilbertMapper<D> {
    /// A mapper over `bb` with `bits` of resolution per axis.
    pub fn new(bb: Aabb<D>, bits: u32) -> Self {
        assert!(bits >= 1 && bits <= max_bits(D).min(31), "bits out of range");
        let cells = (1u64 << bits) as f64;
        let mut scale = [0.0; D];
        for i in 0..D {
            let ext = bb.extent(i);
            // Degenerate extents map everything to cell 0 in that axis.
            scale[i] = if ext > 0.0 { cells / ext } else { 0.0 };
        }
        HilbertMapper { bb, bits, scale }
    }

    /// Default resolution: the maximum that fits a `u64` key
    /// (32 bits/axis in 2D, 21 bits/axis in 3D — matching typical
    /// HSFC implementations).
    pub fn with_max_resolution(bb: Aabb<D>) -> Self {
        // 32 bits/axis in 2D would need the `1 << bits` guard; cap at 31 for
        // simple range checks, which is still ~2e9 cells per axis.
        let bits = max_bits(D).min(31);
        Self::new(bb, bits)
    }

    /// Resolution in bits per axis.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantize a point to its lattice cell (clamped into the box).
    pub fn cell_of(&self, p: &Point<D>) -> [u32; D] {
        let max_cell = if self.bits >= 32 { u32::MAX } else { (1u32 << self.bits) - 1 };
        let mut c = [0u32; D];
        for i in 0..D {
            let raw = (p[i] - self.bb.min[i]) * self.scale[i];
            c[i] = if raw <= 0.0 {
                0
            } else if raw >= max_cell as f64 {
                max_cell
            } else {
                raw as u32
            };
        }
        c
    }

    /// Hilbert key of `p`. One pass: quantize (clamped) and index without
    /// re-checking ranges the mapper already guarantees.
    pub fn key_of(&self, p: &Point<D>) -> u64 {
        hilbert_index_unchecked(self.cell_of(p), self.bits)
    }

    /// Center of the lattice cell with Hilbert key `key` (inverse of
    /// [`Self::key_of`] up to quantization).
    pub fn point_of(&self, key: u64) -> Point<D> {
        let c = hilbert_coords::<D>(key, self.bits);
        let mut p = [0.0; D];
        for i in 0..D {
            let s = if self.scale[i] > 0.0 { 1.0 / self.scale[i] } else { 0.0 };
            p[i] = self.bb.min[i] + (c[i] as f64 + 0.5) * s;
        }
        Point::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_2d_visits_four_cells_contiguously() {
        // A 1-bit 2D Hilbert curve visits the four unit cells in a "U";
        // successive cells must be grid neighbours.
        let mut cells = Vec::new();
        for idx in 0..4 {
            cells.push(hilbert_coords::<2>(idx, 1));
        }
        for w in cells.windows(2) {
            let dx = (w[0][0] as i64 - w[1][0] as i64).abs();
            let dy = (w[0][1] as i64 - w[1][1] as i64).abs();
            assert_eq!(dx + dy, 1, "consecutive cells must be adjacent: {cells:?}");
        }
    }

    #[test]
    fn bijective_2d_small() {
        let bits = 4;
        let n = 1u64 << (2 * bits);
        let mut seen = vec![false; n as usize];
        for x in 0..(1u32 << bits) {
            for y in 0..(1u32 << bits) {
                let idx = hilbert_index([x, y], bits);
                assert!(idx < n);
                assert!(!seen[idx as usize], "duplicate index {idx}");
                seen[idx as usize] = true;
                assert_eq!(hilbert_coords::<2>(idx, bits), [x, y]);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bijective_3d_small() {
        let bits = 3;
        let n = 1u64 << (3 * bits);
        let mut seen = vec![false; n as usize];
        for x in 0..(1u32 << bits) {
            for y in 0..(1u32 << bits) {
                for z in 0..(1u32 << bits) {
                    let idx = hilbert_index([x, y, z], bits);
                    assert!(!seen[idx as usize]);
                    seen[idx as usize] = true;
                    assert_eq!(hilbert_coords::<3>(idx, bits), [x, y, z]);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roundtrip_at_max_resolution_2d() {
        // Exhaustive bijectivity is infeasible at 31 bits/axis; sample the
        // lattice deterministically instead, including both extremes.
        let bits = max_bits(2).min(31);
        let max = (1u32 << bits) - 1;
        let mut rng = geographer_geometry::SplitMix64::new(2026);
        let mut cells: Vec<[u32; 2]> =
            vec![[0, 0], [max, max], [0, max], [max, 0], [1, max - 1]];
        cells.extend((0..500).map(|_| {
            [rng.next_below(1 << bits) as u32, rng.next_below(1 << bits) as u32]
        }));
        for c in cells {
            let idx = hilbert_index(c, bits);
            assert_eq!(hilbert_coords::<2>(idx, bits), c, "round-trip failed for {c:?}");
        }
    }

    #[test]
    fn roundtrip_at_max_resolution_3d() {
        let bits = max_bits(3).min(31); // 21 bits/axis
        let max = (1u32 << bits) - 1;
        let mut rng = geographer_geometry::SplitMix64::new(2027);
        let mut cells: Vec<[u32; 3]> = vec![[0, 0, 0], [max, max, max], [0, max, 0]];
        cells.extend((0..500).map(|_| {
            [
                rng.next_below(1 << bits) as u32,
                rng.next_below(1 << bits) as u32,
                rng.next_below(1 << bits) as u32,
            ]
        }));
        for c in cells {
            let idx = hilbert_index(c, bits);
            assert_eq!(hilbert_coords::<3>(idx, bits), c, "round-trip failed for {c:?}");
        }
    }

    #[test]
    fn index_zero_is_origin() {
        // The curve starts at the lattice origin at every resolution —
        // the anchor that makes keys comparable across resolutions.
        for bits in 1..=16 {
            assert_eq!(hilbert_index([0u32, 0], bits), 0);
            assert_eq!(hilbert_coords::<2>(0, bits), [0, 0]);
        }
        assert_eq!(hilbert_index([0u32, 0, 0], 8), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coordinate_beyond_resolution_panics() {
        let _ = hilbert_index([4u32, 0], 2); // 4 needs 3 bits
    }

    #[test]
    #[should_panic(expected = "bits out of range")]
    fn excessive_bits_panic_3d() {
        let _ = hilbert_index([0u32, 0, 0], 22); // 3 * 22 > 64
    }

    #[test]
    fn curve_is_continuous_2d() {
        // Consecutive Hilbert indices always map to adjacent lattice cells.
        let bits = 5;
        let n = 1u64 << (2 * bits);
        let mut prev = hilbert_coords::<2>(0, bits);
        for idx in 1..n {
            let cur = hilbert_coords::<2>(idx, bits);
            let manhattan: i64 = (0..2)
                .map(|i| (prev[i] as i64 - cur[i] as i64).abs())
                .sum();
            assert_eq!(manhattan, 1, "discontinuity at index {idx}");
            prev = cur;
        }
    }

    #[test]
    fn curve_is_continuous_3d() {
        let bits = 3;
        let n = 1u64 << (3 * bits);
        let mut prev = hilbert_coords::<3>(0, bits);
        for idx in 1..n {
            let cur = hilbert_coords::<3>(idx, bits);
            let manhattan: i64 = (0..3)
                .map(|i| (prev[i] as i64 - cur[i] as i64).abs())
                .sum();
            assert_eq!(manhattan, 1, "discontinuity at index {idx}");
            prev = cur;
        }
    }

    #[test]
    fn mapper_roundtrip_close() {
        let bb = Aabb::new(Point::new([-2.0, 3.0]), Point::new([4.0, 9.0]));
        let m = HilbertMapper::new(bb, 16);
        let p = Point::new([1.25, 7.5]);
        let key = m.key_of(&p);
        let q = m.point_of(key);
        // One cell is 6/65536 wide; round trip must stay within a cell.
        assert!(p.dist(&q) < 2.0 * 6.0 / 65536.0);
    }

    #[test]
    fn mapper_clamps_outliers() {
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let m = HilbertMapper::new(bb, 8);
        // Outside points clamp to the border cells instead of panicking.
        let _ = m.key_of(&Point::new([-5.0, 0.5]));
        let _ = m.key_of(&Point::new([2.0, 2.0]));
    }

    #[test]
    fn mapper_handles_degenerate_extent() {
        // All points on a vertical line: x-extent is zero.
        let bb = Aabb::new(Point::new([1.0, 0.0]), Point::new([1.0, 10.0]));
        let m = HilbertMapper::new(bb, 8);
        let k0 = m.key_of(&Point::new([1.0, 0.0]));
        let k1 = m.key_of(&Point::new([1.0, 10.0]));
        assert_ne!(k0, k1, "keys should still vary along y");
    }

    #[test]
    fn locality_nearby_points_nearby_keys() {
        // Spot-check the Hilbert locality property the paper relies on:
        // points close in space are usually close on the curve. We check the
        // weaker (always true) converse: consecutive keys are close in space.
        let bb = Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let m = HilbertMapper::new(bb, 8);
        let cell = 1.0 / 256.0;
        for key in (0..(1u64 << 16) - 1).step_by(97) {
            let a = m.point_of(key);
            let b = m.point_of(key + 1);
            assert!(a.dist(&b) < 1.5 * cell);
        }
    }
}
