//! Hilbert space-filling curves in 2 and 3 dimensions.
//!
//! The paper (Sec. 4.1) bootstraps balanced k-means by globally sorting all
//! points along a Hilbert curve, and one of the evaluated competitors
//! (zoltanSFC / HSFC) partitions by cutting the curve into `k` weighted
//! chunks. Both uses go through this crate.
//!
//! The conversion between axis coordinates and the Hilbert index uses John
//! Skilling's transpose algorithm ("Programming the Hilbert curve", AIP
//! 2004), which works for any dimension and any per-axis resolution.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

pub mod curve;

pub use curve::{hilbert_coords, hilbert_index, HilbertMapper};
