//! Recursive Coordinate Bisection (Berger & Bokhari 1987; Simon 1991).
//!
//! Repeatedly bisect the current region at the weighted median of the
//! widest coordinate direction. For k blocks, the recursion assigns
//! `⌊k/2⌋ : ⌈k/2⌉` of the weight to the two sides, so any k is supported.
//! Every median search is a distributed weighted quantile (bisection on the
//! coordinate with one weight-count allreduce per step), which is exactly
//! how Zoltan's RCB finds cuts in parallel.

use geographer_dsort::{weighted_quantiles_grouped, QuantileGroup};
use geographer_geometry::Point;
use geographer_parcomm::Comm;

use crate::{split_indices, Region};

/// Partition the rank-local `points` into `k` blocks with RCB.
/// Returns the block of each local point.
///
/// The recursion is processed *level-synchronously*: all regions at the
/// same tree depth find their cuts in one batched quantile search (two
/// bounding-box reductions plus one shared bisection per level), so the
/// collective count is `O(log k)`, matching the structure of Zoltan's
/// parallel RCB.
pub fn rcb_partition<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
) -> Vec<u32> {
    assert!(k >= 1);
    assert_eq!(points.len(), weights.len());
    let mut assignment = vec![0u32; points.len()];
    let mut level =
        vec![Region { k, offset: 0, idx: (0..points.len() as u32).collect() }];

    // Every rank processes the identical region tree in the identical
    // order: the collectives inside stay matched.
    while !level.is_empty() {
        let mut active: Vec<Region> = Vec::new();
        for region in level.drain(..) {
            if region.k == 1 {
                for &i in &region.idx {
                    assignment[i as usize] = region.offset;
                }
            } else {
                active.push(region);
            }
        }
        if active.is_empty() {
            break;
        }
        let g = active.len();

        // Batched global bounding boxes → widest dimension per region. One
        // fused min-reduce carries the mins and the negated maxs of every
        // region at this level.
        let mut bounds = vec![f64::INFINITY; 2 * g * D];
        let (mins, neg_maxs) = bounds.split_at_mut(g * D);
        for (j, region) in active.iter().enumerate() {
            for &i in &region.idx {
                let p = &points[i as usize];
                for d in 0..D {
                    mins[j * D + d] = mins[j * D + d].min(p[d]);
                    neg_maxs[j * D + d] = neg_maxs[j * D + d].min(-p[d]);
                }
            }
        }
        comm.allreduce_min_f64(&mut bounds);
        let (mins, neg_maxs) = bounds.split_at(g * D);
        let maxs: Vec<f64> = neg_maxs.iter().map(|x| -x).collect();

        // One grouped median search for the whole level.
        let mut dims = Vec::with_capacity(g);
        let groups: Vec<QuantileGroup> = active
            .iter()
            .enumerate()
            .map(|(j, region)| {
                let dim = (0..D)
                    .max_by(|&a, &b| {
                        (maxs[j * D + a] - mins[j * D + a])
                            .total_cmp(&(maxs[j * D + b] - mins[j * D + b]))
                    })
                    .expect("D > 0");
                dims.push(dim);
                let k_low = region.k / 2;
                QuantileGroup {
                    values: region.idx.iter().map(|&i| points[i as usize][dim]).collect(),
                    weights: region.idx.iter().map(|&i| weights[i as usize]).collect(),
                    alphas: vec![k_low as f64 / region.k as f64],
                }
            })
            .collect();
        let cuts = weighted_quantiles_grouped(comm, &groups);

        for ((region, group), cut) in active.iter().zip(&groups).zip(&cuts) {
            let k_low = region.k / 2;
            let (low, high) = split_indices(region, &group.values, cut[0]);
            level.push(Region { k: k_low, offset: region.offset, idx: low });
            level.push(Region {
                k: region.k - k_low,
                offset: region.offset + k_low as u32,
                idx: high,
            });
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::{run_spmd, SelfComm};

    fn random_points(n: usize, seed: u64) -> (Vec<Point<2>>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let pts = (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; n];
        (pts, w)
    }

    #[test]
    fn k1_assigns_everything_to_block_zero() {
        let (pts, w) = random_points(50, 1);
        let asg = rcb_partition(&SelfComm, &pts, &w, 1);
        assert!(asg.iter().all(|&b| b == 0));
    }

    #[test]
    fn bisection_cuts_along_widest_dim() {
        // Points stretched along x: the k=2 cut must split by x.
        let pts: Vec<Point<2>> =
            (0..100).map(|i| Point::new([i as f64, (i % 3) as f64 * 0.1])).collect();
        let w = vec![1.0; 100];
        let asg = rcb_partition(&SelfComm, &pts, &w, 2);
        for (i, &b) in asg.iter().enumerate() {
            assert_eq!(b, if i < 50 { 0 } else { 1 }, "point {i} on wrong side");
        }
    }

    #[test]
    fn respects_weights() {
        // Two heavy points on the left must balance many light ones on the
        // right.
        let mut pts = vec![Point::new([0.0, 0.0]), Point::new([0.1, 0.0])];
        let mut w = vec![50.0, 50.0];
        for i in 0..100 {
            pts.push(Point::new([1.0 + (i % 10) as f64 * 0.01, (i / 10) as f64 * 0.01]));
            w.push(1.0);
        }
        let asg = rcb_partition(&SelfComm, &pts, &w, 2);
        let w0: f64 = asg.iter().zip(&w).filter(|(b, _)| **b == 0).map(|(_, w)| w).sum();
        let total: f64 = w.iter().sum();
        assert!((w0 / total - 0.5).abs() < 0.05, "weighted split off: {}", w0 / total);
    }

    #[test]
    fn nonpower_of_two_k() {
        let (pts, w) = random_points(3000, 2);
        let asg = rcb_partition(&SelfComm, &pts, &w, 7);
        let mut counts = vec![0usize; 7];
        for &b in &asg {
            counts[b as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / (3000.0 / 7.0) < 1.05, "k=7 imbalance: {counts:?}");
    }

    #[test]
    fn spmd_matches_shared_memory() {
        let (pts, w) = random_points(2000, 3);
        let serial = rcb_partition(&SelfComm, &pts, &w, 8);
        let p = 4;
        let chunk = pts.len() / p;
        let results = run_spmd(p, |c| {
            let lo = c.rank() * chunk;
            let hi = if c.rank() == p - 1 { pts.len() } else { lo + chunk };
            rcb_partition(&c, &pts[lo..hi], &w[lo..hi], 8)
        });
        let distributed: Vec<u32> = results.into_iter().flatten().collect();
        assert_eq!(distributed, serial, "SPMD result must equal single-rank result");
    }

    #[test]
    fn blocks_are_axis_aligned_rectangles() {
        // RCB blocks are intersections of half-spaces: each block's
        // bounding boxes must not overlap another block's points (2D,
        // strict separation check on a coarse grid of probes).
        let (pts, w) = random_points(1500, 4);
        let k = 4;
        let asg = rcb_partition(&SelfComm, &pts, &w, k);
        // Check: for every pair of blocks, their bounding boxes intersect
        // in at most a degenerate band in one dimension. Weaker practical
        // check: no point of block b lies strictly inside the bbox core of
        // another block.
        let mut boxes: Vec<(Point<2>, Point<2>)> =
            vec![(Point::new([f64::INFINITY; 2]), Point::new([f64::NEG_INFINITY; 2])); k];
        for (p, &b) in pts.iter().zip(&asg) {
            let (mn, mx) = &mut boxes[b as usize];
            for d in 0..2 {
                mn[d] = mn[d].min(p[d]);
                mx[d] = mx[d].max(p[d]);
            }
        }
        let eps = 1e-9;
        for (p, &b) in pts.iter().zip(&asg) {
            for (ob, (mn, mx)) in boxes.iter().enumerate() {
                if ob == b as usize {
                    continue;
                }
                let inside_core = (0..2).all(|d| p[d] > mn[d] + eps && p[d] < mx[d] - eps);
                assert!(
                    !inside_core,
                    "point of block {b} strictly inside core of block {ob}"
                );
            }
        }
    }
}
