//! Recursive Inertial Bisection (Taylor & Nour-Omid; Williams 1991).
//!
//! Like RCB, but each region is cut orthogonally to its principal inertia
//! axis — the direction of largest weighted variance — instead of a
//! coordinate axis. The axis comes from the weighted covariance matrix of
//! the region (accumulated locally, combined with one allreduce) whose
//! dominant eigenvector we extract with a deterministic power iteration, so
//! all ranks agree on the axis bit-for-bit.

use geographer_dsort::{weighted_quantiles_grouped, QuantileGroup};
use geographer_geometry::Point;
use geographer_parcomm::Comm;

use crate::{split_indices, Region};

/// Power-iteration steps for the dominant eigenvector. The covariance
/// matrices here are tiny (D ≤ 3) and well-separated for real meshes;
/// 64 steps is far beyond convergence.
const POWER_ITERS: usize = 64;

/// Dominant eigenvector of a symmetric positive semidefinite `D×D` matrix
/// (row-major). Deterministic; falls back to e₀ for the zero matrix.
pub(crate) fn dominant_eigenvector<const D: usize>(m: &[[f64; D]; D]) -> [f64; D] {
    // Start from a fixed, slightly asymmetric vector so we don't sit on an
    // eigenvector boundary of symmetric inputs.
    let mut v = [0.0f64; D];
    for (i, x) in v.iter_mut().enumerate() {
        *x = 1.0 + 0.1 * (i as f64 + 1.0);
    }
    for _ in 0..POWER_ITERS {
        let mut next = [0.0f64; D];
        for r in 0..D {
            for c in 0..D {
                next[r] += m[r][c] * v[c];
            }
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            // Zero matrix: any direction works.
            let mut e0 = [0.0; D];
            e0[0] = 1.0;
            return e0;
        }
        for x in &mut next {
            *x /= norm;
        }
        v = next;
    }
    v
}

/// Partition the rank-local `points` into `k` blocks with RIB.
///
/// Level-synchronous like [`crate::rcb_partition`]: all regions of one
/// recursion depth batch their mean, covariance, and median searches, so a
/// level costs a fixed number of collectives.
pub fn rib_partition<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
) -> Vec<u32> {
    assert!(k >= 1);
    assert_eq!(points.len(), weights.len());
    let mut assignment = vec![0u32; points.len()];
    let mut level =
        vec![Region { k, offset: 0, idx: (0..points.len() as u32).collect() }];

    while !level.is_empty() {
        let mut active: Vec<Region> = Vec::new();
        for region in level.drain(..) {
            if region.k == 1 {
                for &i in &region.idx {
                    assignment[i as usize] = region.offset;
                }
            } else {
                active.push(region);
            }
        }
        if active.is_empty() {
            break;
        }
        let g = active.len();

        // Batched weighted means: one allreduce of g·(D+1) sums.
        let stride = D + 1;
        let mut sums = vec![0.0f64; g * stride];
        for (j, region) in active.iter().enumerate() {
            for &i in &region.idx {
                let (p, w) = (&points[i as usize], weights[i as usize]);
                for d in 0..D {
                    sums[j * stride + d] += w * p[d];
                }
                sums[j * stride + D] += w;
            }
        }
        comm.allreduce_sum_f64(&mut sums);
        let means: Vec<[f64; D]> = (0..g)
            .map(|j| {
                let total_w = sums[j * stride + D];
                let mut mean = [0.0f64; D];
                if total_w > 0.0 {
                    for d in 0..D {
                        mean[d] = sums[j * stride + d] / total_w;
                    }
                }
                mean
            })
            .collect();

        // Batched weighted covariances: one allreduce of g·D² sums.
        let mut cov_flat = vec![0.0f64; g * D * D];
        for (j, region) in active.iter().enumerate() {
            let mean = &means[j];
            for &i in &region.idx {
                let (p, w) = (&points[i as usize], weights[i as usize]);
                for r in 0..D {
                    for c in r..D {
                        cov_flat[j * D * D + r * D + c] +=
                            w * (p[r] - mean[r]) * (p[c] - mean[c]);
                    }
                }
            }
        }
        comm.allreduce_sum_f64(&mut cov_flat);

        // Principal axes + one grouped median search for the level.
        let groups: Vec<QuantileGroup> = active
            .iter()
            .enumerate()
            .map(|(j, region)| {
                let mut cov = [[0.0f64; D]; D];
                for r in 0..D {
                    for c in r..D {
                        cov[r][c] = cov_flat[j * D * D + r * D + c];
                        cov[c][r] = cov[r][c];
                    }
                }
                let axis = Point::new(dominant_eigenvector(&cov));
                let k_low = region.k / 2;
                QuantileGroup {
                    values: region
                        .idx
                        .iter()
                        .map(|&i| points[i as usize].dot(&axis))
                        .collect(),
                    weights: region.idx.iter().map(|&i| weights[i as usize]).collect(),
                    alphas: vec![k_low as f64 / region.k as f64],
                }
            })
            .collect();
        let cuts = weighted_quantiles_grouped(comm, &groups);

        for ((region, group), cut) in active.iter().zip(&groups).zip(&cuts) {
            let k_low = region.k / 2;
            let (low, high) = split_indices(region, &group.values, cut[0]);
            level.push(Region { k: k_low, offset: region.offset, idx: low });
            level.push(Region {
                k: region.k - k_low,
                offset: region.offset + k_low as u32,
                idx: high,
            });
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::{run_spmd, SelfComm};

    #[test]
    fn eigenvector_of_diagonal_matrix() {
        let m = [[4.0, 0.0], [0.0, 1.0]];
        let v = dominant_eigenvector(&m);
        assert!(v[0].abs() > 0.999, "should align with x: {v:?}");
    }

    #[test]
    fn eigenvector_of_rotated_matrix() {
        // Covariance of points along the diagonal y = x.
        let m = [[1.0, 1.0], [1.0, 1.0]];
        let v = dominant_eigenvector(&m);
        assert!(
            (v[0] - v[1]).abs() < 1e-9,
            "should align with the diagonal: {v:?}"
        );
    }

    #[test]
    fn eigenvector_zero_matrix_fallback() {
        let v = dominant_eigenvector(&[[0.0; 3]; 3]);
        assert_eq!(v, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn cuts_orthogonal_to_diagonal_cloud() {
        // Points stretched along the diagonal: RIB must separate the two
        // diagonal ends (which RCB would only do after picking x or y).
        let mut rng = SplitMix64::new(1);
        let pts: Vec<Point<2>> = (0..1000)
            .map(|_| {
                let t = rng.next_f64();
                // Narrow band around y = x.
                Point::new([t + rng.next_f64() * 0.01, t + rng.next_f64() * 0.01])
            })
            .collect();
        let w = vec![1.0; pts.len()];
        let asg = rib_partition(&SelfComm, &pts, &w, 2);
        // All low-diagonal points in one block, high-diagonal in the other.
        let low_block = pts
            .iter()
            .zip(&asg)
            .min_by(|a, b| (a.0[0] + a.0[1]).total_cmp(&(b.0[0] + b.0[1])))
            .map(|(_, &b)| b)
            .unwrap();
        for (p, &b) in pts.iter().zip(&asg) {
            let t = (p[0] + p[1]) / 2.0;
            if t < 0.45 {
                assert_eq!(b, low_block, "low end split");
            }
            if t > 0.55 {
                assert_ne!(b, low_block, "high end not separated");
            }
        }
    }

    #[test]
    fn balanced_on_weighted_input() {
        let mut rng = SplitMix64::new(2);
        let pts: Vec<Point<3>> = (0..2000)
            .map(|_| Point::new([rng.next_f64(), rng.next_f64(), rng.next_f64()]))
            .collect();
        let w: Vec<f64> = (0..2000).map(|i| 1.0 + (i % 7) as f64).collect();
        let k = 6;
        let asg = rib_partition(&SelfComm, &pts, &w, k);
        let mut bw = vec![0.0; k];
        for (&b, &wi) in asg.iter().zip(&w) {
            bw[b as usize] += wi;
        }
        let total: f64 = w.iter().sum();
        let max = bw.iter().cloned().fold(0.0, f64::max);
        assert!(max / (total / k as f64) < 1.05, "weighted imbalance: {bw:?}");
    }

    #[test]
    fn spmd_matches_shared_memory() {
        // RIB's covariance sums are inexact floating-point reductions, so a
        // multi-rank run follows a different (fixed) reduction tree than
        // the single-rank one — last-ulp differences may flip individual
        // points that lie exactly on a cut. Same contract as
        // tests/spmd_invariance.rs: ≥ 99.5 % agreement and intact balance.
        let mut rng = SplitMix64::new(3);
        let pts: Vec<Point<2>> =
            (0..1200).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; pts.len()];
        let k = 5;
        let serial = rib_partition(&SelfComm, &pts, &w, k);
        let results = run_spmd(3, |c| {
            let chunk = pts.len() / 3;
            let lo = c.rank() * chunk;
            let hi = if c.rank() == 2 { pts.len() } else { lo + chunk };
            rib_partition(&c, &pts[lo..hi], &w[lo..hi], k)
        });
        let distributed: Vec<u32> = results.into_iter().flatten().collect();
        let agree = distributed
            .iter()
            .zip(&serial)
            .filter(|(a, b)| a == b)
            .count() as f64
            / serial.len() as f64;
        assert!(agree >= 0.995, "only {:.2}% agreement with p=1", agree * 100.0);
        let mut counts = vec![0usize; k];
        for &b in &distributed {
            counts[b as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / (pts.len() as f64 / k as f64) < 1.05, "imbalance: {counts:?}");
    }
}
