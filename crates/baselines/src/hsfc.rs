//! Hilbert space-filling-curve partitioning (zoltanSFC analogue).
//!
//! Map every point to its Hilbert key over the *global* bounding box, then
//! cut the key space into `k` consecutive weighted chunks. The k−1 key
//! splitters are found with an exact distributed integer quantile search —
//! the same "bin and refine" idea as Zoltan's HSFC, collapsed into a
//! bisection.

use geographer_dsort::weighted_quantiles_u64;
use geographer_geometry::{Aabb, Point};
use geographer_parcomm::Comm;
use geographer_sfc::HilbertMapper;

/// Bits per axis for the partitioning curve. 16 gives 2^32 cells in 2D —
/// ample separation for reproduction-scale instances while keeping keys
/// comfortably inside u64 in 3D too.
const HSFC_BITS: u32 = 16;

/// Compute the global bounding box of a distributed point set — a single
/// fused min-reduce over `[mins | −maxs]`, like `geographer::global_bbox`.
pub fn global_bounding_box<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
) -> Aabb<D> {
    let mut buf = vec![f64::INFINITY; 2 * D];
    for p in points {
        for d in 0..D {
            buf[d] = buf[d].min(p[d]);
            buf[D + d] = buf[D + d].min(-p[d]);
        }
    }
    comm.allreduce_min_f64(&mut buf);
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        let (mut mn, mut mx) = (buf[d], -buf[D + d]);
        // Empty global sets produce an empty unit box at the origin.
        if mn > mx {
            (mn, mx) = (0.0, 1.0);
        }
        lo[d] = mn;
        hi[d] = mx;
    }
    Aabb::new(Point::new(lo), Point::new(hi))
}

/// Partition the rank-local `points` into `k` blocks by cutting the Hilbert
/// curve into weighted chunks.
pub fn hsfc_partition<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
) -> Vec<u32> {
    assert!(k >= 1);
    assert_eq!(points.len(), weights.len());
    if k == 1 {
        return vec![0; points.len()];
    }
    let bb = global_bounding_box(comm, points);
    let mapper = HilbertMapper::new(bb, HSFC_BITS);
    let keys: Vec<u64> = points.iter().map(|p| mapper.key_of(p)).collect();

    let alphas: Vec<f64> = (1..k).map(|i| i as f64 / k as f64).collect();
    let splitters = weighted_quantiles_u64(comm, &keys, weights, &alphas);

    keys.iter()
        .map(|&key| splitters.partition_point(|&s| s < key) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::{run_spmd, SelfComm};

    #[test]
    fn k1_trivial() {
        let pts = vec![Point::new([0.0, 0.0])];
        assert_eq!(hsfc_partition(&SelfComm, &pts, &[1.0], 1), vec![0]);
    }

    #[test]
    fn blocks_are_contiguous_on_curve() {
        let mut rng = SplitMix64::new(1);
        let pts: Vec<Point<2>> =
            (0..3000).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; pts.len()];
        let k = 8;
        let asg = hsfc_partition(&SelfComm, &pts, &w, k);
        // Sort points by key; block ids must be non-decreasing.
        let bb = global_bounding_box(&SelfComm, &pts);
        let mapper = HilbertMapper::new(bb, 16);
        let mut order: Vec<usize> = (0..pts.len()).collect();
        order.sort_by_key(|&i| mapper.key_of(&pts[i]));
        let seq: Vec<u32> = order.iter().map(|&i| asg[i]).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]), "blocks must be curve-contiguous");
    }

    #[test]
    fn balanced_weighted() {
        let mut rng = SplitMix64::new(2);
        let pts: Vec<Point<2>> =
            (0..5000).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w: Vec<f64> = (0..5000).map(|i| 1.0 + (i % 3) as f64).collect();
        let k = 10;
        let asg = hsfc_partition(&SelfComm, &pts, &w, k);
        let mut bw = vec![0.0; k];
        for (&b, &wi) in asg.iter().zip(&w) {
            bw[b as usize] += wi;
        }
        let total: f64 = w.iter().sum();
        let max = bw.iter().cloned().fold(0.0, f64::max);
        assert!(max / (total / k as f64) < 1.05, "{bw:?}");
    }

    #[test]
    fn spmd_matches_shared_memory() {
        let mut rng = SplitMix64::new(3);
        let pts: Vec<Point<3>> = (0..900)
            .map(|_| Point::new([rng.next_f64(), rng.next_f64(), rng.next_f64()]))
            .collect();
        let w = vec![1.0; pts.len()];
        let serial = hsfc_partition(&SelfComm, &pts, &w, 4);
        let results = run_spmd(3, |c| {
            let chunk = pts.len() / 3;
            let lo = c.rank() * chunk;
            hsfc_partition(&c, &pts[lo..lo + chunk], &w[lo..lo + chunk], 4)
        });
        let distributed: Vec<u32> = results.into_iter().flatten().collect();
        assert_eq!(distributed, serial);
    }

    #[test]
    fn global_bbox_merges_ranks() {
        let results = run_spmd(2, |c| {
            let pts = if c.rank() == 0 {
                vec![Point::new([0.0, -1.0])]
            } else {
                vec![Point::new([5.0, 3.0])]
            };
            global_bounding_box(&c, &pts)
        });
        for bb in results {
            assert_eq!(bb.min.coords(), &[0.0, -1.0]);
            assert_eq!(bb.max.coords(), &[5.0, 3.0]);
        }
    }
}
