//! The competitor partitioners from the paper's evaluation (Sec. 5.2.2):
//! Zoltan's Recursive Coordinate Bisection (RCB), Recursive Inertial
//! Bisection (RIB), MultiJagged (MJ) multisection, and Hilbert space-filling
//! curve partitioning (zoltanSFC / HSFC).
//!
//! Every algorithm is written SPMD over [`geographer_parcomm::Comm`]: each
//! rank holds a shard of the points and all global decisions (medians,
//! inertia axes, curve splitters) go through collectives — the same
//! communication structure as Zoltan's MPI implementations. Running with
//! [`geographer_parcomm::SelfComm`] gives the shared-memory variant for
//! free; [`partition_shared`] is that convenience wrapper.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

pub mod hsfc;
pub mod mj;
pub mod rcb;
pub mod rib;

use geographer_geometry::WeightedPoints;
use geographer_parcomm::{Comm, SelfComm};

pub use hsfc::hsfc_partition;
pub use mj::multi_jagged;
pub use rcb::rcb_partition;
pub use rib::rib_partition;

/// Identifier for the four baseline algorithms (used by the experiment
/// harness to iterate over tools).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Recursive coordinate bisection.
    Rcb,
    /// Recursive inertial bisection.
    Rib,
    /// MultiJagged multisection.
    MultiJagged,
    /// Hilbert space-filling curve cuts.
    Hsfc,
}

impl Baseline {
    /// All four baselines, in the order the paper's tables list them.
    pub const ALL: [Baseline; 4] =
        [Baseline::Hsfc, Baseline::MultiJagged, Baseline::Rcb, Baseline::Rib];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Rcb => "RCB",
            Baseline::Rib => "RIB",
            Baseline::MultiJagged => "MultiJagged",
            Baseline::Hsfc => "HSFC",
        }
    }

    /// Run this baseline SPMD: `points`/`weights` are the rank-local shard;
    /// returns the block id of each local point.
    pub fn partition_spmd<const D: usize, C: Comm>(
        &self,
        comm: &C,
        points: &[geographer_geometry::Point<D>],
        weights: &[f64],
        k: usize,
    ) -> Vec<u32> {
        match self {
            Baseline::Rcb => rcb_partition(comm, points, weights, k),
            Baseline::Rib => rib_partition(comm, points, weights, k),
            Baseline::MultiJagged => multi_jagged(comm, points, weights, k),
            Baseline::Hsfc => hsfc_partition(comm, points, weights, k),
        }
    }
}

/// Shared-memory convenience wrapper: partition a whole point set with one
/// call (single-rank SPMD).
pub fn partition_shared<const D: usize>(
    algo: Baseline,
    pts: &WeightedPoints<D>,
    k: usize,
) -> Vec<u32> {
    algo.partition_spmd(&SelfComm, &pts.points, &pts.weights, k)
}

/// Shared bookkeeping for the recursive partitioners: a region is a set of
/// local point indices plus the range of block ids it will be divided into.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    /// Number of blocks this region still has to produce.
    pub k: usize,
    /// First block id owned by this region.
    pub offset: u32,
    /// Rank-local indices of the points in this region.
    pub idx: Vec<u32>,
}

/// Split `region` at `threshold` over projected `values` (same order as
/// `region.idx`); returns `(low_side, high_side)` index lists.
pub(crate) fn split_indices(
    region: &Region,
    values: &[f64],
    threshold: f64,
) -> (Vec<u32>, Vec<u32>) {
    debug_assert_eq!(values.len(), region.idx.len());
    let mut low = Vec::new();
    let mut high = Vec::new();
    for (&i, &v) in region.idx.iter().zip(values) {
        if v <= threshold {
            low.push(i);
        } else {
            high.push(i);
        }
    }
    (low, high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::Point;

    #[test]
    fn names_are_stable() {
        assert_eq!(Baseline::Rcb.name(), "RCB");
        assert_eq!(Baseline::ALL.len(), 4);
    }

    #[test]
    fn split_indices_partitions() {
        let region = Region { k: 2, offset: 0, idx: vec![0, 1, 2, 3] };
        let values = [0.1, 0.9, 0.5, 0.5];
        let (lo, hi) = split_indices(&region, &values, 0.5);
        assert_eq!(lo, vec![0, 2, 3]);
        assert_eq!(hi, vec![1]);
    }

    /// Every baseline must respect block-id ranges and produce a roughly
    /// balanced unweighted partition on uniform data.
    #[test]
    fn all_baselines_balanced_on_uniform_points() {
        use geographer_geometry::SplitMix64;
        let mut rng = SplitMix64::new(5);
        let n = 4000;
        let pts: Vec<Point<2>> =
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let wp = WeightedPoints::unweighted(pts);
        for algo in Baseline::ALL {
            for k in [2usize, 5, 8] {
                let asg = partition_shared(algo, &wp, k);
                assert_eq!(asg.len(), n);
                let mut counts = vec![0usize; k];
                for &b in &asg {
                    assert!((b as usize) < k, "{}: block out of range", algo.name());
                    counts[b as usize] += 1;
                }
                let max = *counts.iter().max().unwrap() as f64;
                let avg = n as f64 / k as f64;
                assert!(
                    max / avg < 1.06,
                    "{} k={k}: imbalance {} too high ({counts:?})",
                    algo.name(),
                    max / avg - 1.0
                );
            }
        }
    }
}
