//! MultiJagged (Deveci, Rajamanickam, Devine, Çatalyürek, TPDS 2016).
//!
//! A generalization of recursive bisection: instead of cutting each region
//! in two, MJ cuts it into `m ≈ k^(1/L)` slabs at once (L = levels left),
//! cycling through the coordinate dimensions. One region therefore needs a
//! single multi-way quantile search (all `m−1` cut lines found together),
//! which gives MJ its shallow recursion depth — the property behind its
//! superior scaling in the paper's Fig. 3.

use geographer_dsort::{weighted_quantiles_grouped, QuantileGroup};
use geographer_geometry::Point;
use geographer_parcomm::Comm;

use crate::Region;

/// Choose how many parts to cut a region with `k` target blocks into, with
/// `levels_left` recursion levels remaining (≥ 1).
fn fanout(k: usize, levels_left: usize) -> usize {
    if levels_left <= 1 {
        return k;
    }
    let m = (k as f64).powf(1.0 / levels_left as f64).round() as usize;
    m.clamp(2, k)
}

/// Split `k` into `m` nearly equal integer parts (sizes differ by ≤ 1,
/// larger ones first).
fn split_k(k: usize, m: usize) -> Vec<usize> {
    let q = k / m;
    let r = k % m;
    (0..m).map(|i| q + usize::from(i < r)).collect()
}

/// Partition the rank-local `points` into `k` blocks with MultiJagged.
///
/// All regions of one recursion level find *all* their cut lines in a
/// single grouped quantile search — MJ's defining property: for 2D and
/// `k = m²`, two collective phases suffice no matter how large `k` is.
pub fn multi_jagged<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
) -> Vec<u32> {
    assert!(k >= 1);
    assert_eq!(points.len(), weights.len());
    let mut assignment = vec![0u32; points.len()];
    // (region, dimension to cut, levels left in this sweep)
    let root = Region { k, offset: 0, idx: (0..points.len() as u32).collect() };
    let mut level: Vec<(Region, usize, usize)> = vec![(root, 0usize, D)];

    while !level.is_empty() {
        let mut active: Vec<(Region, usize, usize)> = Vec::new();
        for (region, dim, levels_left) in level.drain(..) {
            if region.k == 1 {
                for &i in &region.idx {
                    assignment[i as usize] = region.offset;
                }
            } else {
                active.push((region, dim, levels_left));
            }
        }
        if active.is_empty() {
            break;
        }

        // One grouped multi-cut search for the whole level.
        let mut parts_per_region = Vec::with_capacity(active.len());
        let groups: Vec<QuantileGroup> = active
            .iter()
            .map(|(region, dim, levels_left)| {
                let m = fanout(region.k, (*levels_left).max(1));
                let parts = split_k(region.k, m);
                // Cut fractions are cumulative block counts.
                let mut alphas = Vec::with_capacity(m - 1);
                let mut acc = 0usize;
                for &part in &parts[..m - 1] {
                    acc += part;
                    alphas.push(acc as f64 / region.k as f64);
                }
                parts_per_region.push(parts);
                QuantileGroup {
                    values: region.idx.iter().map(|&i| points[i as usize][*dim]).collect(),
                    weights: region.idx.iter().map(|&i| weights[i as usize]).collect(),
                    alphas,
                }
            })
            .collect();
        let all_cuts = weighted_quantiles_grouped(comm, &groups);

        for (((region, dim, levels_left), group), (cuts, parts)) in active
            .iter()
            .zip(&groups)
            .zip(all_cuts.iter().zip(&parts_per_region))
        {
            let m = parts.len();
            // Route points into the m slabs.
            let mut slabs: Vec<Vec<u32>> = vec![Vec::new(); m];
            for (&i, &v) in region.idx.iter().zip(&group.values) {
                let s = cuts.partition_point(|&c| c < v);
                slabs[s].push(i);
            }
            let next_dim = (dim + 1) % D;
            let next_levels = if *levels_left > 1 { levels_left - 1 } else { D };
            let mut offset = region.offset;
            for (slab, &part_k) in slabs.into_iter().zip(parts) {
                level.push((
                    Region { k: part_k, offset, idx: slab },
                    next_dim,
                    next_levels,
                ));
                offset += part_k as u32;
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::{run_spmd, SelfComm};

    #[test]
    fn fanout_square_for_2d() {
        assert_eq!(fanout(16, 2), 4);
        assert_eq!(fanout(9, 2), 3);
        assert_eq!(fanout(8, 2), 3); // rounds sqrt(8)≈2.83 to 3
        assert_eq!(fanout(5, 1), 5);
        assert_eq!(fanout(27, 3), 3);
    }

    #[test]
    fn split_k_sums_and_balances() {
        assert_eq!(split_k(10, 3), vec![4, 3, 3]);
        assert_eq!(split_k(9, 3), vec![3, 3, 3]);
        assert_eq!(split_k(7, 7), vec![1; 7]);
        for k in 1..40 {
            for m in 1..=k {
                let parts = split_k(k, m);
                assert_eq!(parts.iter().sum::<usize>(), k);
                let mx = parts.iter().max().unwrap();
                let mn = parts.iter().min().unwrap();
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn square_k_gives_grid_of_rectangles() {
        // k = 9 on uniform points: the first level cuts x into 3 slabs,
        // second level y — block boundaries must align to 1/3 lines.
        let mut rng = SplitMix64::new(1);
        let pts: Vec<Point<2>> =
            (0..9000).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; pts.len()];
        let asg = multi_jagged(&SelfComm, &pts, &w, 9);
        for (p, &b) in pts.iter().zip(&asg) {
            let col = (p[0] * 3.0) as usize;
            // The block id encodes column-major traversal: column = b / 3.
            let expected_col = (b / 3) as usize;
            // Quantile cuts sit near (not exactly at) 1/3 boundaries: allow
            // points close to boundaries to fall either way.
            let x_frac = (p[0] * 3.0).fract();
            if x_frac > 0.05 && x_frac < 0.95 {
                assert_eq!(col, expected_col, "point {p:?} in block {b}");
            }
        }
    }

    #[test]
    fn balanced_for_awkward_k() {
        let mut rng = SplitMix64::new(2);
        let pts: Vec<Point<2>> =
            (0..7000).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; pts.len()];
        for k in [3usize, 7, 11, 13] {
            let asg = multi_jagged(&SelfComm, &pts, &w, k);
            let mut counts = vec![0usize; k];
            for &b in &asg {
                counts[b as usize] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            assert!(
                max / (pts.len() as f64 / k as f64) < 1.05,
                "k={k}: {counts:?}"
            );
        }
    }

    #[test]
    fn three_d_partition_valid() {
        let mut rng = SplitMix64::new(3);
        let pts: Vec<Point<3>> = (0..4000)
            .map(|_| Point::new([rng.next_f64(), rng.next_f64(), rng.next_f64()]))
            .collect();
        let w = vec![1.0; pts.len()];
        let asg = multi_jagged(&SelfComm, &pts, &w, 8);
        let mut counts = vec![0usize; 8];
        for &b in &asg {
            counts[b as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "no block may be empty: {counts:?}");
    }

    #[test]
    fn spmd_matches_shared_memory() {
        let mut rng = SplitMix64::new(4);
        let pts: Vec<Point<2>> =
            (0..1600).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; pts.len()];
        let serial = multi_jagged(&SelfComm, &pts, &w, 6);
        let results = run_spmd(4, |c| {
            let chunk = pts.len() / 4;
            let lo = c.rank() * chunk;
            let hi = lo + chunk;
            multi_jagged(&c, &pts[lo..hi], &w[lo..hi], 6)
        });
        let distributed: Vec<u32> = results.into_iter().flatten().collect();
        assert_eq!(distributed, serial);
    }
}
