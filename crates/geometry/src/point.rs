//! Fixed-dimension points and the handful of vector operations the
//! partitioners need. `D` is a const generic so distance loops unroll.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A point (or vector) in `D`-dimensional Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Point<D> {
    /// Construct from raw coordinates.
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// The origin.
    pub const fn zero() -> Self {
        Point([0.0; D])
    }

    /// Borrow the coordinate array.
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.0[i] * self.0[i];
        }
        acc
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.0[i] * other.0[i];
        }
        acc
    }

    /// Component-wise scaling by `s`.
    #[inline]
    pub fn scale(&self, s: f64) -> Self {
        let mut out = self.0;
        for v in &mut out {
            *v *= s;
        }
        Point(out)
    }

    /// Whether every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    /// Weighted mean of `points`; returns `None` when the weight sum is zero
    /// (the balanced k-means uses this to detect emptied clusters).
    pub fn weighted_mean(points: &[Self], weights: &[f64]) -> Option<Self> {
        assert_eq!(points.len(), weights.len());
        let mut acc = [0.0; D];
        let mut wsum = 0.0;
        for (p, &w) in points.iter().zip(weights) {
            for i in 0..D {
                acc[i] += p.0[i] * w;
            }
            wsum += w;
        }
        if wsum <= 0.0 {
            return None;
        }
        for v in &mut acc {
            *v /= wsum;
        }
        Some(Point(acc))
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] += rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> AddAssign for Point<D> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] -= rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        self.scale(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn three_d_ops() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!((a + b).coords(), &[5.0, 7.0, 9.0]);
        assert_eq!((b - a).coords(), &[3.0, 3.0, 3.0]);
        assert_eq!((a * 2.0).coords(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn weighted_mean_basic() {
        let pts = [Point::new([0.0, 0.0]), Point::new([2.0, 2.0])];
        let m = Point::weighted_mean(&pts, &[1.0, 1.0]).unwrap();
        assert_eq!(m.coords(), &[1.0, 1.0]);
        let m = Point::weighted_mean(&pts, &[3.0, 1.0]).unwrap();
        assert_eq!(m.coords(), &[0.5, 0.5]);
    }

    #[test]
    fn weighted_mean_zero_weight_is_none() {
        let pts = [Point::new([1.0, 1.0])];
        assert!(Point::weighted_mean(&pts, &[0.0]).is_none());
        assert!(Point::<2>::weighted_mean(&[], &[]).is_none());
    }

    #[test]
    fn index_and_mutate() {
        let mut p = Point::new([1.0, 2.0]);
        p[0] = 7.0;
        assert_eq!(p[0], 7.0);
        let mut q = Point::new([1.0, 1.0]);
        q += p;
        assert_eq!(q.coords(), &[8.0, 3.0]);
    }
}
