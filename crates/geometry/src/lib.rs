//! d-dimensional geometric primitives for the Geographer reproduction.
//!
//! Everything in the partitioning stack works over [`Point<D>`] — a fixed
//! dimension `D` known at compile time (the paper evaluates `D ∈ {2, 3}`) —
//! plus axis-aligned bounding boxes ([`Aabb`]) and weighted point sets
//! ([`WeightedPoints`]).
//!
//! The crate is dependency-free; the deterministic [`rng::SplitMix64`]
//! generator exists so that algorithm crates can shuffle/sample without
//! pulling in `rand`.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

pub mod aabb;
pub mod point;
pub mod rng;

pub use aabb::Aabb;
pub use point::Point;
pub use rng::SplitMix64;

/// A point set with per-point weights, the input shape accepted by every
/// partitioner in this workspace (Sec. 4 of the paper: "We also accept ...
/// an optional weight function w : P → R+").
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPoints<const D: usize> {
    /// Point coordinates.
    pub points: Vec<Point<D>>,
    /// Non-negative per-point weights; same length as `points`.
    pub weights: Vec<f64>,
}

impl<const D: usize> WeightedPoints<D> {
    /// Wrap a point set with unit weights (the unweighted case of the paper).
    pub fn unweighted(points: Vec<Point<D>>) -> Self {
        let weights = vec![1.0; points.len()];
        Self { points, weights }
    }

    /// Wrap a point set with explicit weights.
    ///
    /// # Panics
    /// If lengths differ or any weight is negative/non-finite.
    pub fn new(points: Vec<Point<D>>, weights: Vec<f64>) -> Self {
        assert_eq!(points.len(), weights.len(), "points/weights length mismatch");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self { points, weights }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Bounding box of the point set, `None` when empty.
    pub fn bounding_box(&self) -> Option<Aabb<D>> {
        Aabb::from_points(&self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_gets_unit_weights() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([1.0, 2.0])];
        let wp = WeightedPoints::unweighted(pts);
        assert_eq!(wp.weights, vec![1.0, 1.0]);
        assert_eq!(wp.total_weight(), 2.0);
        assert_eq!(wp.len(), 2);
        assert!(!wp.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = WeightedPoints::new(vec![Point::new([0.0_f64; 2])], vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = WeightedPoints::new(vec![Point::new([0.0_f64; 2])], vec![-1.0]);
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let wp = WeightedPoints::unweighted(vec![
            Point::new([0.0, 5.0]),
            Point::new([2.0, -1.0]),
            Point::new([1.0, 1.0]),
        ]);
        let bb = wp.bounding_box().unwrap();
        assert_eq!(bb.min.coords(), &[0.0, -1.0]);
        assert_eq!(bb.max.coords(), &[2.0, 5.0]);
    }
}
