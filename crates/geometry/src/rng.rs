//! A minimal deterministic PRNG (SplitMix64) so that algorithm crates can
//! shuffle and subsample reproducibly without a `rand` dependency.
//!
//! The balanced k-means sampling initialization (Sec. 4.5 of the paper:
//! "each process permutes its local points randomly and then picks the
//! first 100 as initial sample") only needs an unbiased shuffle; SplitMix64
//! passes BigCrush-level statistical tests and is two instructions per word.

/// SplitMix64 generator (Steele, Lea & Flood; the JDK's `SplittableRandom`).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (with rejection to remove modulo bias).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn golden_stream_is_platform_independent() {
        // Cross-platform anchor: SplitMix64 is pure integer arithmetic, so
        // these exact outputs must hold on every OS/architecture/toolchain.
        // Seeded mesh generation and the sampling init both consume this
        // stream; if it ever changes, every "same seed ⇒ same partition"
        // guarantee in the test suite silently changes meaning.
        let mut rng = SplitMix64::new(0xDEAD_BEEF);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                5395234354446855067,
                16021672434157553954,
                153047824787635229,
                8387618351419058064,
            ]
        );
    }

    #[test]
    fn clone_forks_an_identical_stream() {
        let mut a = SplitMix64::new(99);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_hits_everything() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(v, (0..1000).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn mean_of_uniform_draws_is_centered() {
        let mut rng = SplitMix64::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
