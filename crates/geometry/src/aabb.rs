//! Axis-aligned bounding boxes.
//!
//! The balanced k-means pruning step (Sec. 4.4 of the paper) needs the
//! *minimum* distance between a cluster center and the box around the
//! process-local points: if even the closest corner of the box is farther
//! (in effective distance) than the second-best candidate found so far, the
//! center can be skipped for every local point. (Algorithm 1 of the paper
//! prints `maxDist`, which would make the skip unsound; see DESIGN.md
//! erratum list.)

use crate::point::Point;

/// An axis-aligned box `[min, max]` in `D` dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const D: usize> {
    /// Component-wise lower corner.
    pub min: Point<D>,
    /// Component-wise upper corner.
    pub max: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// Box spanning exactly the given corners.
    ///
    /// # Panics
    /// If `min > max` in any dimension.
    pub fn new(min: Point<D>, max: Point<D>) -> Self {
        for i in 0..D {
            assert!(min[i] <= max[i], "inverted box in dimension {i}");
        }
        Aabb { min, max }
    }

    /// Smallest box containing all `points`; `None` when empty.
    pub fn from_points(points: &[Point<D>]) -> Option<Self> {
        let first = *points.first()?;
        let mut bb = Aabb { min: first, max: first };
        for p in &points[1..] {
            bb.grow(p);
        }
        Some(bb)
    }

    /// Extend the box to cover `p`.
    pub fn grow(&mut self, p: &Point<D>) {
        for i in 0..D {
            if p[i] < self.min[i] {
                self.min[i] = p[i];
            }
            if p[i] > self.max[i] {
                self.max[i] = p[i];
            }
        }
    }

    /// Union of two boxes.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = *self;
        out.grow(&other.min);
        out.grow(&other.max);
        out
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.min[i] <= p[i] && p[i] <= self.max[i])
    }

    /// Geometric center.
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = 0.5 * (self.min[i] + self.max[i]);
        }
        Point::new(c)
    }

    /// Side length in dimension `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.max[i] - self.min[i]
    }

    /// Index of the widest dimension (used by RCB/MultiJagged cut selection).
    pub fn widest_dim(&self) -> usize {
        (0..D)
            .max_by(|&a, &b| self.extent(a).total_cmp(&self.extent(b)))
            .expect("D > 0")
    }

    /// Length of the box diagonal.
    pub fn diagonal(&self) -> f64 {
        self.max.dist(&self.min)
    }

    /// Squared distance from `p` to the closest point of the box
    /// (zero when `p` is inside).
    #[inline]
    pub fn min_dist_sq(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.min[i] {
                self.min[i] - p[i]
            } else if p[i] > self.max[i] {
                p[i] - self.max[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Distance from `p` to the closest point of the box.
    #[inline]
    pub fn min_dist(&self, p: &Point<D>) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared distance from `p` to the farthest corner of the box.
    #[inline]
    pub fn max_dist_sq(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = (p[i] - self.min[i]).abs().max((p[i] - self.max[i]).abs());
            acc += d * d;
        }
        acc
    }

    /// Distance from `p` to the farthest corner of the box.
    #[inline]
    pub fn max_dist(&self, p: &Point<D>) -> f64 {
        self.max_dist_sq(p).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb<2> {
        Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]))
    }

    #[test]
    fn from_points_and_contains() {
        let pts = vec![
            Point::new([0.5, 0.5]),
            Point::new([-1.0, 2.0]),
            Point::new([3.0, 0.0]),
        ];
        let bb = Aabb::from_points(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert!(!bb.contains(&Point::new([-2.0, 0.0])));
        assert!(Aabb::<2>::from_points(&[]).is_none());
    }

    #[test]
    fn containment_is_inclusive_on_faces_and_corners() {
        // The SFC mapper and kd-tree pruning both treat boxes as closed
        // sets; a point exactly on a face or corner must count as inside.
        let bb = unit_box();
        for p in [
            [0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [1.0, 0.0], // corners
            [0.5, 0.0], [0.5, 1.0], [0.0, 0.5], [1.0, 0.5], // face midpoints
        ] {
            assert!(bb.contains(&Point::new(p)), "{p:?} should be inside");
            assert_eq!(bb.min_dist(&Point::new(p)), 0.0);
        }
    }

    #[test]
    fn containment_rejects_epsilon_outside() {
        let bb = unit_box();
        let eps = 1e-12;
        for p in [
            [-eps, 0.5], [1.0 + eps, 0.5], [0.5, -eps], [0.5, 1.0 + eps],
            [1.0 + eps, 1.0 + eps],
        ] {
            assert!(!bb.contains(&Point::new(p)), "{p:?} should be outside");
            assert!(bb.min_dist_sq(&Point::new(p)) > 0.0);
        }
    }

    #[test]
    fn degenerate_boxes_contain_exactly_their_span() {
        // Zero extent in every dimension: a single point.
        let p = Point::new([2.0, -3.0]);
        let dot = Aabb::new(p, p);
        assert!(dot.contains(&p));
        assert!(!dot.contains(&Point::new([2.0, -3.0 + 1e-15])));
        assert_eq!(dot.diagonal(), 0.0);
        assert_eq!(dot.center().coords(), p.coords());

        // Zero extent in one dimension: a segment.
        let seg = Aabb::new(Point::new([0.0, 1.0]), Point::new([5.0, 1.0]));
        assert!(seg.contains(&Point::new([3.0, 1.0])));
        assert!(!seg.contains(&Point::new([3.0, 1.0 - 1e-15])));
        assert_eq!(seg.extent(1), 0.0);
        assert_eq!(seg.widest_dim(), 0);
    }

    #[test]
    fn from_single_point_is_degenerate_but_valid() {
        let p = Point::new([7.0, 8.0]);
        let bb = Aabb::from_points(&[p]).unwrap();
        assert_eq!(bb.min, p);
        assert_eq!(bb.max, p);
        assert!(bb.contains(&p));
    }

    #[test]
    fn grow_with_boundary_point_is_noop() {
        let mut bb = unit_box();
        let before = bb;
        bb.grow(&Point::new([1.0, 0.0]));
        assert_eq!(bb, before);
    }

    #[test]
    fn min_dist_from_corner_region_uses_both_axes() {
        // Outside past a corner, the closest box point is that corner, so
        // the distance has contributions from every violated axis.
        let bb = unit_box();
        let p = Point::new([-3.0, -4.0]);
        assert_eq!(bb.min_dist(&p), 5.0);
        assert_eq!(bb.min_dist_sq(&p), 25.0);
    }

    #[test]
    fn negative_and_mixed_coordinate_boxes() {
        let bb = Aabb::new(Point::new([-2.0, -2.0]), Point::new([-1.0, 3.0]));
        assert!(bb.contains(&Point::new([-1.5, 0.0])));
        assert!(!bb.contains(&Point::new([0.0, 0.0])));
        assert_eq!(bb.min_dist(&Point::new([0.0, 0.0])), 1.0);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let bb = unit_box();
        assert_eq!(bb.min_dist(&Point::new([0.3, 0.7])), 0.0);
    }

    #[test]
    fn min_and_max_dist_outside() {
        let bb = unit_box();
        let p = Point::new([2.0, 0.5]);
        assert_eq!(bb.min_dist(&p), 1.0);
        // Farthest corner is (0, 0) or (0, 1): dist = sqrt(4 + 0.25).
        assert!((bb.max_dist(&p) - (4.25_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn widest_dim_and_diagonal() {
        let bb = Aabb::new(Point::new([0.0, 0.0, 0.0]), Point::new([1.0, 5.0, 2.0]));
        assert_eq!(bb.widest_dim(), 1);
        assert!((bb.diagonal() - (1.0_f64 + 25.0 + 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(bb.extent(2), 2.0);
    }

    #[test]
    fn merge_covers_both() {
        let a = unit_box();
        let b = Aabb::new(Point::new([2.0, -1.0]), Point::new([3.0, 0.5]));
        let m = a.merge(&b);
        assert!(m.contains(&Point::new([0.0, 1.0])));
        assert!(m.contains(&Point::new([3.0, -1.0])));
    }

    #[test]
    #[should_panic(expected = "inverted box")]
    fn inverted_box_panics() {
        let _ = Aabb::new(Point::new([1.0, 0.0]), Point::new([0.0, 1.0]));
    }

    #[test]
    fn center_is_midpoint() {
        assert_eq!(unit_box().center().coords(), &[0.5, 0.5]);
    }
}
