//! Microbenchmark: the distributed-sort and quantile primitives (single
//! rank; the collective structure is benchmarked by the scaling binaries).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use geographer_dsort::{sample_sort_by_key, weighted_quantiles_f64};
use geographer_geometry::SplitMix64;
use geographer_parcomm::SelfComm;

fn bench_dsort(c: &mut Criterion) {
    let mut rng = SplitMix64::new(2);
    let keys: Vec<u64> = (0..200_000).map(|_| rng.next_u64()).collect();
    let values: Vec<f64> = (0..200_000).map(|_| rng.next_f64()).collect();
    let weights: Vec<f64> = (0..200_000).map(|_| 1.0 + rng.next_f64()).collect();

    let mut g = c.benchmark_group("dsort");
    g.sample_size(15);
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("sample_sort_200k", |b| {
        b.iter(|| sample_sort_by_key(&SelfComm, black_box(keys.clone()), |&x| x))
    });
    g.bench_function("quantiles_200k_x15", |b| {
        let alphas: Vec<f64> = (1..16).map(|i| i as f64 / 16.0).collect();
        b.iter(|| {
            weighted_quantiles_f64(&SelfComm, black_box(&values), black_box(&weights), &alphas)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dsort);
criterion_main!(benches);
