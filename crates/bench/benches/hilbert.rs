//! Microbenchmark: Hilbert key computation (the per-point cost of the
//! bootstrap's indexing phase).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use geographer_geometry::{Aabb, Point, SplitMix64};
use geographer_sfc::HilbertMapper;

fn bench_hilbert(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    let pts2: Vec<Point<2>> =
        (0..100_000).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
    let pts3: Vec<Point<3>> = (0..100_000)
        .map(|_| Point::new([rng.next_f64(), rng.next_f64(), rng.next_f64()]))
        .collect();
    let bb2 = Aabb::from_points(&pts2).unwrap();
    let bb3 = Aabb::from_points(&pts3).unwrap();
    let m2 = HilbertMapper::new(bb2, 16);
    let m3 = HilbertMapper::new(bb3, 16);

    let mut g = c.benchmark_group("hilbert_keys");
    g.sample_size(20);
    g.throughput(Throughput::Elements(pts2.len() as u64));
    g.bench_function("2d_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &pts2 {
                acc = acc.wrapping_add(m2.key_of(black_box(p)));
            }
            acc
        })
    });
    g.throughput(Throughput::Elements(pts3.len() as u64));
    g.bench_function("3d_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &pts3 {
                acc = acc.wrapping_add(m3.key_of(black_box(p)));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hilbert);
criterion_main!(benches);
