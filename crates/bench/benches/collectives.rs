//! Micro-benchmarks of the native collective algorithms in
//! `geographer_parcomm`: allreduce (recursive doubling), broadcast
//! (single deposit), and alltoallv (move-once mailboxes) at several rank
//! counts and buffer sizes.
//!
//! Each iteration spawns one SPMD region and runs `REPS` back-to-back
//! collectives inside it, so the measured time amortizes the thread-spawn
//! cost and is dominated by the collective schedule itself (barriers +
//! payload movement). Throughput is reported as bytes of one rank's
//! payload processed per rep.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use geographer_parcomm::{run_spmd, Comm};

/// Collectives executed per SPMD region (amortizes thread spawn).
const REPS: usize = 32;

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_sum_f64");
    g.sample_size(10);
    for p in [2usize, 4, 8] {
        for m in [64usize, 4096] {
            g.throughput(Throughput::Bytes((REPS * m * 8) as u64));
            g.bench_function(&format!("p{p}/m{m}"), |b| {
                b.iter(|| {
                    run_spmd(p, |comm| {
                        let mut buf = vec![comm.rank() as f64; m];
                        for _ in 0..REPS {
                            comm.allreduce_sum_f64(&mut buf);
                        }
                        black_box(buf[0])
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    g.sample_size(10);
    for p in [2usize, 8] {
        for m in [64usize, 4096] {
            g.throughput(Throughput::Bytes((REPS * m * 8) as u64));
            g.bench_function(&format!("p{p}/m{m}"), |b| {
                b.iter(|| {
                    run_spmd(p, |comm| {
                        let mut acc = 0.0f64;
                        for _ in 0..REPS {
                            let v = if comm.rank() == 0 {
                                Some(vec![1.0f64; m])
                            } else {
                                None
                            };
                            let out = comm.broadcast(0, v);
                            acc += out[m - 1];
                        }
                        black_box(acc)
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv");
    g.sample_size(10);
    for p in [2usize, 4, 8] {
        for m_per_peer in [64usize, 1024] {
            g.throughput(Throughput::Bytes((REPS * p * m_per_peer * 8) as u64));
            g.bench_function(&format!("p{p}/m{m_per_peer}"), |b| {
                b.iter(|| {
                    run_spmd(p, |comm| {
                        let mut total = 0usize;
                        for _ in 0..REPS {
                            let sends: Vec<Vec<u64>> = (0..p)
                                .map(|d| vec![d as u64; m_per_peer])
                                .collect();
                            let recv = comm.alltoallv(sends);
                            total += recv.iter().map(Vec::len).sum::<usize>();
                        }
                        black_box(total)
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_exscan(c: &mut Criterion) {
    let mut g = c.benchmark_group("exscan_sum_u64");
    g.sample_size(10);
    for p in [2usize, 4, 8] {
        g.throughput(Throughput::Elements(REPS as u64));
        g.bench_function(&format!("p{p}"), |b| {
            b.iter(|| {
                run_spmd(p, |comm| {
                    let mut acc = 0u64;
                    for i in 0..REPS as u64 {
                        acc = acc.wrapping_add(comm.exscan_sum_u64(i + comm.rank() as u64));
                    }
                    black_box(acc)
                })
            })
        });
    }
    g.finish();
}

criterion_group!(collectives, bench_allreduce, bench_broadcast, bench_alltoallv, bench_exscan);
criterion_main!(collectives);
