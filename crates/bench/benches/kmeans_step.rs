//! Microbenchmark: balanced k-means assignment work, with and without the
//! geometric optimizations (the per-iteration cost behind Table 1's
//! `time` column and the Sec. 4.3 skip-rate claim).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geographer::{balanced_kmeans, Config};
use geographer_geometry::{Point, SplitMix64};
use geographer_parcomm::SelfComm;

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let n = 30_000;
    let pts: Vec<Point<2>> =
        (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
    let w = vec![1.0; n];
    let k = 16;
    let centers: Vec<Point<2>> =
        (0..k).map(|i| pts[i * n / k + n / (2 * k)]).collect();

    let mut g = c.benchmark_group("balanced_kmeans_30k_k16");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    let base = Config { max_iterations: 10, sampling_init: false, ..Config::default() };
    g.bench_function("optimized", |b| {
        b.iter(|| balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &base))
    });
    let naive = Config { hamerly_bounds: false, bbox_pruning: false, ..base.clone() };
    g.bench_function("naive", |b| {
        b.iter(|| balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &naive))
    });
    g.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
