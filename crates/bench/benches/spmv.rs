//! Microbenchmark: distributed SpMV with halo exchange on a partitioned
//! Delaunay mesh (the machinery behind the `timeSpMVComm` column).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geographer::Config;
use geographer_bench::{run_tool, Tool};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::{run_spmd, SelfComm};
use geographer_spmv::spmv_comm_time;

fn bench_spmv(c: &mut Criterion) {
    let mesh = delaunay_unit_square(20_000, 5);
    let k = 8;
    let out = run_tool(Tool::Geographer, &mesh, k, 1, &Config::default());

    let mut g = c.benchmark_group("spmv_20k_k8");
    g.sample_size(10);
    g.throughput(Throughput::Elements(mesh.n() as u64));
    g.bench_function("single_rank", |b| {
        b.iter(|| spmv_comm_time(&SelfComm, &mesh.graph, &out.assignment, k, 3))
    });
    g.bench_function("4_ranks_halo_exchange", |b| {
        b.iter(|| run_spmd(4, |comm| spmv_comm_time(&comm, &mesh.graph, &out.assignment, k, 3)))
    });
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
