//! Microbenchmark: one shared-memory partitioning run per tool on the same
//! input (the single-rank cost baseline of Fig. 4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use geographer::Config;
use geographer_baselines::{partition_shared, Baseline};
use geographer_geometry::{Point, SplitMix64, WeightedPoints};

fn bench_partitioners(c: &mut Criterion) {
    let mut rng = SplitMix64::new(4);
    let n = 50_000;
    let pts: Vec<Point<2>> =
        (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
    let wp = WeightedPoints::unweighted(pts);
    let k = 16;

    let mut g = c.benchmark_group("partition_50k_k16");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    for algo in Baseline::ALL {
        g.bench_function(algo.name(), |b| b.iter(|| partition_shared(algo, &wp, k)));
    }
    g.bench_function("Geographer", |b| {
        b.iter(|| geographer::partition(&wp, k, &Config::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
