//! Minimal aligned text-table printer for the experiment binaries.

/// Accumulates rows of strings and prints them with aligned columns.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row/header width mismatch");
        self.rows.push(cells);
    }

    /// Render with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a ratio like the paper's Fig. 2 (baseline = 1.0).
pub fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.3}")
    } else {
        "inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["tool", "cut"]);
        t.row(vec!["Geographer", "123"]);
        t.row(vec!["RCB", "45678"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("tool"));
        assert!(lines[2].ends_with("123"));
        assert!(lines[3].ends_with("45678"));
        // All data lines are equally long.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(25e-6), "25.0us");
        assert_eq!(fmt_ratio(1.2345), "1.234");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
    }
}
