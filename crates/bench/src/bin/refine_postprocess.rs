//! Extension experiment: the graph-based local refinement the paper points
//! to in Sec. 2 ("a graph-based postprocessing, for example based on the
//! Fiduccia-Mattheyses local refinement heuristic, is easily possible, but
//! outside the scope of this paper"). We run every geometric tool, then
//! apply the FM-style boundary refinement of `geographer-refine` and
//! report the edge-cut improvement.

use geographer::Config;
use geographer_bench::{run_tool_configured, scaled, RunConfig, TextTable, Tool};
use geographer_graph::imbalance;
use geographer_mesh::families::{trace_like, tric_like};
use geographer_refine::RefineConfig;

fn main() {
    let n = scaled(20_000);
    let k = 16;
    println!("# Extension: FM-style refinement after geometric partitioning (k = {k})");
    let meshes = [("tric-like", tric_like(n, 71)), ("trace-like", trace_like(n, 72))];
    let mut table = TextTable::new(vec![
        "mesh", "tool", "cutBefore", "cutAfter", "improvement%", "moves", "imbalanceAfter",
    ]);
    // The refinement post-pass is a driver-level opt-in: flag it on the run
    // config and every tool row carries its before/after cut.
    let rc = RunConfig {
        core: Config::default(),
        refine: Some(RefineConfig::default()),
        ..RunConfig::default()
    };
    for (name, mesh) in &meshes {
        for tool in Tool::ALL {
            let out = run_tool_configured(tool, mesh, k, 2, &rc);
            let report = out.refine.expect("refine post-pass was requested");
            let imb = imbalance(&out.assignment, &mesh.weights, k);
            table.row(vec![
                name.to_string(),
                tool.name().to_string(),
                report.cut_before.to_string(),
                report.cut_after.to_string(),
                format!(
                    "{:.1}",
                    100.0 * (report.cut_before - report.cut_after) as f64
                        / report.cut_before.max(1) as f64
                ),
                report.moves.to_string(),
                format!("{imb:.4}"),
            ]);
        }
    }
    table.print();
    println!("\n(geometric partitions leave a few percent of cut on the table;");
    println!(" the wrinkled HSFC boundaries should gain the most)");
}
