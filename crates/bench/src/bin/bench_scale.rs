//! Scaling benchmark: the full Geographer pipeline on uniform random
//! point sets at n ∈ {100k, 1M, 4M} and p ∈ {1, 4, 8}, emitting
//! `BENCH_scale.json` with *per-phase and per-assignment nanoseconds per
//! point* — the numbers the tier-1 perf gate
//! (`crates/bench/tests/perf_gate.rs`) holds the assignment hot path
//! accountable against.
//!
//! The instances are raw point clouds (no Delaunay graph — triangulating
//! 4M points is not what this benchmark measures), solved through the
//! planner exactly like every other bench. Per-phase seconds are the
//! maximum across ranks of each rank's own pipeline timings; ns/point
//! divides by the *global* n, so the figure is comparable across p.
//! `assignment` is the wall time spent inside k-means assignment passes
//! (kernel + block-weight accumulation), max-reduced across ranks.
//!
//! Two reference blocks quantify the SoA kernel against the pre-PR
//! array-of-structs path, which is kept bitwise-identical precisely so
//! the speedup is measurable on the same machine, instance, and
//! iteration count:
//!
//! * `kernel_reference` — sampling off, a fixed handful of movement
//!   iterations over the full point set: every assignment pass runs the
//!   restructured kernel, so this isolates the kernel itself.
//! * `pipeline_reference` — the default configuration. Sampling-init
//!   rounds deliberately take the AoS path in both configs (random
//!   access beats gather/scatter on shuffled actives), so the end-to-end
//!   ratio is the kernel win diluted by that shared, identical cost.
//!
//! The gate and reference figures are minima over [`REPEATS`] runs per
//! configuration — on a shared VM a single measurement is at the mercy
//! of whichever run catches a noisy window, and the minimum estimates
//! the undisturbed cost.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_scale
//! $ cargo run --release -p geographer_bench --bin bench_scale -- --smoke
//! ```

use std::fmt::Write as _;

use geographer::{balanced_kmeans, Config};
use geographer_bench::{solve_plan_view, write_bench_json, PlanRecipe, PlanRun, Tool};
use geographer_geometry::Point;
use geographer_mesh::density::sample_by_density;
use geographer_parcomm::SelfComm;
use geographer_planner::MeshView;

/// Repeats for the gate and reference measurements, reporting the
/// minimum per configuration: on a shared VM the minimum is the
/// noise-robust estimator of the undisturbed cost.
const REPEATS: usize = 3;

/// The SoA-vs-AoS reference instance: n = 1M (the acceptance size) when
/// the run includes it, otherwise the largest size present (smoke).
fn reference_n(sizes: &[usize]) -> usize {
    if sizes.contains(&1_000_000) { 1_000_000 } else { *sizes.last().unwrap() }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] =
        if smoke { &[100_000] } else { &[100_000, 1_000_000, 4_000_000] };
    let ps = [1usize, 4, 8];
    let k = 8;
    let seed = 77;
    let cfg = Config::default();

    // The first solve in a process pays one-time costs the later ones
    // don't (heap-growth page faults, lazy binding, VM frequency ramp) —
    // measured at up to 2× the steady-state assignment time. Burn them
    // on a small instance that never gets reported.
    {
        let n = 50_000;
        let points = sample_by_density(n, seed, |_| 1.0);
        let weights = vec![1.0f64; n];
        let view = MeshView { points: &points, weights: &weights, graph: None };
        let _ = solve_plan_view(
            view,
            &PlanRecipe::flat("warmup", Tool::Geographer, k, cfg.clone()),
            1,
            None,
        );
    }

    let mut runs = String::new();
    let mut first = true;
    let mut gate_kmeans_ns = 0.0f64;
    let mut gate_assign_ns = 0.0f64;
    let mut pipeline_json = String::new();
    for &n in sizes {
        // Uniform density ⇒ every rejection-sampling attempt accepts:
        // O(n) generation, same RNG family as the mesh benches.
        let points = sample_by_density(n, seed, |_| 1.0);
        let weights = vec![1.0f64; n];
        let view = MeshView { points: &points, weights: &weights, graph: None };
        for p in ps {
            let recipe = PlanRecipe::flat("scale", Tool::Geographer, k, cfg.clone());
            let run = solve_plan_view(view, &recipe, p, None);
            let ph = run.phase_max.expect("flat stateful solve reports phase timings");
            let st = run.plan.stats.expect("geographer solve reports stats");
            let npp = |s: f64| PlanRun::<2>::ns_per_point(s, n);
            if n == sizes[0] && p == 1 {
                // Min over REPEATS: the machine this baseline is meant
                // for is a noisy shared VM, and the minimum is the
                // noise-robust estimator of the undisturbed cost — the
                // gate envelope is anchored to it.
                let (mut kmeans_s, mut assign_s) =
                    (ph.kmeans, st.assignment_seconds);
                for _ in 1..REPEATS {
                    let r = solve_plan_view(view, &recipe, p, None);
                    kmeans_s = kmeans_s.min(r.phase_max.unwrap().kmeans);
                    assign_s =
                        assign_s.min(r.plan.stats.unwrap().assignment_seconds);
                }
                gate_kmeans_ns = npp(kmeans_s);
                gate_assign_ns = npp(assign_s);
            }
            let _ = write!(
                runs,
                "{}    {{\"n\": {}, \"p\": {}, \"k\": {}, \
                 \"wall_serialized_s\": {:.4}, \"wall_max_rank_s\": {:.4}, \
                 \"total_ns_per_point\": {:.1},\n     \"phases\": {{\
                 \"sfc_index\": {{\"seconds\": {:.4}, \"ns_per_point\": {:.1}}}, \
                 \"redistribute\": {{\"seconds\": {:.4}, \"ns_per_point\": {:.1}}}, \
                 \"kmeans\": {{\"seconds\": {:.4}, \"ns_per_point\": {:.1}}}, \
                 \"writeback\": {{\"seconds\": {:.4}, \"ns_per_point\": {:.1}}}}},\n     \
                 \"assignment\": {{\"seconds\": {:.4}, \"ns_per_point\": {:.1}}}}}",
                if first { "" } else { ",\n" },
                n,
                p,
                k,
                run.wall_seconds,
                run.wall_max_rank_s,
                npp(ph.total()),
                ph.sfc_index,
                npp(ph.sfc_index),
                ph.redistribute,
                npp(ph.redistribute),
                ph.kmeans,
                npp(ph.kmeans),
                ph.writeback,
                npp(ph.writeback),
                st.assignment_seconds,
                npp(st.assignment_seconds),
            );
            first = false;
            eprintln!(
                "n={n} p={p}: wall(serialized)={:.2}s max-rank={:.2}s \
                 kmeans={:.1} ns/pt assign={:.1} ns/pt total={:.1} ns/pt",
                run.wall_seconds,
                run.wall_max_rank_s,
                npp(ph.kmeans),
                npp(st.assignment_seconds),
                npp(ph.total()),
            );
        }

        // Pipeline reference at n = 1M (the ISSUE 7 acceptance size; the
        // largest size in smoke runs), single rank: the pre-PR AoS
        // kernel under the default config, same machine and instance.
        // Alternating AoS/SoA repeats, min per config — on a shared VM a
        // single pair is at the mercy of whichever run catches a noisy
        // window.
        if n == reference_n(sizes) {
            let (mut soa_s, mut aos_s) = (f64::INFINITY, f64::INFINITY);
            for rep in 0..REPEATS {
                let aos = solve_plan_view(
                    view,
                    &PlanRecipe::flat(
                        "scale-aos",
                        Tool::Geographer,
                        k,
                        Config { soa_kernel: false, ..cfg.clone() },
                    ),
                    1,
                    None,
                );
                let soa = solve_plan_view(
                    view,
                    &PlanRecipe::flat("scale-soa", Tool::Geographer, k, cfg.clone()),
                    1,
                    None,
                );
                if rep == 0 {
                    assert_eq!(
                        soa.plan.assignment, aos.plan.assignment,
                        "SoA and AoS kernels must produce identical partitions"
                    );
                }
                soa_s = soa_s.min(soa.plan.stats.unwrap().assignment_seconds);
                aos_s = aos_s.min(aos.plan.stats.unwrap().assignment_seconds);
            }
            let _ = write!(
                pipeline_json,
                "{{\"n\": {}, \"p\": 1, \"repeats\": {REPEATS}, \
                 \"assignment_s_soa\": {:.4}, \
                 \"assignment_s_aos\": {:.4}, \"soa_speedup\": {:.2}}}",
                n,
                soa_s,
                aos_s,
                aos_s / soa_s.max(1e-12),
            );
            eprintln!(
                "pipeline reference n={n}: soa={soa_s:.3}s aos={aos_s:.3}s \
                 speedup={:.2}x",
                aos_s / soa_s.max(1e-12)
            );
        }
    }

    // Kernel reference at n = 1M: sampling off, every assignment pass a
    // full-set identity round — the regime the SoA restructuring
    // targets and the acceptance evidence for its speedup. Fixed
    // centers and iteration budget keep the two configs on
    // bitwise-identical trajectories.
    let kernel_json = {
        let n = reference_n(sizes);
        let points = sample_by_density(n, seed, |_| 1.0);
        let weights = vec![1.0f64; n];
        let centers: Vec<Point<2>> =
            (0..k).map(|i| points[i * n / k + n / (2 * k)]).collect();
        let kcfg = |soa| Config {
            soa_kernel: soa,
            sampling_init: false,
            max_iterations: 5,
            ..Config::default()
        };
        let (mut soa_s, mut aos_s) = (f64::INFINITY, f64::INFINITY);
        let mut rounds = 0;
        for rep in 0..REPEATS {
            let aos = balanced_kmeans(
                &SelfComm,
                &points,
                &weights,
                k,
                centers.clone(),
                &kcfg(false),
            );
            let soa = balanced_kmeans(
                &SelfComm,
                &points,
                &weights,
                k,
                centers.clone(),
                &kcfg(true),
            );
            if rep == 0 {
                assert_eq!(
                    soa.assignment, aos.assignment,
                    "SoA and AoS kernels must produce identical partitions"
                );
            }
            rounds = soa.stats.balance_iterations;
            soa_s = soa_s.min(soa.stats.assignment_seconds);
            aos_s = aos_s.min(aos.stats.assignment_seconds);
        }
        eprintln!(
            "kernel reference n={n}: soa={soa_s:.3}s aos={aos_s:.3}s \
             speedup={:.2}x over {rounds} assignment rounds",
            aos_s / soa_s.max(1e-12),
        );
        format!(
            "{{\"n\": {}, \"p\": 1, \"sampling_init\": false, \
             \"movement_iterations\": 5, \"assignment_rounds\": {rounds}, \
             \"repeats\": {REPEATS}, \
             \"assignment_s_soa\": {:.4}, \"assignment_s_aos\": {:.4}, \
             \"soa_speedup\": {:.2}}}",
            n,
            soa_s,
            aos_s,
            aos_s / soa_s.max(1e-12),
        )
    };

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"tool\": \"Geographer\",\n  \
         \"mesh\": {{\"kind\": \"uniform_random\", \"seed\": {seed}}},\n  \
         \"k\": {k}, \"epsilon\": {:.2},\n  \
         \"gate\": {{\"n\": {}, \"p\": 1, \"repeats\": {REPEATS}, \
         \"kmeans_ns_per_point\": {:.1}, \
         \"assignment_ns_per_point\": {:.1}}},\n  \
         \"kernel_reference\": {kernel_json},\n  \
         \"pipeline_reference\": {pipeline_json},\n  \
         \"runs\": [\n{runs}\n  ]\n}}\n",
        cfg.epsilon,
        sizes[0],
        gate_kmeans_ns,
        gate_assign_ns,
    );
    // Smoke runs (CI) must not clobber the committed full-scale baseline.
    let path = write_bench_json("scale", smoke, &json);
    println!("{json}");
    println!("wrote {path}");
}
