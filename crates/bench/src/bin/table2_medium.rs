//! Table 2 reproduction: per-instance metric rows for the small/medium
//! graphs. Paper: k = p = 64; reproduction: k = 16 at laptop scale.
//! Best value per column is marked with `*`.

use geographer::Config;
use geographer_bench::{evaluate_run, run_tool, scaled, TextTable, Tool, ToolRow};
use geographer_mesh::families::{climate_suite, dimacs2d_suite, three_d_suite};
use geographer_mesh::Mesh;

fn emit_rows(name: &str, rows: &[ToolRow], n: usize, table: &mut TextTable) {
    let best_cut = rows.iter().map(|r| r.metrics.edge_cut).min().unwrap();
    let best_max = rows.iter().map(|r| r.metrics.max_comm_volume).min().unwrap();
    let best_tot = rows.iter().map(|r| r.metrics.total_comm_volume).min().unwrap();
    let best_spmv = rows
        .iter()
        .map(|r| r.spmv_comm_seconds)
        .fold(f64::INFINITY, f64::min);
    let mark = |v: String, best: bool| if best { format!("{v}*") } else { v };
    for (i, r) in rows.iter().enumerate() {
        let diam = r.metrics.harmonic_diameter;
        table.row(vec![
            if i == 0 { format!("{name} (n={n})") } else { String::new() },
            r.tool.to_string(),
            format!("{:.3}s", r.time),
            mark(r.metrics.edge_cut.to_string(), r.metrics.edge_cut == best_cut),
            mark(
                r.metrics.max_comm_volume.to_string(),
                r.metrics.max_comm_volume == best_max,
            ),
            mark(
                r.metrics.total_comm_volume.to_string(),
                r.metrics.total_comm_volume == best_tot,
            ),
            if diam.is_finite() { format!("{diam:.0}") } else { "inf".into() },
            mark(
                format!("{:.1}us", r.spmv_comm_seconds * 1e6),
                (r.spmv_comm_seconds - best_spmv).abs() < 1e-12,
            ),
            format!("{:.3}", r.metrics.imbalance),
        ]);
    }
}

fn run_mesh<const D: usize>(name: &str, mesh: &Mesh<D>, k: usize, table: &mut TextTable) {
    let cfg = Config::default();
    eprintln!("running {name} ...");
    let rows: Vec<ToolRow> = Tool::ALL
        .iter()
        .map(|&tool| {
            let out = run_tool(tool, mesh, k, 4, &cfg);
            evaluate_run(tool, mesh, &out, k, 10)
        })
        .collect();
    emit_rows(name, &rows, mesh.n(), table);
}

fn main() {
    let k = 16;
    println!("# Table 2 reproduction: small/medium graphs, k = {k} (paper: k = p = 64)");
    println!("('*' marks the best value per column and instance; harmDiam shown)");
    let mut table = TextTable::new(vec![
        "graph", "tool", "time", "cut", "maxCommVol", "totCommVol", "harmDiam",
        "timeSpMVComm", "imbalance",
    ]);
    for inst in dimacs2d_suite(scaled(20_000), 21) {
        run_mesh(inst.name, &inst.mesh, k, &mut table);
    }
    for inst in climate_suite(scaled(15_000), 22) {
        run_mesh(inst.name, &inst.mesh, k, &mut table);
    }
    for inst in three_d_suite(scaled(12_000), 23) {
        run_mesh(inst.name, &inst.mesh, k, &mut table);
    }
    table.print();
}
