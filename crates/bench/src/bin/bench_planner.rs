//! Planner benchmark: the stacked configuration the planner makes possible
//! — warm hierarchical solve with a multilevel V-cycle applied at the leaf
//! level under the hierarchy's per-level targets — against every
//! single-subsystem configuration (warm-only, hierarchy-only,
//! multilevel-only) on a warm cluster-drift chain at equal ε, emitting
//! `BENCH_planner.json` in the current directory. The committed copy is the
//! repository's planner baseline: cuts, inter-node volumes, and migration
//! fractions are deterministic; wall-clock fields are machine-dependent
//! context, not a regression gate.
//!
//! Before the planner, this stacked combination was impossible: the warm
//! hierarchy path and the multilevel refiner lived behind different entry
//! points with no shared state threading. Now it is one
//! [`geographer_bench::PlanRecipe`] row in the table below, and the ISSUE 6
//! acceptance inequality is checked right here: the stacked plan must show
//! strictly lower mean edge cut AND mean inter-node volume than the best
//! single-subsystem plan.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_planner
//! $ cargo run --release -p geographer_bench --bin bench_planner -- --smoke
//! ```

use std::fmt::Write as _;

use geographer::{Config, HierarchySpec};
use geographer_bench::{
    level_metrics_json, run_plan_chain, scaled, write_bench_json, ChainStep, PlanRecipe,
    TextTable, Tool,
};
use geographer_graph::{evaluate_levels, CsrGraph};
use geographer_mesh::{
    delaunay_edges,
    density::sample_by_density,
    DynamicWorkload, Mesh, Scenario,
};
use geographer_planner::RefineMode;
use geographer_refine::MultilevelConfig;

/// Eight refinement bubbles in a 4×2 grid: four vertical strips of two
/// bubbles each, matching the `[4, 2]` machine the benchmark solves for.
/// This is the shape hierarchical partitioning is *for* — node groups that
/// correspond to real spatial structure — and it makes the stacked
/// configuration's advantage measurable instead of drowned in noise.
fn bubble_grid(n: usize, seed: u64) -> Mesh<2> {
    let mut centers = Vec::new();
    for i in 0..4 {
        for j in 0..2 {
            centers.push((0.125 + 0.25 * i as f64, 0.25 + 0.5 * j as f64, 0.08));
        }
    }
    // Same bubble profile as `bubbles_density`, but a 4× sparser background
    // so the gaps between bubbles are genuinely cheap cut surfaces: the
    // interesting question is then *which* gaps a configuration cuts, not
    // how well it grinds down a dense boundary.
    let density = move |p: geographer_geometry::Point<2>| {
        let mut d: f64 = 0.005;
        for &(cx, cy, r) in &centers {
            let dist = ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt();
            if dist < r {
                let t = (dist / r).powi(2);
                d = d.max(0.1 + 0.9 * t);
            }
        }
        d
    };
    let points = sample_by_density(n, seed, density);
    let edges = delaunay_edges(&points);
    let graph = CsrGraph::from_edges(n, &edges);
    Mesh { points, weights: vec![1.0; n], graph }
}

/// Aggregates of one configuration over the whole chain.
struct Summary {
    name: String,
    /// Uses the warm / hierarchy / multilevel subsystem?
    subsystems: &'static str,
    /// Counts toward the "best single-subsystem plan" the stacked config
    /// must beat.
    single_subsystem: bool,
    mean_cut: f64,
    mean_inter: f64,
    mean_migration: f64,
    max_imbalance: f64,
    total_wall: f64,
    total_max_rank_wall: f64,
    steps: Vec<StepRow>,
}

struct StepRow {
    step: usize,
    edge_cut: u64,
    inter_node_volume: u64,
    migration: f64,
    imbalance: f64,
}

fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = vals.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn summarize(
    name: &str,
    subsystems: &'static str,
    single_subsystem: bool,
    workload: &DynamicWorkload,
    spec: &HierarchySpec,
    chain: &[ChainStep<2>],
) -> Summary {
    let steps: Vec<StepRow> = chain
        .iter()
        .map(|s| {
            // Hierarchical plans already evaluated their levels; flat
            // assignments are sliced into the same node groups here.
            let inter = match &s.plan.levels {
                Some(levels) => levels[0].total_comm_volume,
                None => {
                    evaluate_levels(&workload.base.graph, &s.plan.assignment, &spec.level_groups())
                        [0]
                    .total_comm_volume
                }
            };
            StepRow {
                step: s.step,
                edge_cut: s.edge_cut,
                inter_node_volume: inter,
                migration: s.migrated_point_fraction,
                imbalance: s.imbalance,
            }
        })
        .collect();
    Summary {
        name: name.to_string(),
        subsystems,
        single_subsystem,
        mean_cut: mean(steps.iter().map(|s| s.edge_cut as f64)),
        mean_inter: mean(steps.iter().map(|s| s.inter_node_volume as f64)),
        mean_migration: mean(steps[1..].iter().map(|s| s.migration)),
        max_imbalance: steps.iter().map(|s| s.imbalance).fold(0.0, f64::max),
        total_wall: chain.iter().map(|s| s.wall_seconds).sum(),
        total_max_rank_wall: chain.iter().map(|s| s.wall_max_rank_s).sum(),
        steps,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 3_000 } else { scaled(12_000) };
    let steps = if smoke { 3 } else { 8 };
    let (k, p) = (8, 2);
    let seed = 40;
    let cfg = Config { sampling_init: false, ..Config::default() };
    let spec = HierarchySpec::uniform(&[4, 2]);
    let ml = RefineMode::Multilevel(MultilevelConfig::default());
    let workload = DynamicWorkload::new(
        bubble_grid(n, seed),
        Scenario::ClusterDrift { clusters: 8, speed: 0.003 },
        seed,
    );

    // The recipe table. "Subsystems" = which of warm / hierarchy /
    // multilevel-refine each configuration uses; the stacked row uses all
    // three and must beat the best single-subsystem row on cut AND
    // inter-node volume.
    let rows: Vec<(PlanRecipe, &'static str, bool)> = vec![
        (PlanRecipe::flat("cold-flat", Tool::Geographer, k, cfg.clone()), "none", false),
        (PlanRecipe::flat("warm-flat", Tool::Geographer, k, cfg.clone()).warm(), "warm", true),
        (PlanRecipe::hierarchical("hier-cold", spec.clone(), cfg.clone()), "hierarchy", true),
        (
            PlanRecipe::flat("ml-cold", Tool::Geographer, k, cfg.clone())
                .with_refine(ml.clone()),
            "multilevel",
            true,
        ),
        (
            PlanRecipe::hierarchical("hier-warm", spec.clone(), cfg.clone()).warm(),
            "warm+hierarchy",
            false,
        ),
        (
            PlanRecipe::hierarchical("stacked", spec.clone(), cfg.clone())
                .with_refine(ml.clone())
                .warm(),
            "warm+hierarchy+multilevel",
            false,
        ),
    ];

    let mut summaries: Vec<Summary> = Vec::new();
    let mut stacked_levels_json = String::new();
    for (recipe, subsystems, single) in &rows {
        let chain = run_plan_chain(&workload, recipe, p, steps);
        if recipe.name == "stacked" {
            let last = chain.last().unwrap();
            stacked_levels_json =
                level_metrics_json(last.plan.levels.as_ref().expect("stacked plan has levels"));
        }
        summaries.push(summarize(&recipe.name, subsystems, *single, &workload, &spec, &chain));
    }

    let mut table = TextTable::new(vec![
        "config", "subsystems", "meanCut", "meanInterNodeVol", "meanMigration", "maxImb", "wall",
    ]);
    for s in &summaries {
        table.row(vec![
            s.name.clone(),
            s.subsystems.to_string(),
            format!("{:.1}", s.mean_cut),
            format!("{:.1}", s.mean_inter),
            format!("{:.3}", s.mean_migration),
            format!("{:.4}", s.max_imbalance),
            format!("{:.2}s", s.total_wall),
        ]);
    }
    eprint!("{}", table.render());

    // --- The ISSUE 6 acceptance inequality ----------------------------
    let stacked = summaries.iter().find(|s| s.name == "stacked").unwrap();
    let best_cut = summaries
        .iter()
        .filter(|s| s.single_subsystem)
        .map(|s| s.mean_cut)
        .fold(f64::INFINITY, f64::min);
    let best_inter = summaries
        .iter()
        .filter(|s| s.single_subsystem)
        .map(|s| s.mean_inter)
        .fold(f64::INFINITY, f64::min);
    assert!(
        stacked.mean_cut < best_cut,
        "stacked mean cut {:.1} must be strictly below the best single-subsystem {:.1}",
        stacked.mean_cut,
        best_cut
    );
    assert!(
        stacked.mean_inter < best_inter,
        "stacked mean inter-node volume {:.1} must be strictly below the best \
         single-subsystem {:.1}",
        stacked.mean_inter,
        best_inter
    );
    // Equal-ε check: flat configs guarantee ε at the leaf; hierarchical
    // configs guarantee ε per level, which compounds to (1+ε)^levels − 1
    // at the leaf (see DESIGN.md §5).
    let hier_eps = (1.0 + cfg.epsilon).powi(spec.levels.len() as i32) - 1.0;
    for (s, (recipe, ..)) in summaries.iter().zip(&rows) {
        let bound = if recipe.hierarchy.is_some() { hier_eps } else { cfg.epsilon };
        assert!(
            s.max_imbalance <= bound + 1e-6,
            "{}: imbalance {} above its ε bound {}",
            s.name,
            s.max_imbalance,
            bound
        );
    }
    eprintln!(
        "stacked cut {:.1} < best single-subsystem {:.1}; inter-node {:.1} < {:.1}",
        stacked.mean_cut, best_cut, stacked.mean_inter, best_inter
    );

    let mut configs_json = String::new();
    for (i, s) in summaries.iter().enumerate() {
        let mut steps_json = String::new();
        for (j, r) in s.steps.iter().enumerate() {
            let _ = write!(
                steps_json,
                "{}{{\"step\": {}, \"edge_cut\": {}, \"inter_node_volume\": {}, \
                 \"migration\": {:.5}, \"imbalance\": {:.5}}}",
                if j > 0 { ", " } else { "" },
                r.step,
                r.edge_cut,
                r.inter_node_volume,
                r.migration,
                r.imbalance
            );
        }
        let _ = write!(
            configs_json,
            "{}    {{\"config\": \"{}\", \"subsystems\": \"{}\", \
             \"single_subsystem\": {}, \"mean_edge_cut\": {:.1}, \
             \"mean_inter_node_volume\": {:.1}, \"mean_migration\": {:.5}, \
             \"max_imbalance\": {:.5}, \"wall_s\": {:.4}, \
             \"wall_max_rank_s\": {:.4}, \"ns_per_point\": {:.1},\n     \"steps\": [{}]}}",
            if i > 0 { ",\n" } else { "" },
            s.name,
            s.subsystems,
            s.single_subsystem,
            s.mean_cut,
            s.mean_inter,
            s.mean_migration,
            s.max_imbalance,
            s.total_wall,
            s.total_max_rank_wall,
            geographer_bench::PlanRun::<2>::ns_per_point(
                s.total_max_rank_wall / s.steps.len().max(1) as f64,
                n,
            ),
            steps_json
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \
         \"mesh\": {{\"kind\": \"bubble_grid_4x2\", \"n\": {n}, \"seed\": {seed}}},\n  \
         \"scenario\": {{\"kind\": \"cluster-drift\", \"clusters\": 8, \"speed\": 0.003, \
         \"steps\": {steps}}},\n  \
         \"k\": {k}, \"p\": {p}, \"machine\": \"[4, 2]\", \"epsilon\": {:.2},\n  \
         \"stacked_vs_best_single\": {{\"stacked_mean_cut\": {:.1}, \
         \"best_single_mean_cut\": {:.1}, \"stacked_mean_inter_node_volume\": {:.1}, \
         \"best_single_mean_inter_node_volume\": {:.1}}},\n  \
         \"stacked_final_levels\": [{stacked_levels_json}],\n  \
         \"configs\": [\n{configs_json}\n  ]\n}}\n",
        cfg.epsilon, stacked.mean_cut, best_cut, stacked.mean_inter, best_inter,
    );
    // Smoke runs (CI) must not clobber the committed full-scale baseline.
    let path = write_bench_json("planner", smoke, &json);
    println!("{json}");
    println!("wrote {path}");
}
