//! Perf-trajectory benchmark: run the full Geographer pipeline at a few
//! rank counts on a fixed Delaunay instance and emit `BENCH_pipeline.json`
//! in the current directory. The committed copy of that file is the
//! repository's perf baseline: re-run this binary after substrate or
//! hot-loop changes and diff the structural counters (rounds and
//! bytes/rank are deterministic; wall-clock fields are machine-dependent
//! context, not a regression gate).
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_pipeline
//! ```

use std::fmt::Write as _;

use geographer::Config;
use geographer_bench::{scaled, solve_plan, write_bench_json, CostModel, PlanRecipe, Tool};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::Collective;

fn main() {
    let n = scaled(20_000);
    let k = 8;
    let mesh = delaunay_unit_square(n, 17);
    let recipe = PlanRecipe::flat("pipeline", Tool::Geographer, k, Config::default());
    let model = CostModel::default();

    let mut runs = String::new();
    for (i, p) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let run = solve_plan(&mesh, &recipe, p, None);
        let comm = run.plan.comm;
        let modeled = model.modeled_seconds(run.wall_seconds, p, &comm);
        let mut per_op = String::new();
        for (j, kind) in Collective::ALL.into_iter().enumerate() {
            let op = comm.op(kind);
            let _ = write!(
                per_op,
                "{}\"{}\": {{\"ops\": {}, \"rounds\": {}, \"bytes\": {}}}",
                if j > 0 { ", " } else { "" },
                kind.name(),
                op.ops,
                op.rounds,
                op.bytes
            );
        }
        let _ = write!(
            runs,
            "{}    {{\"p\": {}, \"k\": {}, \"wall_serialized_s\": {:.4}, \
             \"wall_max_rank_s\": {:.4}, \"ns_per_point\": {:.1}, \
             \"modeled_parallel_s\": {:.6}, \"rounds\": {}, \"bytes_per_rank\": {}, \
             \"per_op\": {{{}}}}}",
            if i > 0 { ",\n" } else { "" },
            p,
            k,
            run.wall_seconds,
            run.wall_max_rank_s,
            geographer_bench::PlanRun::<2>::ns_per_point(run.wall_max_rank_s, n),
            modeled,
            comm.rounds(),
            comm.bytes_per_rank(),
            per_op
        );
        eprintln!(
            "p={p}: wall(serialized)={:.3}s max-rank={:.3}s modeled={:.4}s rounds={} bytes/rank={}",
            run.wall_seconds,
            run.wall_max_rank_s,
            modeled,
            comm.rounds(),
            comm.bytes_per_rank()
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"tool\": \"Geographer\",\n  \
         \"mesh\": {{\"kind\": \"delaunay_unit_square\", \"n\": {n}, \"seed\": 17}},\n  \
         \"cost_model\": {{\"alpha_s\": {:.1e}, \"beta_s_per_byte\": {:.1e}}},\n  \
         \"runs\": [\n{runs}\n  ]\n}}\n",
        model.alpha, model.beta
    );
    let path = write_bench_json("pipeline", false, &json);
    println!("{json}");
    println!("wrote {path}");
}
