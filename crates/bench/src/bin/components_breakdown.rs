//! Sec. 5.3.2 "Components" reproduction: how Geographer's running time
//! splits between Hilbert indexing, redistribution, and the balanced
//! k-means iterations, as the rank count grows.
//!
//! Paper observation: at small scale indexing + k-means dominate; as p
//! grows the redistribution takes an increasing share (32 % → 46 % of the
//! time on Delaunay2B between 1 024 and 16 384 ranks, with k-means going
//! from 47 % to 42 %).

use geographer::{partition_spmd, Config};
use geographer_bench::{scaled, TextTable};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::run_spmd;

fn main() {
    let n = scaled(60_000);
    println!("# Components breakdown: Geographer on Delaunay n = {n}");
    let mesh = delaunay_unit_square(n, 31);
    let cfg = Config::default();
    let mut table = TextTable::new(vec![
        "p", "sfcIndex%", "redistribute%", "kmeans%", "total(serialized)",
    ]);
    for p in [1usize, 2, 4, 8, 16] {
        let chunk = n / p;
        let points = &mesh.points;
        let weights = &mesh.weights;
        let results = run_spmd(p, |comm| {
            use geographer_parcomm::Comm;
            let lo = comm.rank() * chunk;
            let hi = if comm.rank() == p - 1 { n } else { lo + chunk };
            let res = partition_spmd(&comm, &points[lo..hi], &weights[lo..hi], p.max(2), &cfg);
            (res.timings, res.phase_comm)
        });
        // Phases are synchronized by collectives: sum across ranks gives the
        // serialized share of each phase.
        let sfc: f64 = results.iter().map(|(t, _)| t.sfc_index).sum();
        let redist: f64 = results.iter().map(|(t, _)| t.redistribute).sum();
        let kmeans: f64 = results.iter().map(|(t, _)| t.kmeans).sum();
        let total = sfc + redist + kmeans;
        table.row(vec![
            p.to_string(),
            format!("{:.1}", 100.0 * sfc / total),
            format!("{:.1}", 100.0 * redist / total),
            format!("{:.1}", 100.0 * kmeans / total),
            format!("{total:.3}s"),
        ]);
        // Per-phase communication structure (rank 0's view is global): the
        // redistribution phase is volume-heavy, k-means is round-heavy.
        let pc = &results[0].1;
        eprintln!(
            "  p={p}: comm rounds sfc={} redistribute={} kmeans={} | \
             bytes/rank sfc={} redistribute={} kmeans={}",
            pc.sfc_index.rounds(),
            pc.redistribute.rounds(),
            pc.kmeans.rounds(),
            pc.sfc_index.bytes_per_rank(),
            pc.redistribute.bytes_per_rank(),
            pc.kmeans.bytes_per_rank(),
        );
    }
    table.print();
    println!("\n(expected: redistribution share grows with p, k-means share shrinks)");
}
