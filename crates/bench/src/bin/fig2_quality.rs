//! Fig. 2 reproduction: aggregated metric ratios per graph class, baseline
//! Geographer (= 1.0). Three classes — (a) 2D DIMACS-like, (b) 2.5D
//! climate, (c) 3D — and five metrics: edgeCut, maxCommVol, totCommVol,
//! harmDiam, timeComm. Aggregation is the geometric mean of per-instance
//! ratios (the paper's aggregation; the diameter is itself the harmonic
//! mean over blocks).
//!
//! Expected shape (paper Sec. 5.3.1): Geographer has the lowest total
//! communication volume in every class, most pronounced on the 2D class;
//! MultiJagged wins edge cut on 3D; no tool dominates everywhere.

#![allow(clippy::needless_range_loop)] // metric-index loops over parallel tables

use geographer::Config;
use geographer_bench::{evaluate_run, run_tool, scaled, TextTable, Tool, ToolRow};
use geographer_graph::geometric_mean;
use geographer_mesh::families::{climate_suite, dimacs2d_suite, three_d_suite};
use geographer_mesh::Mesh;

const METRICS: [&str; 5] = ["edgeCut", "maxCommVol", "totCommVol", "harmDiam", "timeComm"];

fn metric_values(row: &ToolRow) -> [f64; 5] {
    [
        row.metrics.edge_cut as f64,
        row.metrics.max_comm_volume as f64,
        row.metrics.total_comm_volume as f64,
        row.metrics.harmonic_diameter,
        row.spmv_comm_seconds.max(1e-9),
    ]
}

fn run_class<const D: usize>(name: &str, meshes: &[(&str, Mesh<D>)], k: usize, p: usize) {
    let cfg = Config::default();
    // ratios[tool][metric] = per-instance ratios vs Geographer.
    let mut ratios: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); METRICS.len()]; Tool::ALL.len()];
    for (iname, mesh) in meshes {
        let rows: Vec<ToolRow> = Tool::ALL
            .iter()
            .map(|&tool| {
                let out = run_tool(tool, mesh, k, p, &cfg);
                evaluate_run(tool, mesh, &out, k, 5)
            })
            .collect();
        let base = metric_values(&rows[0]);
        eprintln!("  {iname}: done (geo cut = {})", rows[0].metrics.edge_cut);
        for (t, row) in rows.iter().enumerate() {
            let vals = metric_values(row);
            for m in 0..METRICS.len() {
                let r = if base[m] > 0.0 { vals[m] / base[m] } else { 1.0 };
                if r.is_finite() && r > 0.0 {
                    ratios[t][m].push(r);
                }
            }
        }
    }
    println!("\n## Fig. 2 ({name}), k = {k} — ratios vs Geographer (geometric mean)");
    let mut table = TextTable::new(
        std::iter::once("tool".to_string())
            .chain(METRICS.iter().map(|m| m.to_string()))
            .collect::<Vec<_>>(),
    );
    for (t, tool) in Tool::ALL.iter().enumerate() {
        let mut cells = vec![tool.name().to_string()];
        for m in 0..METRICS.len() {
            cells.push(if ratios[t][m].is_empty() {
                "-".to_string()
            } else {
                format!("{:.3}", geometric_mean(&ratios[t][m]))
            });
        }
        table.row(cells);
    }
    table.print();
}

fn main() {
    let k = 16;
    let p = 4;
    println!("# Fig. 2 reproduction (scaled: k = {k} instead of 64)");

    let suite = dimacs2d_suite(scaled(8000), 1);
    let meshes: Vec<(&str, Mesh<2>)> =
        suite.into_iter().map(|i| (i.name, i.mesh)).collect();
    run_class("a: DIMACS-like 2D", &meshes, k, p);

    let suite = climate_suite(scaled(6000), 2);
    let meshes: Vec<(&str, Mesh<2>)> =
        suite.into_iter().map(|i| (i.name, i.mesh)).collect();
    run_class("b: climate 2.5D", &meshes, k, p);

    let suite = three_d_suite(scaled(5000), 3);
    let meshes: Vec<(&str, Mesh<3>)> =
        suite.into_iter().map(|i| (i.name, i.mesh)).collect();
    run_class("c: 3D", &meshes, k, p);
}
