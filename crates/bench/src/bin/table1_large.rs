//! Table 1 reproduction: per-instance metric rows for the *large* graphs.
//! Paper: k = p = 1024 on instances up to 2·10⁹ vertices; reproduction:
//! k = p = 32 on the largest instances that fit the CI box. Best value per
//! column is marked with `*`.

use geographer::Config;
use geographer_bench::{evaluate_run, run_tool, scaled, TextTable, Tool, ToolRow};
use geographer_mesh::families::{bubbles_like, trace_like};
use geographer_mesh::knn3d::PointCloud;
use geographer_mesh::{climate25d, delaunay_unit_square, knn3d, Mesh};

enum AnyMesh {
    D2(Mesh<2>),
    D3(Mesh<3>),
}

fn run_instance(name: &str, mesh: &AnyMesh, k: usize, p: usize, table: &mut TextTable) {
    let cfg = Config::default();
    let rows: Vec<ToolRow> = Tool::ALL
        .iter()
        .map(|&tool| match mesh {
            AnyMesh::D2(m) => {
                let out = run_tool(tool, m, k, p, &cfg);
                evaluate_run(tool, m, &out, k, 10)
            }
            AnyMesh::D3(m) => {
                let out = run_tool(tool, m, k, p, &cfg);
                evaluate_run(tool, m, &out, k, 10)
            }
        })
        .collect();
    let n = match mesh {
        AnyMesh::D2(m) => m.n(),
        AnyMesh::D3(m) => m.n(),
    };
    // Mark best (minimum) per column.
    let best_cut = rows.iter().map(|r| r.metrics.edge_cut).min().unwrap();
    let best_max = rows.iter().map(|r| r.metrics.max_comm_volume).min().unwrap();
    let best_tot = rows.iter().map(|r| r.metrics.total_comm_volume).min().unwrap();
    let best_spmv = rows
        .iter()
        .map(|r| r.spmv_comm_seconds)
        .fold(f64::INFINITY, f64::min);
    let mark = |v: String, best: bool| if best { format!("{v}*") } else { v };
    for (i, r) in rows.iter().enumerate() {
        let diam = match r
            .metrics
            .diameters
            .iter()
            .map(|d| d.map(|x| x as i64).unwrap_or(-1))
            .max()
        {
            Some(-1) | None => "inf".to_string(),
            Some(d) => d.to_string(),
        };
        table.row(vec![
            if i == 0 { format!("{name} (n={n})") } else { String::new() },
            r.tool.to_string(),
            format!("{:.3}s", r.time),
            mark(r.metrics.edge_cut.to_string(), r.metrics.edge_cut == best_cut),
            mark(
                r.metrics.max_comm_volume.to_string(),
                r.metrics.max_comm_volume == best_max,
            ),
            mark(
                r.metrics.total_comm_volume.to_string(),
                r.metrics.total_comm_volume == best_tot,
            ),
            diam,
            mark(
                format!("{:.1}us", r.spmv_comm_seconds * 1e6),
                (r.spmv_comm_seconds - best_spmv).abs() < 1e-12,
            ),
            format!("{:.3}", r.metrics.imbalance),
        ]);
    }
}

fn main() {
    let k = 32;
    let p = 8; // ranks for the partitioning run (oversubscribing 1 core further buys nothing)
    println!("# Table 1 reproduction: large graphs, k = {k} (paper: k = p = 1024)");
    println!("('*' marks the best value per column and instance; time is serialized wall)");
    let mut table = TextTable::new(vec![
        "graph", "tool", "time", "cut", "maxCommVol", "totCommVol", "maxDiam",
        "timeSpMVComm", "imbalance",
    ]);

    let instances: Vec<(&str, AnyMesh)> = vec![
        ("delaunay-large", AnyMesh::D2(delaunay_unit_square(scaled(100_000), 11))),
        ("trace-like-large", AnyMesh::D2(trace_like(scaled(80_000), 12))),
        ("bubbles-like-large", AnyMesh::D2(bubbles_like(scaled(80_000), 13))),
        ("fesom-like-large", AnyMesh::D2(climate25d(scaled(60_000), 40, 14))),
        (
            "delaunay3d-like-large",
            AnyMesh::D3(knn3d(scaled(50_000), 6, PointCloud::Uniform, 15)),
        ),
        (
            "alya-like-large",
            AnyMesh::D3(knn3d(scaled(50_000), 6, PointCloud::Clustered { clusters: 5 }, 16)),
        ),
    ];
    for (name, mesh) in &instances {
        eprintln!("running {name} ...");
        run_instance(name, mesh, k, p, &mut table);
    }
    table.print();
}
