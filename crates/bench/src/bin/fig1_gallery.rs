//! Fig. 1 reproduction: partition a hugetric-like refined mesh into 8
//! blocks with every tool and render the results as SVGs.
//!
//! The paper's visual finding: RCB/RIB produce thin, long blocks; MJ
//! produces better-aspect rectangles; HSFC has wrinkled boundaries;
//! Geographer produces curved, compact blocks.

use geographer::Config;
use geographer_bench::{out_dir, run_tool, scaled, Tool};
use geographer_mesh::families::tric_like;
use geographer_viz::render_partition_svg;

fn main() {
    let n = scaled(8000);
    let k = 8;
    println!("# Fig. 1 gallery: tric-like mesh, n = {n}, k = {k}");
    let mesh = tric_like(n, 42);
    let dir = out_dir();
    let cfg = Config::default();

    let input = render_partition_svg(&mesh.points, &vec![0; n], 1, 600, "input");
    let path = dir.join("fig1_input.svg");
    std::fs::write(&path, input).expect("write svg");
    println!("wrote {}", path.display());

    for tool in Tool::ALL {
        let out = run_tool(tool, &mesh, k, 1, &cfg);
        let svg = render_partition_svg(&mesh.points, &out.assignment, k, 600, tool.name());
        let path = dir.join(format!("fig1_{}.svg", tool.name().to_lowercase()));
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {} ({:.2}s)", path.display(), out.wall_seconds);
    }
}
