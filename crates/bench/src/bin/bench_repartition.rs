//! Repartitioning benchmark: cold-vs-warm Geographer and the four cold
//! baselines over a cluster-drift scenario, emitting
//! `BENCH_repartition.json` in the current directory. The committed copy is
//! the repository's repartitioning baseline: migration fractions and step
//! counts are deterministic; wall-clock fields are machine-dependent
//! context, not a regression gate.
//!
//! The benchmark exercises the paper's reuse claim: warm-started balanced
//! k-means should repartition a drifting point set both *faster* (no SFC
//! bootstrap, few iterations) and *stabler* (lower migrated fraction) than
//! any cold re-run, at the same balance bound.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_repartition
//! $ cargo run --release -p geographer_bench --bin bench_repartition -- --smoke
//! ```

use std::fmt::Write as _;

use geographer::Config;
use geographer_bench::{
    run_plan_chain, scaled, write_bench_json, ChainStep, PlanRecipe, Tool,
};
use geographer_mesh::{delaunay_unit_square, DynamicWorkload, Scenario};

fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = vals.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

struct Summary {
    label: String,
    total_wall: f64,
    restep_wall: f64,
    restep_max_rank_wall: f64,
    migration: f64,
    weight_migration: f64,
    max_imbalance: f64,
    mean_cut: f64,
}

fn summarize(label: String, steps: &[ChainStep<2>]) -> Summary {
    Summary {
        label,
        total_wall: steps.iter().map(|s| s.wall_seconds).sum(),
        // Steady-state repartitioning cost: everything after the shared
        // cold bootstrap of step 0.
        restep_wall: steps[1..].iter().map(|s| s.wall_seconds).sum(),
        restep_max_rank_wall: steps[1..].iter().map(|s| s.wall_max_rank_s).sum(),
        migration: mean(steps[1..].iter().map(|s| s.migrated_point_fraction)),
        weight_migration: mean(steps[1..].iter().map(|s| s.migrated_weight_fraction)),
        max_imbalance: steps.iter().map(|s| s.imbalance).fold(0.0, f64::max),
        mean_cut: mean(steps.iter().map(|s| s.edge_cut as f64)),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 2_500 } else { scaled(15_000) };
    let steps = if smoke { 4 } else { 8 };
    let (k, p) = (8, 4);
    let seed = 29;
    let scenario = Scenario::ClusterDrift { clusters: 5, speed: 0.015 };
    let workload = DynamicWorkload::new(delaunay_unit_square(n, seed), scenario, seed);
    let cfg = Config { sampling_init: false, ..Config::default() };

    // The recipe table: warm Geographer against every cold re-run.
    let mut recipes = vec![PlanRecipe::flat(
        "Geographer-warm",
        Tool::Geographer,
        k,
        cfg.clone(),
    )
    .warm()];
    for tool in Tool::ALL {
        recipes.push(PlanRecipe::flat(
            format!("{}-cold", tool.name()),
            tool,
            k,
            cfg.clone(),
        ));
    }

    let mut summaries: Vec<(Summary, Vec<ChainStep<2>>)> = Vec::new();
    for recipe in &recipes {
        let rows = run_plan_chain(&workload, recipe, p, steps);
        let s = summarize(recipe.name.clone(), &rows);
        eprintln!(
            "{:<18} wall={:.3}s (re-steps {:.3}s) migration={:.3} wmigration={:.3} \
             max_imb={:.4} cut≈{:.0}",
            s.label, s.total_wall, s.restep_wall, s.migration, s.weight_migration,
            s.max_imbalance, s.mean_cut
        );
        summaries.push((s, rows));
    }

    let mut tools_json = String::new();
    for (i, (s, rows)) in summaries.iter().enumerate() {
        let mut steps_json = String::new();
        for (j, r) in rows.iter().enumerate() {
            let _ = write!(
                steps_json,
                "{}{{\"step\": {}, \"wall_s\": {:.4}, \"wall_max_rank_s\": {:.4}, \
                 \"ns_per_point\": {:.1}, \"imbalance\": {:.5}, \
                 \"edge_cut\": {}, \"migrated_point_fraction\": {:.5}, \
                 \"migrated_weight_fraction\": {:.5}}}",
                if j > 0 { ", " } else { "" },
                r.step,
                r.wall_seconds,
                r.wall_max_rank_s,
                geographer_bench::PlanRun::<2>::ns_per_point(r.wall_max_rank_s, n),
                r.imbalance,
                r.edge_cut,
                r.migrated_point_fraction,
                r.migrated_weight_fraction
            );
        }
        let _ = write!(
            tools_json,
            "{}    {{\"tool\": \"{}\", \"total_wall_s\": {:.4}, \"resteps_wall_s\": {:.4}, \
             \"resteps_max_rank_wall_s\": {:.4}, \
             \"mean_migrated_point_fraction\": {:.5}, \
             \"mean_migrated_weight_fraction\": {:.5}, \"max_imbalance\": {:.5}, \
             \"mean_edge_cut\": {:.1},\n     \"steps\": [{}]}}",
            if i > 0 { ",\n" } else { "" },
            s.label,
            s.total_wall,
            s.restep_wall,
            s.restep_max_rank_wall,
            s.migration,
            s.weight_migration,
            s.max_imbalance,
            s.mean_cut,
            steps_json
        );
    }

    let warm = &summaries[0].0;
    let cold = &summaries[1].0;
    let json = format!(
        "{{\n  \"bench\": \"repartition\",\n  \
         \"scenario\": {{\"kind\": \"cluster-drift\", \"clusters\": 5, \"speed\": 0.015, \
         \"base\": \"delaunay_unit_square\", \"n\": {n}, \"seed\": {seed}, \
         \"steps\": {steps}}},\n  \
         \"k\": {k}, \"p\": {p}, \"epsilon\": {:.2},\n  \
         \"cold_vs_warm\": {{\"cold_resteps_wall_s\": {:.4}, \"warm_resteps_wall_s\": {:.4}, \
         \"warm_speedup\": {:.2}, \"cold_migration\": {:.5}, \"warm_migration\": {:.5}, \
         \"migration_ratio\": {:.2}}},\n  \
         \"tools\": [\n{tools_json}\n  ]\n}}\n",
        cfg.epsilon,
        cold.restep_wall,
        warm.restep_wall,
        cold.restep_wall / warm.restep_wall.max(1e-12),
        cold.migration,
        warm.migration,
        cold.migration / warm.migration.max(1e-12),
    );
    // Smoke runs (CI) must not clobber the committed full-scale baseline.
    let path = write_bench_json("repartition", smoke, &json);
    println!("{json}");
    println!("wrote {path}");
}
