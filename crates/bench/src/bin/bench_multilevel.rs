//! Multilevel-refinement benchmark: the single-level FM-style boundary
//! pass vs the coarsen→refine→project V-cycle, at equal ε, on the
//! clustered-bubbles and Delaunay mesh families, emitting
//! `BENCH_multilevel.json` in the current directory. The committed copy is
//! the repository's refinement baseline: cuts, moves, and level counts are
//! deterministic; wall-clock fields are machine-dependent context, not a
//! regression gate.
//!
//! The question the benchmark answers is the ISSUE 5 acceptance one: does
//! the V-cycle reach a strictly lower edge cut than one flat boundary
//! sweep from the *same* starting partition, at comparable wall time? Both
//! refiners start from the identical tool output (the tools are
//! deterministic with sampling off), so the comparison isolates the
//! refinement algorithm.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_multilevel
//! $ cargo run --release -p geographer_bench --bin bench_multilevel -- --smoke
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use geographer::Config;
use geographer_bench::{run_tool, scaled, TextTable, Tool};
use geographer_graph::imbalance;
use geographer_mesh::{families::bubbles_like, delaunay_unit_square, Mesh};
use geographer_refine::{
    refine_multilevel, refine_partition, MultilevelConfig, RefineConfig,
};

struct Row {
    mesh: &'static str,
    tool: &'static str,
    cut_initial: u64,
    single_cut: u64,
    single_moves: usize,
    single_rounds: usize,
    single_wall_s: f64,
    multi_cut: u64,
    multi_moves: usize,
    multi_levels: usize,
    multi_wall_s: f64,
    imbalance_single: f64,
    imbalance_multi: f64,
    levels_json: String,
}

fn bench_one(
    mesh_name: &'static str,
    mesh: &Mesh<2>,
    tool: Tool,
    k: usize,
    cfg: &Config,
    rcfg: &RefineConfig,
) -> Row {
    let out = run_tool(tool, mesh, k, 2, cfg);

    let mut single = out.assignment.clone();
    let t = Instant::now();
    let sr = refine_partition(&mesh.graph, &mut single, &mesh.weights, k, rcfg);
    let single_wall_s = t.elapsed().as_secs_f64();

    let mut multi = out.assignment.clone();
    let mcfg = MultilevelConfig { refine: rcfg.clone(), ..MultilevelConfig::default() };
    let t = Instant::now();
    let mr = refine_multilevel(&mesh.graph, &mut multi, &mesh.weights, k, &mcfg);
    let multi_wall_s = t.elapsed().as_secs_f64();

    assert_eq!(sr.cut_before, mr.cut_before, "both refiners start from the same partition");
    let mut levels_json = String::new();
    for (i, l) in mr.levels.iter().enumerate() {
        let _ = write!(
            levels_json,
            "{}{{\"vertices\": {}, \"edges\": {}, \"cut_before\": {}, \"cut_after\": {}, \
             \"moves\": {}, \"rounds\": {}}}",
            if i > 0 { ", " } else { "" },
            l.vertices,
            l.edges,
            l.cut_before,
            l.cut_after,
            l.moves,
            l.rounds
        );
    }
    Row {
        mesh: mesh_name,
        tool: tool.name(),
        cut_initial: sr.cut_before,
        single_cut: sr.cut_after,
        single_moves: sr.moves,
        single_rounds: sr.rounds,
        single_wall_s,
        multi_cut: mr.cut_after,
        multi_moves: mr.moves,
        multi_levels: mr.levels.len(),
        multi_wall_s,
        imbalance_single: imbalance(&single, &mesh.weights, k),
        imbalance_multi: imbalance(&multi, &mesh.weights, k),
        levels_json,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 6_000 } else { scaled(24_000) };
    let k = 16;
    let seed = 55;
    let cfg = Config { sampling_init: false, ..Config::default() };
    let rcfg = RefineConfig::default();

    let meshes: [(&'static str, Mesh<2>); 2] = [
        ("bubbles-like", bubbles_like(n, seed)),
        ("delaunay", delaunay_unit_square(n, seed + 1)),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, mesh) in &meshes {
        for tool in [Tool::Hsfc, Tool::Geographer] {
            rows.push(bench_one(name, mesh, tool, k, &cfg, &rcfg));
        }
    }

    let mut table = TextTable::new(vec![
        "mesh", "tool", "cutInitial", "cutSingle", "cutMultilevel", "gainVsSingle%",
        "levels", "wallSingle", "wallMultilevel", "imbMulti",
    ]);
    for r in &rows {
        table.row(vec![
            r.mesh.to_string(),
            r.tool.to_string(),
            r.cut_initial.to_string(),
            r.single_cut.to_string(),
            r.multi_cut.to_string(),
            format!(
                "{:.2}",
                100.0 * (r.single_cut as f64 - r.multi_cut as f64) / r.single_cut.max(1) as f64
            ),
            r.multi_levels.to_string(),
            format!("{:.1}ms", r.single_wall_s * 1e3),
            format!("{:.1}ms", r.multi_wall_s * 1e3),
            format!("{:.4}", r.imbalance_multi),
        ]);
    }
    eprint!("{}", table.render());

    // The ISSUE 5 acceptance inequality: at equal ε, the V-cycle reaches a
    // strictly lower cut than the single-level pass on both mesh families
    // (HSFC rows — the wrinkled SFC boundaries have the most to recover),
    // with balance intact.
    for r in &rows {
        assert!(
            r.imbalance_multi <= rcfg.epsilon + 1e-9,
            "{}/{}: multilevel imbalance {} above ε",
            r.mesh,
            r.tool,
            r.imbalance_multi
        );
        if r.tool == "HSFC" {
            assert!(
                r.multi_cut < r.single_cut,
                "{}/{}: multilevel cut {} must be strictly below single-level {}",
                r.mesh,
                r.tool,
                r.multi_cut,
                r.single_cut
            );
        }
    }

    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            rows_json,
            "{}    {{\"mesh\": \"{}\", \"tool\": \"{}\", \"cut_initial\": {}, \
             \"single\": {{\"cut_after\": {}, \"moves\": {}, \"rounds\": {}, \
             \"wall_s\": {:.4}, \"imbalance\": {:.5}}},\n     \
             \"multilevel\": {{\"cut_after\": {}, \"moves\": {}, \"levels\": {}, \
             \"wall_s\": {:.4}, \"imbalance\": {:.5},\n      \
             \"level_detail\": [{}]}}}}",
            if i > 0 { ",\n" } else { "" },
            r.mesh,
            r.tool,
            r.cut_initial,
            r.single_cut,
            r.single_moves,
            r.single_rounds,
            r.single_wall_s,
            r.imbalance_single,
            r.multi_cut,
            r.multi_moves,
            r.multi_levels,
            r.multi_wall_s,
            r.imbalance_multi,
            r.levels_json
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"multilevel\",\n  \
         \"meshes\": [\"bubbles_like\", \"delaunay_unit_square\"],\n  \
         \"n\": {n}, \"seed\": {seed}, \"k\": {k}, \"epsilon\": {:.2},\n  \
         \"coarsest_vertices\": {},\n  \
         \"rows\": [\n{rows_json}\n  ]\n}}\n",
        rcfg.epsilon,
        MultilevelConfig::default().coarsest_vertices,
    );
    // Smoke runs (CI) must not clobber the committed full-scale baseline.
    let path = if smoke {
        std::fs::create_dir_all("target").expect("create target/");
        "target/BENCH_multilevel.smoke.json"
    } else {
        "BENCH_multilevel.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{json}");
    println!("wrote {path}");
}
