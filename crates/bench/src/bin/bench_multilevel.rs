//! Multilevel-refinement benchmark: the single-level FM-style boundary
//! pass vs the coarsen→refine→project V-cycle, at equal ε, on the
//! clustered-bubbles and Delaunay mesh families, emitting
//! `BENCH_multilevel.json` in the current directory. The committed copy is
//! the repository's refinement baseline: cuts, moves, and level counts are
//! deterministic; wall-clock fields are machine-dependent context, not a
//! regression gate.
//!
//! The question the benchmark answers is the ISSUE 5 acceptance one: does
//! the V-cycle reach a strictly lower edge cut than one flat boundary
//! sweep from the *same* starting partition, at comparable wall time? Both
//! refiners start from the identical tool output (the tools are
//! deterministic with sampling off), so the comparison isolates the
//! refinement algorithm.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_multilevel
//! $ cargo run --release -p geographer_bench --bin bench_multilevel -- --smoke
//! ```

use std::fmt::Write as _;

use geographer::Config;
use geographer_bench::{scaled, solve_plan, write_bench_json, PlanRecipe, TextTable, Tool};
use geographer_graph::imbalance;
use geographer_mesh::{families::bubbles_like, delaunay_unit_square, Mesh};
use geographer_planner::RefineMode;
use geographer_refine::{MultilevelConfig, RefineConfig};

struct Row {
    mesh: &'static str,
    tool: &'static str,
    cut_initial: u64,
    single_cut: u64,
    single_moves: usize,
    single_rounds: usize,
    single_wall_s: f64,
    single_solve_wall_s: f64,
    single_solve_max_rank_s: f64,
    multi_cut: u64,
    multi_moves: usize,
    multi_levels: usize,
    multi_wall_s: f64,
    multi_solve_wall_s: f64,
    multi_solve_max_rank_s: f64,
    imbalance_single: f64,
    imbalance_multi: f64,
    levels_json: String,
}

fn bench_one(
    mesh_name: &'static str,
    mesh: &Mesh<2>,
    tool: Tool,
    k: usize,
    cfg: &Config,
    rcfg: &RefineConfig,
) -> Row {
    // Two plans from the same recipe, differing only in the refinement
    // mode. The tools are deterministic (sampling off), so both start from
    // the identical partition — the assert below pins that.
    let base = PlanRecipe::flat("ml", tool, k, cfg.clone());
    let single_run = solve_plan(
        mesh,
        &base.clone().with_refine(RefineMode::Single(rcfg.clone())),
        2,
        None,
    );
    let multi_run = solve_plan(
        mesh,
        &base.with_refine(RefineMode::Multilevel(MultilevelConfig {
            refine: rcfg.clone(),
            ..MultilevelConfig::default()
        })),
        2,
        None,
    );
    let (single, multi) = (single_run.plan, multi_run.plan);

    let sr = single.refine.expect("single refinement report");
    let mr = multi.refine.expect("multilevel refinement summary");
    let ml = multi.multilevel.as_ref().expect("multilevel level reports");
    assert_eq!(sr.cut_before, mr.cut_before, "both refiners start from the same partition");
    let mut levels_json = String::new();
    for (i, l) in ml.levels.iter().enumerate() {
        let _ = write!(
            levels_json,
            "{}{{\"vertices\": {}, \"edges\": {}, \"cut_before\": {}, \"cut_after\": {}, \
             \"moves\": {}, \"rounds\": {}}}",
            if i > 0 { ", " } else { "" },
            l.vertices,
            l.edges,
            l.cut_before,
            l.cut_after,
            l.moves,
            l.rounds
        );
    }
    Row {
        mesh: mesh_name,
        tool: tool.name(),
        cut_initial: sr.cut_before,
        single_cut: sr.cut_after,
        single_moves: sr.moves,
        single_rounds: sr.rounds,
        single_wall_s: single.refine_seconds,
        single_solve_wall_s: single_run.wall_seconds,
        single_solve_max_rank_s: single_run.wall_max_rank_s,
        multi_cut: mr.cut_after,
        multi_moves: mr.moves,
        multi_levels: ml.levels.len(),
        multi_wall_s: multi.refine_seconds,
        multi_solve_wall_s: multi_run.wall_seconds,
        multi_solve_max_rank_s: multi_run.wall_max_rank_s,
        imbalance_single: imbalance(&single.assignment, &mesh.weights, k),
        imbalance_multi: imbalance(&multi.assignment, &mesh.weights, k),
        levels_json,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 6_000 } else { scaled(24_000) };
    let k = 16;
    let seed = 55;
    let cfg = Config { sampling_init: false, ..Config::default() };
    let rcfg = RefineConfig::default();

    let meshes: [(&'static str, Mesh<2>); 2] = [
        ("bubbles-like", bubbles_like(n, seed)),
        ("delaunay", delaunay_unit_square(n, seed + 1)),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, mesh) in &meshes {
        for tool in [Tool::Hsfc, Tool::Geographer] {
            rows.push(bench_one(name, mesh, tool, k, &cfg, &rcfg));
        }
    }

    let mut table = TextTable::new(vec![
        "mesh", "tool", "cutInitial", "cutSingle", "cutMultilevel", "gainVsSingle%",
        "levels", "wallSingle", "wallMultilevel", "imbMulti",
    ]);
    for r in &rows {
        table.row(vec![
            r.mesh.to_string(),
            r.tool.to_string(),
            r.cut_initial.to_string(),
            r.single_cut.to_string(),
            r.multi_cut.to_string(),
            format!(
                "{:.2}",
                100.0 * (r.single_cut as f64 - r.multi_cut as f64) / r.single_cut.max(1) as f64
            ),
            r.multi_levels.to_string(),
            format!("{:.1}ms", r.single_wall_s * 1e3),
            format!("{:.1}ms", r.multi_wall_s * 1e3),
            format!("{:.4}", r.imbalance_multi),
        ]);
    }
    eprint!("{}", table.render());

    // The ISSUE 5 acceptance inequality: at equal ε, the V-cycle reaches a
    // strictly lower cut than the single-level pass on both mesh families
    // (HSFC rows — the wrinkled SFC boundaries have the most to recover),
    // with balance intact.
    for r in &rows {
        assert!(
            r.imbalance_multi <= rcfg.epsilon + 1e-9,
            "{}/{}: multilevel imbalance {} above ε",
            r.mesh,
            r.tool,
            r.imbalance_multi
        );
        if r.tool == "HSFC" {
            assert!(
                r.multi_cut < r.single_cut,
                "{}/{}: multilevel cut {} must be strictly below single-level {}",
                r.mesh,
                r.tool,
                r.multi_cut,
                r.single_cut
            );
        }
    }

    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            rows_json,
            "{}    {{\"mesh\": \"{}\", \"tool\": \"{}\", \"cut_initial\": {}, \
             \"single\": {{\"cut_after\": {}, \"moves\": {}, \"rounds\": {}, \
             \"wall_s\": {:.4}, \"solve_wall_serialized_s\": {:.4}, \
             \"solve_wall_max_rank_s\": {:.4}, \"solve_ns_per_point\": {:.1}, \
             \"imbalance\": {:.5}}},\n     \
             \"multilevel\": {{\"cut_after\": {}, \"moves\": {}, \"levels\": {}, \
             \"wall_s\": {:.4}, \"solve_wall_serialized_s\": {:.4}, \
             \"solve_wall_max_rank_s\": {:.4}, \"solve_ns_per_point\": {:.1}, \
             \"imbalance\": {:.5},\n      \
             \"level_detail\": [{}]}}}}",
            if i > 0 { ",\n" } else { "" },
            r.mesh,
            r.tool,
            r.cut_initial,
            r.single_cut,
            r.single_moves,
            r.single_rounds,
            r.single_wall_s,
            r.single_solve_wall_s,
            r.single_solve_max_rank_s,
            geographer_bench::PlanRun::<2>::ns_per_point(r.single_solve_max_rank_s, n),
            r.imbalance_single,
            r.multi_cut,
            r.multi_moves,
            r.multi_levels,
            r.multi_wall_s,
            r.multi_solve_wall_s,
            r.multi_solve_max_rank_s,
            geographer_bench::PlanRun::<2>::ns_per_point(r.multi_solve_max_rank_s, n),
            r.imbalance_multi,
            r.levels_json
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"multilevel\",\n  \
         \"meshes\": [\"bubbles_like\", \"delaunay_unit_square\"],\n  \
         \"n\": {n}, \"seed\": {seed}, \"k\": {k}, \"epsilon\": {:.2},\n  \
         \"coarsest_vertices\": {},\n  \
         \"rows\": [\n{rows_json}\n  ]\n}}\n",
        rcfg.epsilon,
        MultilevelConfig::default().coarsest_vertices,
    );
    // Smoke runs (CI) must not clobber the committed full-scale baseline.
    let path = write_bench_json("multilevel", smoke, &json);
    println!("{json}");
    println!("wrote {path}");
}
