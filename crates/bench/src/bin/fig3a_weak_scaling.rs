//! Fig. 3a reproduction: weak scaling on the Delaunay series. Points per
//! rank stay fixed while p = k doubles. Reported time is the α–β-modeled
//! parallel time (measured communication structure + perfectly scaled
//! compute; see `geographer_bench::cost`).
//!
//! Expected shape (paper): Geographer, MultiJagged and HSFC scale almost
//! flat; the recursive methods (RCB, RIB) grow with every doubling.
//!
//! `--proc` runs every solve on the multi-process backend (forked workers
//! over Unix-domain sockets) and replaces the default α–β constants with
//! values *measured* on that substrate by the calibration probe.

use geographer::Config;
use geographer_bench::{run_tool_backend, scaled, CostModel, SpmdBackend, TextTable, Tool};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::{measure_alpha_beta, Collective};

fn main() {
    let per_rank = scaled(4000);
    let ps = [1usize, 2, 4, 8, 16, 32];
    let backend = SpmdBackend::from_cli_args();
    let model = match backend {
        SpmdBackend::Thread => CostModel::default(),
        SpmdBackend::Proc => {
            let m = measure_alpha_beta(50).expect("calibration probe");
            eprintln!(
                "# measured socket substrate: alpha={:.2}us/round beta={:.3}ns/B",
                m.alpha * 1e6,
                m.beta * 1e9
            );
            CostModel { alpha: m.alpha, beta: m.beta }
        }
    };
    let cfg = Config::default();
    println!(
        "# Fig. 3a weak scaling: Delaunay series, {per_rank} points/rank, k = p \
         [{} backend]",
        backend.name()
    );
    let mut table = TextTable::new(
        std::iter::once("p=k".to_string())
            .chain(Tool::ALL.iter().map(|t| format!("{} [ms]", t.name())))
            .collect::<Vec<_>>(),
    );
    for &p in &ps {
        let n = per_rank * p;
        let mesh = delaunay_unit_square(n, 7 + p as u64);
        let mut cells = vec![p.to_string()];
        for tool in Tool::ALL {
            let out = run_tool_backend(tool, &mesh, p.max(2), p, &cfg, backend);
            let modeled = model.modeled_seconds(out.wall_seconds, p, &out.comm);
            cells.push(format!("{:.2}", modeled * 1e3));
            let red = out.comm.op(Collective::Allreduce);
            eprintln!(
                "  p={p} {}: wall(serialized)={:.2}s ops={} rounds={} \
                 bytes/rank={} (allreduce: {} ops, {} rounds, {} B)",
                tool.name(),
                out.wall_seconds,
                out.comm.collectives(),
                out.comm.rounds(),
                out.comm.bytes_per_rank(),
                red.ops,
                red.rounds,
                red.bytes
            );
        }
        table.row(cells);
    }
    table.print();
    println!("\n(modeled parallel ms per run; flat rows = perfect weak scaling)");
}
