//! Multi-process backend benchmark: measured α–β vs the modeled
//! constants, on real Unix-domain-socket wires.
//!
//! Everything else in the workspace *models* communication time from
//! structural counters (`T = compute/p + α·rounds + β·bytes_per_rank`,
//! with literature constants α = 20 µs, β = 0.5 ns/B). The `ProcComm`
//! backend finally makes both sides of that equation observable on one
//! machine:
//!
//! 1. **Calibration** — the ping-pong/streaming probe
//!    (`measure_alpha_beta`) times raw pairwise exchanges at 8 B … 1 MiB
//!    and fits the line: α̂ from the small-message plateau, β̂ from the
//!    slope of the bandwidth regime. The raw probe table is committed so
//!    the fit can be re-checked.
//! 2. **Collective workload** — a fixed mix of allreduce / allgather /
//!    alltoallv / exscan rounds at p ∈ {2, 4}, run on the socket
//!    substrate with the wall clock *measured* inside the workers, next
//!    to the α–β prediction of the same run's counters under (a) the
//!    default constants and (b) the measured ones. This is the
//!    measured-vs-modeled comparison in its purest form: no compute term
//!    at all.
//! 3. **Tool runs** — the five partitioners at p ∈ {2, 4} on both
//!    backends, checking the assignments agree exactly (same collective
//!    algorithms ⇒ same reduction trees ⇒ same bits) and reporting
//!    measured process wall next to the modeled communication seconds.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_proc
//! $ cargo run --release -p geographer_bench --bin bench_proc -- --smoke
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use geographer::Config;
use geographer_bench::{
    run_tool_backend, write_bench_json, CostModel, SpmdBackend, Tool,
};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::{
    measure_alpha_beta, run_spmd, run_spmd_proc, Comm, CommStats,
};

/// The fixed collective mix both backends run for the pure
/// measured-vs-modeled comparison (no compute worth mentioning).
fn collective_workload<C: Comm>(comm: &C) -> CommStats {
    let before = comm.stats();
    let mut buf = vec![comm.rank() as f64 + 0.5; 1024];
    for _ in 0..50 {
        comm.allreduce_sum_f64(&mut buf);
    }
    for _ in 0..20 {
        let _ = comm.allgather(vec![comm.rank() as u64; 512]);
    }
    for _ in 0..10 {
        let sends: Vec<Vec<u64>> =
            (0..comm.size()).map(|d| vec![d as u64; 256]).collect();
        let _ = comm.alltoallv(sends);
    }
    for _ in 0..50 {
        let _ = comm.exscan_sum_u64(comm.rank() as u64 + 1);
    }
    comm.stats().since(&before)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 10 } else { 100 };
    let defaults = CostModel::default();

    // 1. Calibrate the socket substrate.
    let cal = measure_alpha_beta(reps).expect("calibration probe");
    eprintln!(
        "calibrated: alpha={:.2}us/round (model {:.2}us)  beta={:.4}ns/B (model {:.4}ns)",
        cal.alpha * 1e6,
        defaults.alpha * 1e6,
        cal.beta * 1e9,
        defaults.beta * 1e9
    );
    let mut samples = String::new();
    for (i, (bytes, secs)) in cal.samples.iter().enumerate() {
        let _ = write!(
            samples,
            "{}\n      {{\"bytes\": {}, \"seconds_per_exchange\": {:.3e}}}",
            if i > 0 { "," } else { "" },
            bytes,
            secs
        );
    }

    // 2. Pure collective workload, measured on the wire vs modeled from
    // the same run's counters.
    let mut workloads = String::new();
    for (i, p) in [2usize, 4].into_iter().enumerate() {
        let mut per_rank = run_spmd_proc(p, |comm| {
            let t = Instant::now();
            let delta = collective_workload(&comm);
            (delta, t.elapsed().as_secs_f64())
        })
        .expect("workload job");
        let measured = per_rank.iter().map(|(_, s)| *s).fold(0.0, f64::max);
        let stats = per_rank.remove(0).0; // per-rank view: rounds + own bytes
        let modeled_default = stats.modeled_seconds(defaults.alpha, defaults.beta);
        let modeled_measured = stats.modeled_seconds(cal.alpha, cal.beta);
        let t = Instant::now();
        run_spmd(p, |comm| {
            let _ = collective_workload(&comm);
        });
        let thread_wall = t.elapsed().as_secs_f64();
        eprintln!(
            "collectives p={p}: measured {:.1}ms on sockets | modeled {:.1}ms (default ab) \
             {:.1}ms (measured ab) | threads {:.1}ms",
            measured * 1e3,
            modeled_default * 1e3,
            modeled_measured * 1e3,
            thread_wall * 1e3
        );
        let _ = write!(
            workloads,
            "{}\n      {{\"p\": {}, \"rounds\": {}, \"bytes_per_rank\": {:.1}, \
             \"measured_seconds\": {:.3e}, \"modeled_seconds_default_ab\": {:.3e}, \
             \"modeled_seconds_measured_ab\": {:.3e}, \"thread_wall_seconds\": {:.3e}}}",
            if i > 0 { "," } else { "" },
            p,
            stats.rounds(),
            stats.bytes_per_rank(),
            measured,
            modeled_default,
            modeled_measured,
            thread_wall,
        );
    }

    // 3. The five tools on both backends: agreement + walls.
    let n = if smoke { 2_000 } else { 20_000 };
    let mesh = delaunay_unit_square(n, 41);
    let cfg = Config::default();
    let k = 8;
    let mut runs = String::new();
    let mut first = true;
    for p in [2usize, 4] {
        for tool in Tool::ALL {
            let pr = run_tool_backend(tool, &mesh, k, p, &cfg, SpmdBackend::Proc);
            let th = run_tool_backend(tool, &mesh, k, p, &cfg, SpmdBackend::Thread);
            let agree = pr.assignment == th.assignment;
            assert!(agree, "{} at p={p}: backends disagree", tool.name());
            // Per-rank view of the process run's counters for the model
            // (job-wide bytes / p; rounds are identical on every rank).
            let modeled_default =
                pr.comm.modeled_seconds(defaults.alpha, defaults.beta);
            let modeled_measured = pr.comm.modeled_seconds(cal.alpha, cal.beta);
            eprintln!(
                "  {} p={p}: proc wall {:.0}ms (thread {:.0}ms serialized) \
                 comm modeled {:.2}ms default / {:.2}ms measured — bitwise agree",
                tool.name(),
                pr.wall_seconds * 1e3,
                th.wall_seconds * 1e3,
                modeled_default * 1e3,
                modeled_measured * 1e3
            );
            let _ = write!(
                runs,
                "{}\n      {{\"tool\": \"{}\", \"n\": {}, \"p\": {}, \"k\": {}, \
                 \"assignments_agree_with_thread_backend\": {}, \"rounds\": {}, \
                 \"bytes_per_rank\": {:.1}, \"proc_wall_seconds\": {:.3e}, \
                 \"thread_wall_serialized_seconds\": {:.3e}, \
                 \"modeled_comm_seconds_default_ab\": {:.3e}, \
                 \"modeled_comm_seconds_measured_ab\": {:.3e}}}",
                if first { "" } else { "," },
                tool.name(),
                n,
                p,
                k,
                agree,
                pr.comm.rounds(),
                pr.comm.bytes_per_rank(),
                pr.wall_seconds,
                th.wall_seconds,
                modeled_default,
                modeled_measured,
            );
            first = false;
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"proc_backend\",\n  \
         \"description\": \"multi-process SPMD backend: measured alpha-beta on \
         Unix-domain sockets vs the modeled constants; forked-rank runs agree \
         bitwise with the thread backend\",\n  \
         \"calibration\": {{\n    \"probe_reps\": {reps},\n    \
         \"measured_alpha_seconds\": {:.3e},\n    \
         \"measured_beta_seconds_per_byte\": {:.3e},\n    \
         \"model_alpha_seconds\": {:.3e},\n    \
         \"model_beta_seconds_per_byte\": {:.3e},\n    \
         \"probe_samples\": [{samples}\n    ]\n  }},\n  \
         \"collective_workloads\": [{workloads}\n  ],\n  \
         \"tool_runs\": [{runs}\n  ]\n}}\n",
        cal.alpha, cal.beta, defaults.alpha, defaults.beta,
    );
    let path = write_bench_json("proc", smoke, &json);
    println!("wrote {path}");
}
