//! Ablation of the geometric optimizations (Sec. 4.3–4.4): Hamerly-style
//! distance bounds and bounding-box pruning. The paper claims the inner
//! loop is skipped "in about 80 % of the cases, more in the later phases".
//!
//! All four configurations must produce the *identical* partition (the
//! optimizations are exact); they differ only in distance evaluations and
//! wall time.

use geographer::{partition, Config};
use geographer_bench::{scaled, TextTable};
use geographer_mesh::delaunay_unit_square;

fn main() {
    let n = scaled(40_000);
    let k = 16;
    println!("# Ablation: Hamerly bounds & bbox pruning (Delaunay n = {n}, k = {k})");
    let mesh = delaunay_unit_square(n, 51);
    let wp = mesh.weighted_points();

    let base = Config { sampling_init: false, ..Config::default() };
    let variants: [(&str, Config); 4] = [
        ("both on", base.clone()),
        ("no hamerly", Config { hamerly_bounds: false, ..base.clone() }),
        ("no bbox", Config { bbox_pruning: false, ..base.clone() }),
        (
            "both off",
            Config { hamerly_bounds: false, bbox_pruning: false, ..base.clone() },
        ),
    ];

    let mut table = TextTable::new(vec![
        "variant", "wall", "distEvals", "skipRate%", "bboxBreaks", "sameResult",
    ]);
    let mut reference: Option<Vec<u32>> = None;
    for (name, cfg) in &variants {
        let t = std::time::Instant::now();
        let res = partition(&wp, k, cfg);
        let wall = t.elapsed().as_secs_f64();
        let same = match &reference {
            None => {
                reference = Some(res.assignment.clone());
                "ref".to_string()
            }
            Some(r) => (r == &res.assignment).to_string(),
        };
        table.row(vec![
            name.to_string(),
            format!("{wall:.3}s"),
            res.stats.distance_evals.to_string(),
            format!("{:.1}", res.stats.skip_rate() * 100.0),
            res.stats.bbox_breaks.to_string(),
            same,
        ]);
    }
    table.print();
    println!("\n(paper: skip rate ≈ 80 %; identical results across variants)");

    // The bounding-box pruning is a *per-process* optimization: a rank's
    // local box only excludes far-away centers when each rank holds a small
    // spatial region, i.e. in SPMD mode. Show it firing at p = 8.
    use geographer_parcomm::{run_spmd, Comm};
    let pts = &wp.points;
    let w = &wp.weights;
    let p = 8;
    let stats = run_spmd(p, |comm| {
        let lo = comm.rank() * n / p;
        let hi = (comm.rank() + 1) * n / p;
        geographer::partition_spmd(&comm, &pts[lo..hi], &w[lo..hi], k, &base)
            .stats
            .reduce(&comm)
    });
    let s = &stats[0];
    println!(
        "\nSPMD p = {p}: {} bbox early-breaks over {} full evaluations \
         ({:.1}% of inner loops cut short), skip rate {:.1}%",
        s.bbox_breaks,
        s.points_visited - s.hamerly_skips,
        100.0 * s.bbox_breaks as f64 / (s.points_visited - s.hamerly_skips).max(1) as f64,
        s.skip_rate() * 100.0,
    );
}
