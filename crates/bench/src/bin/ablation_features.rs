//! Ablation of the algorithmic features: influence erosion (Sec. 4.2) and
//! the sampling initialization (Sec. 4.5), on the heterogeneous climate
//! mesh where erosion matters ("In very heterogeneous point distributions
//! ... anomalies such as empty or absurdly large clusters might occur").

use geographer::{partition, Config};
use geographer_bench::{scaled, TextTable};
use geographer_graph::evaluate_partition;
use geographer_mesh::climate25d;

fn main() {
    let n = scaled(25_000);
    let k = 16;
    println!("# Ablation: influence erosion & sampling init (climate mesh n = {n}, k = {k})");
    let mesh = climate25d(n, 40, 61);
    let wp = mesh.weighted_points();

    let variants: [(&str, Config); 4] = [
        ("erosion+sampling", Config::default()),
        ("no erosion", Config { influence_erosion: false, ..Config::default() }),
        ("no sampling", Config { sampling_init: false, ..Config::default() }),
        (
            "neither",
            Config {
                influence_erosion: false,
                sampling_init: false,
                ..Config::default()
            },
        ),
    ];

    let mut table = TextTable::new(vec![
        "variant", "wall", "iters", "balanceIters", "imbalance", "cut", "totCommVol",
        "emptyBlocks",
    ]);
    for (name, cfg) in &variants {
        let t = std::time::Instant::now();
        let res = partition(&wp, k, cfg);
        let wall = t.elapsed().as_secs_f64();
        let m = evaluate_partition(&mesh.graph, &res.assignment, &mesh.weights, k);
        let mut counts = vec![0usize; k];
        for &b in &res.assignment {
            counts[b as usize] += 1;
        }
        let empty = counts.iter().filter(|&&c| c == 0).count();
        table.row(vec![
            name.to_string(),
            format!("{wall:.3}s"),
            res.stats.movement_iterations.to_string(),
            res.stats.balance_iterations.to_string(),
            format!("{:.4}", res.stats.final_imbalance),
            m.edge_cut.to_string(),
            m.total_comm_volume.to_string(),
            empty.to_string(),
        ]);
    }
    table.print();
    println!("\n(expected: all variants balanced; erosion/sampling reduce iterations/time)");
}
