//! Ablation of the initial-center choice. The paper bootstraps centers
//! from the space-filling-curve order (Algorithm 2, line 7: equidistant
//! positions along the sorted points) and argues this "yields a beneficial
//! geometric spread"; it dismisses k-means++-style seeding as too
//! expensive (Sec. 3.3). Here we compare
//!
//! * `sfc-spread` — the paper's choice;
//! * `first-k` — the degenerate baseline (first k points: clumped);
//! * `strided` — every (n/k)-th point in *input* order (random spread).
//!
//! Metrics: movement iterations to convergence, distance evaluations,
//! final quality (edge cut of the induced partition).

use geographer::{balanced_kmeans, Config};
use geographer_bench::{scaled, TextTable};
use geographer_geometry::{Aabb, Point};
use geographer_graph::evaluate_partition;
use geographer_mesh::families::bubbles_like;
use geographer_parcomm::SelfComm;
use geographer_sfc::HilbertMapper;

fn main() {
    let n = scaled(20_000);
    let k = 16;
    println!("# Ablation: initial center seeding (bubbles-like mesh, n = {n}, k = {k})");
    let mesh = bubbles_like(n, 81);
    let pts = &mesh.points;
    let w = &mesh.weights;

    // The paper's seeding: equidistant along the Hilbert order.
    let bb = Aabb::from_points(pts).unwrap();
    let mapper = HilbertMapper::new(bb, 16);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| mapper.key_of(&pts[i as usize]));
    let sfc_centers: Vec<Point<2>> =
        (0..k).map(|i| pts[order[i * n / k + n / (2 * k)] as usize]).collect();

    let first_k: Vec<Point<2>> = pts[..k].to_vec();
    let strided: Vec<Point<2>> = (0..k).map(|i| pts[i * n / k + n / (2 * k)]).collect();

    let variants: [(&str, Vec<Point<2>>); 3] =
        [("sfc-spread", sfc_centers), ("first-k", first_k), ("strided", strided)];

    let mut table = TextTable::new(vec![
        "seeding", "iters", "balanceIters", "distEvals", "cut", "totCommVol", "imbalance",
    ]);
    let cfg = Config { sampling_init: false, max_iterations: 300, ..Config::default() };
    for (name, centers) in variants {
        let out = balanced_kmeans(&SelfComm, pts, w, k, centers, &cfg);
        let m = evaluate_partition(&mesh.graph, &out.assignment, w, k);
        table.row(vec![
            name.to_string(),
            out.stats.movement_iterations.to_string(),
            out.stats.balance_iterations.to_string(),
            out.stats.distance_evals.to_string(),
            m.edge_cut.to_string(),
            m.total_comm_volume.to_string(),
            format!("{:.4}", out.stats.final_imbalance),
        ]);
    }
    table.print();
    println!("\n(observed at reproduction scale: final quality and balance are");
    println!(" insensitive to the seeding — the influence mechanism repairs even");
    println!(" clumped seeds — while iteration counts vary; the SFC seeding's");
    println!(" value in the paper is at scale, where extra iterations are global");
    println!(" synchronizations and clumped seeds would need many more of them");
    println!(" *before* the sampling rounds can help)");
}
