//! Hierarchical-partitioning benchmark: flat k = 8 vs the hierarchical
//! solver on `[4, 2]` and `[2, 2, 2]` machines, on a clustered mesh and a
//! cluster-drift dynamic workload, emitting `BENCH_hierarchy.json` in the
//! current directory. The committed copy is the repository's hierarchy
//! baseline: cuts, communication volumes, and migration fractions are
//! deterministic; wall-clock fields are machine-dependent context, not a
//! regression gate.
//!
//! The question the benchmark answers is the paper's processor-aware one:
//! when blocks are mapped onto nodes (contiguous pairs/quads of flat block
//! ids — exactly `geographer_spmv::owner_of_block`'s mapping), does
//! solving the hierarchy *recursively* put less traffic on the expensive
//! inter-node links than slicing a flat k = 8 solution into node groups?
//! The per-level metrics of `geographer_graph::evaluate_levels` measure
//! both, and the two-tier α–β model prices them.
//!
//! ```console
//! $ cargo run --release -p geographer_bench --bin bench_hierarchy
//! $ cargo run --release -p geographer_bench --bin bench_hierarchy -- --smoke
//! ```

use std::fmt::Write as _;

use geographer::{Config, HierarchySpec};
use geographer_bench::{
    level_metrics_json, run_plan_chain, scaled, solve_plan, write_bench_json, PlanRecipe,
    TieredCostModel, Tool,
};
use geographer_graph::{evaluate_levels, imbalance, LevelMetrics};
use geographer_mesh::{families::bubbles_like, DynamicWorkload, Mesh, Scenario};

/// Everything one config row reports.
struct ConfigRow {
    name: String,
    machine: String,
    wall_s: f64,
    wall_max_rank_s: f64,
    imbalance: f64,
    levels: Vec<LevelMetrics>,
    inter_node_volume: u64,
    intra_node_volume: u64,
    modeled_exchange_s: f64,
}

fn row_for(
    name: &str,
    mesh: &Mesh<2>,
    assignment: &[u32],
    spec: &HierarchySpec,
    wall_s: f64,
    wall_max_rank_s: f64,
    model: &TieredCostModel,
) -> ConfigRow {
    let levels = evaluate_levels(&mesh.graph, assignment, &spec.level_groups());
    let leaf_vol = levels.last().unwrap().total_comm_volume;
    let inter = levels[0].total_comm_volume;
    let intra = leaf_vol - inter;
    ConfigRow {
        name: name.to_string(),
        machine: format!("{:?}", spec.arities()),
        wall_s,
        wall_max_rank_s,
        imbalance: imbalance(assignment, &mesh.weights, spec.total_blocks()),
        modeled_exchange_s: model.exchange_seconds(8 * intra, 8 * inter),
        inter_node_volume: inter,
        intra_node_volume: intra,
        levels,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 3_000 } else { scaled(12_000) };
    let steps = if smoke { 3 } else { 6 };
    let seed = 33;
    let cfg = Config { sampling_init: false, ..Config::default() };
    let model = TieredCostModel::default();

    // --- Static comparison on a clustered mesh -------------------------
    let mesh = bubbles_like(n, seed);

    let flat_recipe = PlanRecipe::flat("flat-k8", Tool::Geographer, 8, cfg.clone());
    let flat = solve_plan(&mesh, &flat_recipe, 1, None);

    let mut rows: Vec<ConfigRow> = Vec::new();
    for arities in [vec![4usize, 2], vec![2, 2, 2]] {
        let spec = HierarchySpec::uniform(&arities);
        rows.push(row_for(
            "flat-k8",
            &mesh,
            &flat.plan.assignment,
            &spec,
            flat.wall_seconds,
            flat.wall_max_rank_s,
            &model,
        ));
        let recipe = PlanRecipe::hierarchical(
            format!("hier-{arities:?}").replace(' ', ""),
            spec.clone(),
            cfg.clone(),
        );
        let hier = solve_plan(&mesh, &recipe, 1, None);
        let stats = hier.plan.stats.as_ref().expect("hierarchical plan carries stats");
        assert!(stats.balance_achieved, "hierarchical solve must balance every node");
        rows.push(row_for(
            &recipe.name,
            &mesh,
            &hier.plan.assignment,
            &spec,
            hier.wall_seconds,
            hier.wall_max_rank_s,
            &model,
        ));
    }
    // The acceptance inequality of ISSUE 4 / tests/hierarchy_props.rs: on
    // the clustered mesh, [4,2]'s inter-node volume beats flat k=8's under
    // the same node mapping.
    assert!(
        rows[1].inter_node_volume < rows[0].inter_node_volume,
        "hier-[4,2] inter-node volume {} must beat flat {}",
        rows[1].inter_node_volume,
        rows[0].inter_node_volume
    );

    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            rows_json,
            "{}    {{\"config\": \"{}\", \"machine\": \"{}\", \"wall_s\": {:.4}, \
             \"wall_max_rank_s\": {:.4}, \"ns_per_point\": {:.1}, \
             \"imbalance\": {:.5}, \"inter_node_volume\": {}, \"intra_node_volume\": {}, \
             \"modeled_exchange_s\": {:.6},\n     \"levels\": [{}]}}",
            if i > 0 { ",\n" } else { "" },
            r.name,
            r.machine,
            r.wall_s,
            r.wall_max_rank_s,
            geographer_bench::PlanRun::<2>::ns_per_point(r.wall_max_rank_s, n),
            r.imbalance,
            r.inter_node_volume,
            r.intra_node_volume,
            r.modeled_exchange_s,
            level_metrics_json(&r.levels)
        );
        eprintln!(
            "{:<14} machine={:<9} inter-node vol={:<6} intra-node vol={:<6} modeled \
             exchange={:.1}us imb={:.4}",
            r.name,
            r.machine,
            r.inter_node_volume,
            r.intra_node_volume,
            r.modeled_exchange_s * 1e6,
            r.imbalance
        );
    }

    // --- Dynamic workload: warm hierarchical vs warm flat --------------
    let spec = HierarchySpec::uniform(&[4, 2]);
    let workload = DynamicWorkload::new(
        bubbles_like(n, seed + 1),
        Scenario::ClusterDrift { clusters: 5, speed: 0.01 },
        seed + 1,
    );
    let hier_chain = run_plan_chain(
        &workload,
        &PlanRecipe::hierarchical("hier", spec.clone(), cfg.clone()).warm(),
        1,
        steps,
    );
    let flat_chain = run_plan_chain(
        &workload,
        &PlanRecipe::flat("flat", Tool::Geographer, 8, cfg.clone()).warm(),
        1,
        steps,
    );
    let (mut hier_mig, mut flat_mig) = (0.0f64, 0.0f64);
    let (mut hier_vol, mut flat_vol) = (0u64, 0u64);
    let mut steps_json = String::new();
    for (h, f) in hier_chain.iter().zip(&flat_chain) {
        let step = h.step;
        let graph = &workload.base.graph;
        // The hierarchical plan already evaluated its levels; the flat
        // assignment is sliced into the same node groups here.
        let h_inter =
            h.plan.levels.as_ref().expect("hier plan has levels")[0].total_comm_volume;
        let f_inter = evaluate_levels(graph, &f.plan.assignment, &spec.level_groups())[0]
            .total_comm_volume;
        let (h_mig, f_mig) = (h.migrated_point_fraction, f.migrated_point_fraction);
        let _ = write!(
            steps_json,
            "{}    {{\"step\": {step}, \"hier_inter_node_volume\": {h_inter}, \
             \"flat_inter_node_volume\": {f_inter}, \"hier_migration\": {h_mig:.5}, \
             \"flat_migration\": {f_mig:.5}}}",
            if step > 0 { ",\n" } else { "" },
        );
        hier_vol += h_inter;
        flat_vol += f_inter;
        hier_mig += h_mig;
        flat_mig += f_mig;
    }
    let resteps = (steps - 1).max(1) as f64;
    eprintln!(
        "dynamic ({steps} steps): hier inter-node vol Σ={hier_vol} migr={:.3} | flat \
         inter-node vol Σ={flat_vol} migr={:.3}",
        hier_mig / resteps,
        flat_mig / resteps
    );

    let json = format!(
        "{{\n  \"bench\": \"hierarchy\",\n  \
         \"mesh\": {{\"kind\": \"bubbles_like\", \"n\": {n}, \"seed\": {seed}}},\n  \
         \"epsilon\": {:.2},\n  \
         \"cost_model\": {{\"inter\": {{\"alpha_s\": {:.1e}, \"beta_s_per_byte\": {:.1e}}}, \
         \"intra\": {{\"alpha_s\": {:.1e}, \"beta_s_per_byte\": {:.1e}}}}},\n  \
         \"static\": [\n{rows_json}\n  ],\n  \
         \"dynamic\": {{\"scenario\": \"cluster-drift\", \"machine\": \"[4, 2]\", \
         \"steps\": {steps}, \"warm\": true,\n   \
         \"hier_inter_node_volume_sum\": {hier_vol}, \
         \"flat_inter_node_volume_sum\": {flat_vol}, \
         \"hier_mean_migration\": {:.5}, \"flat_mean_migration\": {:.5},\n   \
         \"steps_detail\": [\n{steps_json}\n   ]}}\n}}\n",
        cfg.epsilon,
        model.inter.alpha,
        model.inter.beta,
        model.intra.alpha,
        model.intra.beta,
        hier_mig / resteps,
        flat_mig / resteps,
    );
    // Smoke runs (CI) must not clobber the committed full-scale baseline.
    let path = write_bench_json("hierarchy", smoke, &json);
    println!("{json}");
    println!("wrote {path}");
}
