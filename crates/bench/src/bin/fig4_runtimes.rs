//! Fig. 4 reproduction: running time of every tool on every instance,
//! targeting a fixed number of points per block (the paper uses 250 000;
//! we scale down), with a least-squares trend line per tool in log-log
//! space (modeled time vs n).

use geographer::Config;
use geographer_bench::{run_tool, scaled, CostModel, TextTable, Tool};
use geographer_mesh::families::{climate_suite, dimacs2d_suite, three_d_suite};

/// Least-squares slope+intercept of y = a·x + b.
fn least_squares(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let b = (sy - a * sx) / n;
    (a, b)
}

fn main() {
    let per_block = scaled(2000);
    let model = CostModel::default();
    let cfg = Config::default();
    println!("# Fig. 4: runtime vs n, target {per_block} points per block (k = p, powers of two)");

    let mut table =
        TextTable::new(vec!["instance", "n", "k", "tool", "modeled", "serialized"]);
    // (tool index, ln n, ln modeled) for trend lines.
    let mut samples: Vec<Vec<(f64, f64)>> = vec![Vec::new(); Tool::ALL.len()];

    let mut run2d = |name: &str, mesh: &geographer_mesh::Mesh<2>| {
        let k = ((mesh.n() as f64 / per_block as f64).round().max(2.0) as usize)
            .next_power_of_two();
        let p = k.min(16);
        for (t, tool) in Tool::ALL.iter().enumerate() {
            let out = run_tool(*tool, mesh, k, p, &cfg);
            let modeled = model.modeled_seconds(out.wall_seconds, p, &out.comm);
            samples[t].push(((mesh.n() as f64).ln(), modeled.max(1e-9).ln()));
            table.row(vec![
                name.to_string(),
                mesh.n().to_string(),
                k.to_string(),
                tool.name().to_string(),
                format!("{:.2}ms", modeled * 1e3),
                format!("{:.2}s", out.wall_seconds),
            ]);
        }
    };

    for inst in dimacs2d_suite(scaled(10_000), 4) {
        run2d(inst.name, &inst.mesh);
    }
    for inst in climate_suite(scaled(7_000), 5) {
        run2d(inst.name, &inst.mesh);
    }
    for inst in three_d_suite(scaled(6_000), 6) {
        let mesh = inst.mesh;
        let k = ((mesh.n() as f64 / per_block as f64).round().max(2.0) as usize)
            .next_power_of_two();
        let p = k.min(16);
        for (t, tool) in Tool::ALL.iter().enumerate() {
            let out = run_tool(*tool, &mesh, k, p, &cfg);
            let modeled = model.modeled_seconds(out.wall_seconds, p, &out.comm);
            samples[t].push(((mesh.n() as f64).ln(), modeled.max(1e-9).ln()));
            table.row(vec![
                inst.name.to_string(),
                mesh.n().to_string(),
                k.to_string(),
                tool.name().to_string(),
                format!("{:.2}ms", modeled * 1e3),
                format!("{:.2}s", out.wall_seconds),
            ]);
        }
    }
    table.print();

    println!("\n## Least-squares trends (log-log: modeled_time ~ n^slope)");
    let mut trend = TextTable::new(vec!["tool", "slope", "intercept"]);
    for (t, tool) in Tool::ALL.iter().enumerate() {
        let xs: Vec<f64> = samples[t].iter().map(|s| s.0).collect();
        let ys: Vec<f64> = samples[t].iter().map(|s| s.1).collect();
        let (a, b) = least_squares(&xs, &ys);
        trend.row(vec![tool.name().to_string(), format!("{a:.3}"), format!("{b:.2}")]);
    }
    trend.print();
}
