//! Measure the paper's Sec. 4.3 dismissal of nearest-neighbour structures:
//! "Nearest-neighbor data structures like kd-trees are outperformed by
//! simpler distance bounds in most published experiments."
//!
//! We time one full assignment pass over n points against k centers with
//! warped (influence-weighted) distances, three ways:
//!
//! * naive — evaluate all k centers per point;
//! * kd-tree — [`geographer::kdtree::CenterTree`] with effective-distance
//!   pruning (rebuilt once per pass, as it would be after every center
//!   movement);
//! * Hamerly bounds — the per-pass *average* cost inside the real solver,
//!   whose bounds persist across iterations (read from its counters).

use std::time::Instant;

use geographer::kdtree::{CenterTree, TreeCursor};
use geographer::{balanced_kmeans, Config};
use geographer_bench::{scaled, TextTable};
use geographer_geometry::Point;
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::SelfComm;

fn main() {
    let n = scaled(100_000);
    let k = 64;
    println!("# Ablation: kd-tree vs distance bounds (n = {n}, k = {k})");
    let mesh = delaunay_unit_square(n, 91);
    let pts = &mesh.points;
    // A mid-run state: spread centers, mildly varied influences.
    let centers: Vec<Point<2>> = (0..k).map(|i| pts[i * n / k + n / (2 * k)]).collect();
    let influence: Vec<f64> = (0..k).map(|i| 0.9 + 0.2 * ((i % 5) as f64 / 4.0)).collect();

    let mut table = TextTable::new(vec!["method", "pass time", "dist evals", "evals/point"]);

    // Naive pass.
    let t = Instant::now();
    let mut checksum = 0u64;
    for p in pts {
        let mut best = (f64::INFINITY, 0u32);
        for (c, (ctr, i)) in centers.iter().zip(&influence).enumerate() {
            let e = p.dist(ctr) / i;
            if e < best.0 {
                best = (e, c as u32);
            }
        }
        checksum = checksum.wrapping_add(best.1 as u64);
    }
    let naive_t = t.elapsed().as_secs_f64();
    table.row(vec![
        "naive".to_string(),
        format!("{:.1}ms", naive_t * 1e3),
        format!("{}", n * k),
        format!("{k}.0"),
    ]);

    // kd-tree pass (build + batched queries over blocks of spatially
    // adjacent points, one reusable cursor — the tree's best case).
    let t = Instant::now();
    let tree = CenterTree::build(&centers, &influence);
    let mut kd_evals = 0u64;
    let mut kd_checksum = 0u64;
    let mut cursor = TreeCursor::default();
    let mut block = Vec::new();
    for chunk in pts.chunks(256) {
        tree.nearest_batch(chunk, &mut cursor, &mut block);
        for r in &block {
            kd_evals += r.evals as u64;
            kd_checksum = kd_checksum.wrapping_add(r.center as u64);
        }
    }
    let kd_t = t.elapsed().as_secs_f64();
    assert_eq!(checksum, kd_checksum, "kd-tree must agree with naive");
    table.row(vec![
        "kd-tree".to_string(),
        format!("{:.1}ms", kd_t * 1e3),
        kd_evals.to_string(),
        format!("{:.1}", kd_evals as f64 / n as f64),
    ]);

    // Hamerly-bounds solver: per-pass average from a real run.
    let cfg = Config { sampling_init: false, max_iterations: 25, ..Config::default() };
    let t = Instant::now();
    let out = balanced_kmeans(&SelfComm, pts, &mesh.weights, k, centers.clone(), &cfg);
    let solver_t = t.elapsed().as_secs_f64();
    let passes = out.stats.balance_iterations.max(1);
    table.row(vec![
        "hamerly bounds (solver avg)".to_string(),
        format!("{:.1}ms", solver_t * 1e3 / passes as f64),
        format!("{}", out.stats.distance_evals / passes),
        format!("{:.1}", out.stats.distance_evals as f64 / passes as f64 / n as f64),
    ]);

    table.print();
    println!(
        "\n(paper's claim: the simple bounds beat kd-trees — the bounds amortize\n\
         across iterations and pay no per-pass rebuild/traversal overhead)"
    );
}
