//! Fig. 3b reproduction: strong scaling on the largest Delaunay instance —
//! fixed n, growing p = k (the paper notes this is not strictly strong
//! scaling since k grows with p, and we follow that setup).
//!
//! Expected shape: near-perfect scaling for Geographer/MJ/HSFC up to the
//! point where collective latency dominates; RCB and RIB flatten out much
//! earlier and end up slowest.
//!
//! `--proc` runs every solve on the multi-process backend (forked workers
//! over Unix-domain sockets) and replaces the default α–β constants with
//! values *measured* on that substrate by the calibration probe.

use geographer::Config;
use geographer_bench::{run_tool_backend, scaled, CostModel, SpmdBackend, TextTable, Tool};
use geographer_mesh::delaunay_unit_square;
use geographer_parcomm::{measure_alpha_beta, Collective};

fn main() {
    let n = scaled(120_000);
    let ps = [4usize, 8, 16, 32, 64];
    let backend = SpmdBackend::from_cli_args();
    let model = match backend {
        SpmdBackend::Thread => CostModel::default(),
        SpmdBackend::Proc => {
            let m = measure_alpha_beta(50).expect("calibration probe");
            eprintln!(
                "# measured socket substrate: alpha={:.2}us/round beta={:.3}ns/B",
                m.alpha * 1e6,
                m.beta * 1e9
            );
            CostModel { alpha: m.alpha, beta: m.beta }
        }
    };
    let cfg = Config::default();
    println!("# Fig. 3b strong scaling: Delaunay n = {n}, k = p [{} backend]", backend.name());
    let mesh = delaunay_unit_square(n, 99);
    let mut table = TextTable::new(
        std::iter::once("p=k".to_string())
            .chain(Tool::ALL.iter().map(|t| format!("{} [ms]", t.name())))
            .collect::<Vec<_>>(),
    );
    for &p in &ps {
        let mut cells = vec![p.to_string()];
        for tool in Tool::ALL {
            let out = run_tool_backend(tool, &mesh, p, p, &cfg, backend);
            let modeled = model.modeled_seconds(out.wall_seconds, p, &out.comm);
            cells.push(format!("{:.2}", modeled * 1e3));
            let red = out.comm.op(Collective::Allreduce);
            let a2a = out.comm.op(Collective::Alltoallv);
            eprintln!(
                "  p={p} {}: wall(serialized)={:.2}s rounds={} bytes/rank={} \
                 (allreduce {} rounds / {} B; alltoallv {} ops / {} B)",
                tool.name(),
                out.wall_seconds,
                out.comm.rounds(),
                out.comm.bytes_per_rank(),
                red.rounds,
                red.bytes,
                a2a.ops,
                a2a.bytes
            );
        }
        table.row(cells);
    }
    table.print();
    println!("\n(modeled parallel ms; halving per row = perfect strong scaling)");
}
