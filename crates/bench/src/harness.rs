//! Shared benchmark harness over the planner: recipes, single solves,
//! warm chains, and output plumbing.
//!
//! Before the planner existed, every `bench_*` binary hand-rolled the same
//! glue — SPMD launch, chunk slicing, warm-state threading, refinement
//! dispatch, migration accounting, and `--smoke` output routing — with
//! small drifting differences. This module is that glue, written once:
//!
//! * [`PlanRecipe`] — a named, owned [`geographer_planner::PlanSpec`]
//!   shape (tool, k, hierarchy, refinement, config, warm flag). Binaries
//!   are now thin recipe tables plus a formatter.
//! * [`solve_plan`] — run one recipe on a mesh with `p` SPMD ranks and
//!   return rank 0's [`Plan`] plus the serialized wall time.
//! * [`run_plan_chain`] — drive a recipe over a time-stepped workload,
//!   threading each step's returned [`PlanState`] into the next solve when
//!   the recipe is warm, and measuring per-step quality and relabel-free
//!   migration.
//! * [`write_bench_json`] / [`level_metrics_json`] — the shared output
//!   conventions (smoke runs write under `target/` so CI never clobbers
//!   the committed full-scale baselines).

use std::fmt::Write as _;
use std::time::Instant;

use geographer::{Config, HierarchySpec};
use geographer_graph::{edge_cut, imbalance, relabel_free_migration, LevelMetrics};
use geographer_mesh::{DynamicWorkload, Mesh};
use geographer_parcomm::{run_spmd, run_spmd_proc, CommStats, ProcError};
use geographer_planner::{MeshView, Plan, PlanSpec, PlanState, Planner, RefineMode, Tool};

/// Which SPMD substrate a benchmark launches its ranks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpmdBackend {
    /// Ranks are threads of this process sharing an address space
    /// ([`geographer_parcomm::ThreadComm`]) — fast to launch, payloads
    /// move as pointers, communication costs are *modeled* from counters.
    #[default]
    Thread,
    /// Ranks are forked worker processes talking over Unix-domain sockets
    /// ([`geographer_parcomm::ProcComm`]) — every payload is serialized
    /// through the kernel, so per-round latency and per-byte cost are
    /// *measurable* ([`geographer_parcomm::measure_alpha_beta`]).
    Proc,
}

impl SpmdBackend {
    /// Display name for benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SpmdBackend::Thread => "thread",
            SpmdBackend::Proc => "proc",
        }
    }

    /// Backend selected by the process's CLI arguments: `--proc` picks the
    /// multi-process substrate, default is threads. The figure binaries
    /// all share this switch.
    pub fn from_cli_args() -> SpmdBackend {
        if std::env::args().any(|a| a == "--proc") {
            SpmdBackend::Proc
        } else {
            SpmdBackend::Thread
        }
    }
}

/// A named, owned plan shape: everything a [`PlanSpec`] carries except the
/// mesh borrow, plus the warm flag chains use. One benchmark configuration
/// = one recipe.
#[derive(Debug, Clone)]
pub struct PlanRecipe {
    /// Display/JSON label of this configuration.
    pub name: String,
    /// Which partitioner runs.
    pub tool: Tool,
    /// Leaf block count.
    pub k: usize,
    /// Solve for a processor hierarchy (Geographer only).
    pub hierarchy: Option<HierarchySpec>,
    /// Refinement post-pass.
    pub refine: RefineMode,
    /// Solver tuning.
    pub config: Config,
    /// In a chain, feed each step's returned state into the next solve
    /// (stateless tools simply never produce state, degrading to cold —
    /// the comparison the paper's reuse argument makes).
    pub warm: bool,
}

impl PlanRecipe {
    /// Cold flat recipe with no refinement.
    pub fn flat(name: impl Into<String>, tool: Tool, k: usize, config: Config) -> Self {
        PlanRecipe {
            name: name.into(),
            tool,
            k,
            hierarchy: None,
            refine: RefineMode::None,
            config,
            warm: false,
        }
    }

    /// Cold hierarchical Geographer recipe with no refinement.
    pub fn hierarchical(name: impl Into<String>, spec: HierarchySpec, config: Config) -> Self {
        PlanRecipe {
            name: name.into(),
            tool: Tool::Geographer,
            k: spec.total_blocks(),
            hierarchy: Some(spec),
            refine: RefineMode::None,
            config,
            warm: false,
        }
    }

    /// Same recipe with a refinement mode.
    pub fn with_refine(mut self, refine: RefineMode) -> Self {
        self.refine = refine;
        self
    }

    /// Same recipe, warm-started across chain steps.
    pub fn warm(mut self) -> Self {
        self.warm = true;
        self
    }

    /// Borrow this recipe as a [`PlanSpec`] over `mesh`.
    pub fn spec<'a, const D: usize>(&self, mesh: &'a Mesh<D>) -> PlanSpec<'a, D> {
        self.spec_view(MeshView::from(mesh))
    }

    /// Borrow this recipe as a [`PlanSpec`] over an arbitrary mesh view —
    /// in particular one without a graph, as the scaling benchmark uses
    /// (no Delaunay triangulation at n = 4M).
    pub fn spec_view<'a, const D: usize>(&self, view: MeshView<'a, D>) -> PlanSpec<'a, D> {
        PlanSpec {
            mesh: view,
            tool: self.tool,
            k: self.k,
            hierarchy: self.hierarchy.clone(),
            refine: self.refine.clone(),
            config: self.config.clone(),
        }
    }
}

/// One finished [`solve_plan`] run: rank 0's plan plus the wall time of
/// the whole SPMD execution (serialized compute of all ranks on the
/// single-core reproduction machine).
#[derive(Debug, Clone)]
pub struct PlanRun<const D: usize> {
    /// Rank 0's plan (the assignment is global and identical on all ranks).
    pub plan: Plan<D>,
    /// Wall-clock seconds of the whole SPMD run, refinement included.
    /// With `p > 1` ranks on the single-core reproduction machine this is
    /// the *serialized* compute of all ranks — it grows with `p` and must
    /// not be read as a scaling curve.
    pub wall_seconds: f64,
    /// Maximum over ranks of each rank's own wall clock around its solve.
    /// On a genuinely parallel host this is the parallel runtime; on the
    /// single-core harness ranks interleave and block in each other's
    /// collectives, so it approaches `wall_seconds` — the honest per-rank
    /// readout either way, reported next to `wall_seconds` so neither
    /// number is mistaken for the other.
    pub wall_max_rank_s: f64,
    /// Per-phase maximum across ranks of the pipeline timings (`None`
    /// when the recipe is not a flat stateful solve).
    pub phase_max: Option<geographer::PipelineTimings>,
}

impl<const D: usize> PlanRun<D> {
    /// Nanoseconds per point for a measured seconds figure over `n` points.
    pub fn ns_per_point(seconds: f64, n: usize) -> f64 {
        if n == 0 { 0.0 } else { seconds * 1e9 / n as f64 }
    }
}

/// Run one recipe on `mesh` with `p` SPMD ranks, optionally warm-started
/// from `state`. This is the single SPMD launch site every benchmark
/// routes through.
pub fn solve_plan<const D: usize>(
    mesh: &Mesh<D>,
    recipe: &PlanRecipe,
    p: usize,
    state: Option<&PlanState<D>>,
) -> PlanRun<D> {
    solve_plan_view(MeshView::from(mesh), recipe, p, state)
}

/// [`solve_plan`] over a bare [`MeshView`] (graph optional).
pub fn solve_plan_view<const D: usize>(
    view: MeshView<'_, D>,
    recipe: &PlanRecipe,
    p: usize,
    state: Option<&PlanState<D>>,
) -> PlanRun<D> {
    let t = Instant::now();
    let mut plans = run_spmd(p, |comm| {
        let rt = Instant::now();
        let plan = Planner::solve(&recipe.spec_view(view), state, &comm);
        (plan, rt.elapsed().as_secs_f64())
    });
    let wall_seconds = t.elapsed().as_secs_f64();
    let wall_max_rank_s =
        plans.iter().map(|(_, s)| *s).fold(0.0, f64::max);
    let phase_max = plans
        .iter()
        .filter_map(|(plan, _)| plan.phase_timings)
        .reduce(|a, b| geographer::PipelineTimings {
            sfc_index: a.sfc_index.max(b.sfc_index),
            redistribute: a.redistribute.max(b.redistribute),
            kmeans: a.kmeans.max(b.kmeans),
            writeback: a.writeback.max(b.writeback),
        });
    PlanRun { plan: plans.remove(0).0, wall_seconds, wall_max_rank_s, phase_max }
}

/// One finished [`solve_plan_proc`] run: what a cold solve can report when
/// every rank is a separate OS process. The rich [`Plan`] extras (warm
/// state, refinement reports, per-phase timings) stay in the workers; the
/// assignment, the communication counters, and the wall clocks cross the
/// process boundary.
#[derive(Debug, Clone)]
pub struct ProcRun {
    /// Rank 0's global assignment (identical on all ranks, pinned by the
    /// cross-backend conformance suite).
    pub assignment: Vec<u32>,
    /// Job-wide communication counters, combined from the per-rank views
    /// with the same convention as the thread backend (ops/rounds from
    /// rank 0, received bytes summed over ranks).
    pub comm: CommStats,
    /// Parent's wall clock around the whole job, fork and rendezvous
    /// included.
    pub wall_seconds: f64,
    /// Maximum over ranks of each worker's own solve wall clock.
    pub wall_max_rank_s: f64,
}

/// Run one **cold** recipe on `mesh` with `p` worker *processes* — the
/// multi-process counterpart of [`solve_plan`]. The mesh is inherited by
/// the forked workers (no input serialization); results come back over
/// the control sockets. A worker that panics, dies, or hangs surfaces as
/// `Err`, never as a hang.
pub fn solve_plan_proc<const D: usize>(
    mesh: &Mesh<D>,
    recipe: &PlanRecipe,
    p: usize,
) -> Result<ProcRun, ProcError> {
    solve_plan_proc_view(MeshView::from(mesh), recipe, p)
}

/// [`solve_plan_proc`] over a bare [`MeshView`] (graph optional).
pub fn solve_plan_proc_view<const D: usize>(
    view: MeshView<'_, D>,
    recipe: &PlanRecipe,
    p: usize,
) -> Result<ProcRun, ProcError> {
    let t = Instant::now();
    let per_rank = run_spmd_proc(p, |comm| {
        let rt = Instant::now();
        let plan = Planner::solve(&recipe.spec_view(view), None, &comm);
        (plan.assignment, plan.comm, rt.elapsed().as_secs_f64())
    })?;
    let wall_seconds = t.elapsed().as_secs_f64();
    let wall_max_rank_s = per_rank.iter().map(|(_, _, s)| *s).fold(0.0, f64::max);
    let views: Vec<CommStats> = per_rank.iter().map(|(_, c, _)| *c).collect();
    let comm = CommStats::from_rank_views(&views);
    let mut per_rank = per_rank;
    Ok(ProcRun { assignment: per_rank.remove(0).0, comm, wall_seconds, wall_max_rank_s })
}

/// Per-step outcome of [`run_plan_chain`].
#[derive(Debug, Clone)]
pub struct ChainStep<const D: usize> {
    /// Workload step index (0 = bootstrap).
    pub step: usize,
    /// Wall-clock seconds of this step's (serialized SPMD) solve.
    pub wall_seconds: f64,
    /// Max-over-ranks per-rank wall of this step (see
    /// [`PlanRun::wall_max_rank_s`]).
    pub wall_max_rank_s: f64,
    /// Uniform-target weighted imbalance of this step's assignment.
    pub imbalance: f64,
    /// Edge cut on the workload's (fixed) topology.
    pub edge_cut: u64,
    /// Relabel-free migrated-point fraction vs the previous step (0 at
    /// step 0).
    pub migrated_point_fraction: f64,
    /// Relabel-free migrated-weight fraction vs the previous step (0 at
    /// step 0), under this step's weights.
    pub migrated_weight_fraction: f64,
    /// The full plan (per-level metrics, refinement reports, comm, …).
    pub plan: Plan<D>,
}

/// Drive a recipe over `steps` steps of a dynamic workload with `p` SPMD
/// ranks. Step 0 is always a cold bootstrap; when the recipe is warm,
/// every later step feeds the previous plan's returned [`PlanState`] back
/// into the solve — flat or hierarchical, the chain code is the same.
pub fn run_plan_chain(
    workload: &DynamicWorkload,
    recipe: &PlanRecipe,
    p: usize,
    steps: usize,
) -> Vec<ChainStep<2>> {
    assert!(steps >= 1);
    let mut out = Vec::with_capacity(steps);
    let mut state: Option<PlanState<2>> = None;
    let mut prev_assignment: Option<Vec<u32>> = None;
    for step in 0..steps {
        let mesh = workload.mesh_at(step);
        let run = solve_plan(&mesh, recipe, p, if recipe.warm { state.as_ref() } else { None });
        let plan = run.plan;
        let (mig_pts, mig_w) = match &prev_assignment {
            Some(prev) => {
                let m =
                    relabel_free_migration(prev, &plan.assignment, &mesh.weights, recipe.k);
                (m.point_fraction, m.weight_fraction)
            }
            None => (0.0, 0.0),
        };
        state = plan.state.clone();
        prev_assignment = Some(plan.assignment.clone());
        out.push(ChainStep {
            step,
            wall_seconds: run.wall_seconds,
            wall_max_rank_s: run.wall_max_rank_s,
            imbalance: imbalance(&plan.assignment, &mesh.weights, recipe.k),
            edge_cut: edge_cut(&mesh.graph, &plan.assignment),
            migrated_point_fraction: mig_pts,
            migrated_weight_fraction: mig_w,
            plan,
        });
    }
    out
}

/// JSON array body for a slice of per-level metrics (the shared format of
/// `BENCH_hierarchy.json` and `BENCH_planner.json`).
pub fn level_metrics_json(levels: &[LevelMetrics]) -> String {
    let mut s = String::new();
    for (i, l) in levels.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"groups\": {}, \"edge_cut\": {}, \"total_comm_volume\": {}, \
             \"max_comm_volume\": {}}}",
            if i > 0 { ", " } else { "" },
            l.groups,
            l.edge_cut,
            l.total_comm_volume,
            l.max_comm_volume
        );
    }
    s
}

/// Write a benchmark JSON document to its canonical location and return
/// the path: `BENCH_<name>.json` in the working directory for full runs,
/// `target/BENCH_<name>.smoke.json` for smoke runs (CI must never clobber
/// the committed full-scale baseline).
pub fn write_bench_json(name: &str, smoke: bool, json: &str) -> String {
    let path = if smoke {
        std::fs::create_dir_all("target").expect("create target/");
        format!("target/BENCH_{name}.smoke.json")
    } else {
        format!("BENCH_{name}.json")
    };
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_mesh::{delaunay_unit_square, Scenario};

    #[test]
    fn solve_plan_matches_direct_planner_call() {
        let mesh = delaunay_unit_square(800, 71);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let recipe = PlanRecipe::flat("g", Tool::Geographer, 4, cfg);
        let run1 = solve_plan(&mesh, &recipe, 1, None);
        let run4 = solve_plan(&mesh, &recipe, 4, None);
        assert_eq!(run1.plan.assignment.len(), 800);
        // Global assignment on every rank count; solver agreement across
        // rank counts is pinned by tests/tool_conformance.rs.
        assert_eq!(run4.plan.assignment.len(), 800);
        assert_eq!(run4.plan.ranks, 4);
        assert!(run4.plan.comm.rounds() > 0);
    }

    #[test]
    fn warm_chain_threads_state_and_cold_chain_does_not() {
        let wl = DynamicWorkload::new(
            delaunay_unit_square(700, 72),
            Scenario::ClusterDrift { clusters: 3, speed: 0.02 },
            72,
        );
        let cfg = Config { sampling_init: false, ..Config::default() };
        let warm =
            run_plan_chain(&wl, &PlanRecipe::flat("w", Tool::Geographer, 4, cfg.clone()).warm(), 2, 3);
        let cold = run_plan_chain(&wl, &PlanRecipe::flat("c", Tool::Geographer, 4, cfg), 2, 3);
        assert_eq!(warm.len(), 3);
        assert_eq!(warm[0].migrated_point_fraction, 0.0);
        // Same bootstrap (both cold at step 0).
        assert_eq!(warm[0].plan.assignment, cold[0].plan.assignment);
        for s in warm.iter().chain(&cold) {
            assert!(s.imbalance <= 0.03 + 1e-6);
            assert!(s.edge_cut > 0);
        }
        // Warm steps must move fewer iterations than cold re-solves.
        let warm_iters: u64 =
            warm[1..].iter().map(|s| s.plan.stats.as_ref().unwrap().movement_iterations).sum();
        let cold_iters: u64 =
            cold[1..].iter().map(|s| s.plan.stats.as_ref().unwrap().movement_iterations).sum();
        assert!(warm_iters < cold_iters, "warm {warm_iters} vs cold {cold_iters}");
    }

    #[test]
    fn stateless_chain_degrades_to_cold() {
        let wl = DynamicWorkload::new(
            delaunay_unit_square(500, 73),
            Scenario::ClusterDrift { clusters: 2, speed: 0.02 },
            73,
        );
        let cfg = Config::default();
        let steps =
            run_plan_chain(&wl, &PlanRecipe::flat("rcb", Tool::Rcb, 4, cfg).warm(), 1, 2);
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| s.plan.state.is_none()));
    }
}
