//! α–β communication cost model.
//!
//! The reproduction machine has a single core, so the wall-clock of a
//! `ThreadComm` run with `p` ranks is (approximately) the *serialized
//! total* compute of all ranks — wall-clock speedup cannot be observed.
//! The scaling figures therefore report a modeled time
//!
//! ```text
//! T(p) = serialized_compute / p  +  α · rounds  +  β · bytes_per_rank
//! ```
//!
//! where `rounds` (barrier-synchronized communication steps) and
//! `bytes_per_rank` (payload bytes received by a rank) come from the
//! per-collective counters the substrate measures — they are structural
//! properties of the algorithm, not of the machine — and α/β are set to
//! typical cluster-interconnect constants. With native collectives the two
//! terms are faithful: a recursive-doubling allreduce contributes
//! `⌈log₂ p⌉` rounds and `O(m·log p)` received bytes per rank, exactly the
//! α–β cost of its MPI counterpart, where the earlier allgather-derived
//! substrate charged `O(m·p)` volume and poisoned the model. The compute
//! term assumes perfect scaling — balanced k-means and the baselines are
//! all data-parallel in their point loops, which is what the paper
//! observes too; what differentiates the tools at scale is the collective
//! structure, which we measure rather than model. See DESIGN.md §3.

use geographer_parcomm::CommStats;

/// Machine constants of the modeled cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds per synchronization round (latency + synchronisation).
    pub alpha: f64,
    /// Seconds per payload byte received by a rank (inverse per-link
    /// bandwidth).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // 20 µs per round, 0.5 ns/byte (≈ 2 GB/s effective) — typical
        // commodity-cluster MPI numbers.
        CostModel { alpha: 20e-6, beta: 0.5e-9 }
    }
}

impl CostModel {
    /// Modeled parallel seconds for a run whose serialized compute took
    /// `serialized_seconds`, on `p` ranks, with measured `comm` counters.
    pub fn modeled_seconds(&self, serialized_seconds: f64, p: usize, comm: &CommStats) -> f64 {
        assert!(p >= 1);
        serialized_seconds / p as f64 + comm.modeled_seconds(self.alpha, self.beta)
    }

    /// Typical intra-node constants: shared-memory/NVLink-class links are
    /// roughly an order of magnitude better than the cluster interconnect
    /// in both latency and bandwidth.
    pub fn intra_node() -> Self {
        // 2 µs per round, 0.05 ns/byte (≈ 20 GB/s effective).
        CostModel { alpha: 2e-6, beta: 0.05e-9 }
    }
}

/// Two-tier α–β model of a hierarchical machine: traffic crossing a node
/// boundary pays the interconnect constants, traffic between ranks of the
/// same node the (much cheaper) intra-node constants. It turns structural
/// volumes into modeled exchange seconds that actually reflect the
/// hierarchy — a flat model charges sibling-block chatter at interconnect
/// prices and overstates the cost of everything the hierarchical solver
/// deliberately keeps on-node.
///
/// Two byte sources exist and they count *differently* — pick one and
/// stay with it when comparing numbers:
///
/// * `geographer_spmv::spmv_comm_time_on_nodes` counts what the wire
///   carries: one value per **destination rank** that needs it, so a
///   vertex with neighbours in two blocks hosted by the same remote node
///   is sent twice (8 × 2 bytes);
/// * `geographer_graph::evaluate_levels`' level-0 volume coarsens to
///   node groups *first*: the same vertex counts once per **destination
///   node** (8 bytes) — the idealized volume a node-aware runtime that
///   deduplicates per node would move.
///
/// `BENCH_hierarchy.json` and `bench_hierarchy` use the `evaluate_levels`
/// convention throughout.
#[derive(Debug, Clone, Copy)]
pub struct TieredCostModel {
    /// Constants of the inter-node links (the cluster interconnect).
    pub inter: CostModel,
    /// Constants of the intra-node links.
    pub intra: CostModel,
}

impl Default for TieredCostModel {
    fn default() -> Self {
        TieredCostModel { inter: CostModel::default(), intra: CostModel::intra_node() }
    }
}

impl TieredCostModel {
    /// Modeled seconds of one neighbourhood exchange (e.g. one SpMV halo
    /// exchange) that moves `intra_bytes` between ranks of the same node
    /// and `inter_bytes` across nodes. Each tier that carries traffic is
    /// charged one latency round; bytes are charged at the tier's inverse
    /// bandwidth.
    pub fn exchange_seconds(&self, intra_bytes: u64, inter_bytes: u64) -> f64 {
        let mut t = 0.0;
        if intra_bytes > 0 {
            t += self.intra.alpha + self.intra.beta * intra_bytes as f64;
        }
        if inter_bytes > 0 {
            t += self.inter.alpha + self.inter.beta * inter_bytes as f64;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_parcomm::{Collective, OpStats};

    fn stats(ranks: u64, rounds: u64, total_bytes: u64) -> CommStats {
        let mut s = CommStats { ranks, ..CommStats::default() };
        s.per_op[Collective::Allreduce as usize] =
            OpStats { ops: rounds.max(1), rounds, bytes: total_bytes };
        s
    }

    #[test]
    fn compute_term_scales_down_with_p() {
        let m = CostModel::default();
        let comm = CommStats::default();
        let t1 = m.modeled_seconds(8.0, 1, &comm);
        let t8 = m.modeled_seconds(8.0, 8, &comm);
        assert_eq!(t1, 8.0);
        assert_eq!(t8, 1.0);
    }

    #[test]
    fn latency_term_does_not_scale() {
        let m = CostModel { alpha: 1e-3, beta: 0.0 };
        let t2 = m.modeled_seconds(0.0, 2, &stats(2, 100, 0));
        let t64 = m.modeled_seconds(0.0, 64, &stats(64, 100, 0));
        assert_eq!(t2, t64, "latency is the non-scaling floor");
        assert_eq!(t2, 0.1);
    }

    #[test]
    fn bandwidth_term_uses_per_rank_volume() {
        let m = CostModel { alpha: 0.0, beta: 1e-6 };
        // 4000 total received bytes over 4 ranks → 1000 per rank.
        let t = m.modeled_seconds(0.0, 4, &stats(4, 1, 4000));
        assert!((t - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn tiered_model_prices_inter_node_traffic_higher() {
        let m = TieredCostModel::default();
        let on_node = m.exchange_seconds(10_000, 0);
        let cross_node = m.exchange_seconds(0, 10_000);
        assert!(
            cross_node > 5.0 * on_node,
            "inter-node bytes must be much more expensive: {cross_node} vs {on_node}"
        );
        // Splitting traffic toward the cheap tier lowers the modeled time.
        let mixed = m.exchange_seconds(8_000, 2_000);
        assert!(mixed < cross_node);
        // No traffic, no time.
        assert_eq!(m.exchange_seconds(0, 0), 0.0);
    }

    #[test]
    fn more_rounds_cost_more() {
        let m = CostModel::default();
        let few = stats(4, 10, 1000);
        let many = stats(4, 1000, 1000);
        assert!(m.modeled_seconds(1.0, 4, &many) > m.modeled_seconds(1.0, 4, &few));
    }
}
