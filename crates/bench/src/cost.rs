//! α–β communication cost model.
//!
//! The reproduction machine has a single core, so the wall-clock of a
//! `ThreadComm` run with `p` ranks is (approximately) the *serialized
//! total* compute of all ranks — wall-clock speedup cannot be observed.
//! The scaling figures therefore report a modeled time
//!
//! ```text
//! T(p) = serialized_compute / p  +  α · collectives  +  β · bytes / p
//! ```
//!
//! where `collectives` and `bytes` are *measured* from the run's
//! communication counters (they are structural properties of the
//! algorithm, not of the machine), and α/β are set to typical
//! cluster-interconnect constants. The compute term assumes perfect
//! scaling — balanced k-means and the baselines are all data-parallel in
//! their point loops, which is what the paper observes too; what
//! differentiates the tools at scale is the collective structure, which we
//! measure rather than model. See DESIGN.md §3.

use geographer_parcomm::CommStats;

/// Machine constants of the modeled cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds per collective round (latency + synchronisation).
    pub alpha: f64,
    /// Seconds per payload byte (inverse aggregate bandwidth).
    pub beta: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // 20 µs per collective, 0.5 ns/byte (≈ 2 GB/s effective) — typical
        // commodity-cluster MPI numbers.
        CostModel { alpha: 20e-6, beta: 0.5e-9 }
    }
}

impl CostModel {
    /// Modeled parallel seconds for a run whose serialized compute took
    /// `serialized_seconds`, on `p` ranks, with measured `comm` counters.
    pub fn modeled_seconds(&self, serialized_seconds: f64, p: usize, comm: &CommStats) -> f64 {
        assert!(p >= 1);
        serialized_seconds / p as f64
            + self.alpha * comm.collectives as f64
            + self.beta * comm.bytes as f64 / p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_term_scales_down_with_p() {
        let m = CostModel::default();
        let comm = CommStats { collectives: 0, bytes: 0 };
        let t1 = m.modeled_seconds(8.0, 1, &comm);
        let t8 = m.modeled_seconds(8.0, 8, &comm);
        assert_eq!(t1, 8.0);
        assert_eq!(t8, 1.0);
    }

    #[test]
    fn latency_term_does_not_scale() {
        let m = CostModel { alpha: 1e-3, beta: 0.0 };
        let comm = CommStats { collectives: 100, bytes: 0 };
        let t2 = m.modeled_seconds(0.0, 2, &comm);
        let t64 = m.modeled_seconds(0.0, 64, &comm);
        assert_eq!(t2, t64, "latency is the non-scaling floor");
        assert_eq!(t2, 0.1);
    }

    #[test]
    fn more_collectives_cost_more() {
        let m = CostModel::default();
        let few = CommStats { collectives: 10, bytes: 1000 };
        let many = CommStats { collectives: 1000, bytes: 1000 };
        assert!(m.modeled_seconds(1.0, 4, &many) > m.modeled_seconds(1.0, 4, &few));
    }
}
