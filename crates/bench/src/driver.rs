//! Uniform tool driver: run any of the five partitioners SPMD on a mesh
//! and evaluate the paper's metric row for the result.

use std::time::Instant;

use geographer::Config;
use geographer_baselines::Baseline;
use geographer_geometry::Point;
use geographer_graph::{evaluate_partition, PartitionMetrics};
use geographer_mesh::Mesh;
use geographer_parcomm::{run_spmd, Comm, CommStats};
use geographer_spmv::spmv_comm_time;

/// The five evaluated tools, in the paper's presentation order
/// (Geographer first, then the Zoltan geometric partitioners).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// Balanced k-means with SFC bootstrap (the paper's contribution).
    Geographer,
    /// Hilbert space-filling-curve cuts (zoltanSFC).
    Hsfc,
    /// MultiJagged multisection.
    MultiJagged,
    /// Recursive coordinate bisection.
    Rcb,
    /// Recursive inertial bisection.
    Rib,
}

impl Tool {
    /// All five tools.
    pub const ALL: [Tool; 5] =
        [Tool::Geographer, Tool::Hsfc, Tool::MultiJagged, Tool::Rcb, Tool::Rib];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::Geographer => "Geographer",
            Tool::Hsfc => "HSFC",
            Tool::MultiJagged => "MultiJagged",
            Tool::Rcb => "RCB",
            Tool::Rib => "RIB",
        }
    }

    /// Run this tool on the rank-local shard (SPMD collective call).
    pub fn partition_spmd<const D: usize, C: Comm>(
        &self,
        comm: &C,
        points: &[Point<D>],
        weights: &[f64],
        k: usize,
        cfg: &Config,
    ) -> Vec<u32> {
        match self {
            Tool::Geographer => {
                geographer::partition_spmd(comm, points, weights, k, cfg).assignment
            }
            Tool::Hsfc => Baseline::Hsfc.partition_spmd(comm, points, weights, k),
            Tool::MultiJagged => {
                Baseline::MultiJagged.partition_spmd(comm, points, weights, k)
            }
            Tool::Rcb => Baseline::Rcb.partition_spmd(comm, points, weights, k),
            Tool::Rib => Baseline::Rib.partition_spmd(comm, points, weights, k),
        }
    }
}

/// Result of one tool run on one mesh.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Block per vertex, in mesh order.
    pub assignment: Vec<u32>,
    /// Wall-clock seconds of the whole SPMD run. On the single-core
    /// reproduction machine this approximates the *serialized* compute of
    /// all ranks.
    pub wall_seconds: f64,
    /// Communication counters accumulated by the run.
    pub comm: CommStats,
    /// Number of ranks used.
    pub ranks: usize,
}

/// Run `tool` on `mesh` with `p` SPMD ranks (threads) and `k` blocks.
/// Points are dealt to ranks in contiguous chunks of the mesh order.
pub fn run_tool<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    k: usize,
    p: usize,
    cfg: &Config,
) -> RunOutcome {
    assert!(p >= 1 && k >= 1);
    let n = mesh.n();
    let chunk_bounds: Vec<(usize, usize)> =
        (0..p).map(|r| (r * n / p, (r + 1) * n / p)).collect();
    let t = Instant::now();
    let results = run_spmd(p, |comm| {
        let (lo, hi) = chunk_bounds[comm.rank()];
        let before = comm.stats();
        let asg =
            tool.partition_spmd(&comm, &mesh.points[lo..hi], &mesh.weights[lo..hi], k, cfg);
        (asg, comm.stats().since(&before))
    });
    let wall_seconds = t.elapsed().as_secs_f64();
    let comm = results[0].1;
    let assignment: Vec<u32> = results.into_iter().flat_map(|(a, _)| a).collect();
    assert_eq!(assignment.len(), n);
    RunOutcome { assignment, wall_seconds, comm, ranks: p }
}

/// One row of the paper's Tables 1–2: tool, time, cut, comm volumes,
/// diameter, SpMV communication time.
#[derive(Debug, Clone)]
pub struct ToolRow {
    /// Tool display name.
    pub tool: &'static str,
    /// Partitioning wall time (serialized; see [`RunOutcome`]).
    pub time: f64,
    /// Graph metrics of the produced partition.
    pub metrics: PartitionMetrics,
    /// Average SpMV halo-exchange seconds (over `spmv_reps` repetitions,
    /// summed across ranks).
    pub spmv_comm_seconds: f64,
    /// Bytes moved per SpMV (8 × total communication volume when k = p).
    pub spmv_bytes: u64,
}

/// Evaluate a finished run: graph metrics + the empirical SpMV benchmark
/// (Sec. 2 "to measure the quality of a partition empirically ...").
pub fn evaluate_run<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    outcome: &RunOutcome,
    k: usize,
    spmv_reps: usize,
) -> ToolRow {
    let metrics = evaluate_partition(&mesh.graph, &outcome.assignment, &mesh.weights, k);
    // Run the SpMV with min(k, 8) ranks: enough to exercise real exchange
    // without massive thread oversubscription on the 1-core box.
    let p = k.clamp(1, 8);
    let reports = run_spmd(p, |c| spmv_comm_time(&c, &mesh.graph, &outcome.assignment, k, spmv_reps));
    let spmv_comm_seconds: f64 = reports.iter().map(|r| r.comm_seconds_avg).sum::<f64>();
    let spmv_bytes: u64 = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
    ToolRow {
        tool: tool.name(),
        time: outcome.wall_seconds,
        metrics,
        spmv_comm_seconds,
        spmv_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_mesh::delaunay_unit_square;

    #[test]
    fn all_tools_run_on_a_delaunay_mesh() {
        let mesh = delaunay_unit_square(1200, 1);
        let cfg = Config::default();
        for tool in Tool::ALL {
            let out = run_tool(tool, &mesh, 4, 2, &cfg);
            assert_eq!(out.assignment.len(), mesh.n(), "{}", tool.name());
            assert!(out.assignment.iter().all(|&b| b < 4));
            let row = evaluate_run(tool, &mesh, &out, 4, 2);
            assert!(row.metrics.edge_cut > 0, "{}: cut can't be zero", tool.name());
            assert!(row.metrics.imbalance <= 0.06, "{}: imbalance", tool.name());
        }
    }

    #[test]
    fn comm_counters_grow_with_ranks() {
        let mesh = delaunay_unit_square(800, 2);
        let cfg = Config::default();
        let p1 = run_tool(Tool::Rcb, &mesh, 8, 1, &cfg);
        let p4 = run_tool(Tool::Rcb, &mesh, 8, 4, &cfg);
        assert!(p4.comm.bytes() > p1.comm.bytes(), "multi-rank runs move bytes");
        assert!(p4.comm.rounds() > 0, "collective rounds must be counted");
        // Same partition regardless of rank count.
        assert_eq!(p1.assignment, p4.assignment);
    }
}
