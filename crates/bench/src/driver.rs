//! Uniform tool driver: run any of the five partitioners SPMD on a mesh
//! and evaluate the paper's metric row for the result.
//!
//! Since the planner refactor this module is a thin compatibility facade:
//! [`Tool`] lives in [`geographer_planner`] and the run/repartition entry
//! points delegate to the shared [`crate::harness`] (and through it to
//! [`geographer_planner::Planner::solve`]), keeping the historical
//! [`RunOutcome`]/[`RepartitionStep`] shapes for the table binaries.

use geographer::Config;
use geographer_graph::{evaluate_partition_with_targets, PartitionMetrics};
use geographer_mesh::{DynamicWorkload, Mesh};
use geographer_parcomm::{run_spmd, CommStats};
use geographer_refine::{MultilevelConfig, MultilevelReport, RefineConfig, RefineReport};
use geographer_spmv::{spmv_comm_time, SpmvReport};

use crate::harness::{run_plan_chain, solve_plan, solve_plan_proc, PlanRecipe, SpmdBackend};

pub use geographer_planner::Tool;

/// Result of one tool run on one mesh.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Block per vertex, in mesh order (post-refinement when the FM-style
    /// post-pass was enabled).
    pub assignment: Vec<u32>,
    /// Wall-clock seconds of the whole SPMD run (including the refinement
    /// post-pass when enabled). On the single-core reproduction machine
    /// this approximates the *serialized* compute of all ranks.
    pub wall_seconds: f64,
    /// Communication counters accumulated by the run.
    pub comm: CommStats,
    /// Number of ranks used.
    pub ranks: usize,
    /// Report of the FM-style refinement post-pass, when it ran
    /// ([`RunConfig::refine`]): edge cut before/after and move counts
    /// (the multilevel mode's summary when [`RunConfig::refine_mode`] is
    /// [`RefineMode::Multilevel`]).
    pub refine: Option<RefineReport>,
    /// Which refinement mode produced [`RunOutcome::refine`].
    pub refine_mode: RefineMode,
    /// Full per-level report when the multilevel V-cycle ran.
    pub multilevel: Option<MultilevelReport>,
}

/// Which refinement algorithm the opt-in post-pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineMode {
    /// One flat boundary-sweep pass ([`refine_partition`]).
    #[default]
    Single,
    /// The multilevel coarsen→refine→project V-cycle
    /// ([`refine_multilevel`]) — strictly deeper refinement at comparable
    /// cost on large meshes.
    Multilevel,
}

impl RefineMode {
    /// Display name for benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            RefineMode::Single => "single",
            RefineMode::Multilevel => "multilevel",
        }
    }
}

/// Full configuration of one driver run: the solver configuration plus the
/// driver-level switches that sit on top of every tool.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Solver configuration handed to the tool.
    pub core: Config,
    /// Opt-in graph-based refinement post-pass (the paper's Sec. 2
    /// FM-style extension): when set, [`geographer_refine`] runs on the
    /// finished assignment and the before/after edge cut is reported in
    /// [`RunOutcome::refine`] / [`ToolRow::refine`].
    pub refine: Option<RefineConfig>,
    /// Which refinement algorithm the post-pass uses (ignored when
    /// [`RunConfig::refine`] is `None`).
    pub refine_mode: RefineMode,
}

impl RunConfig {
    /// Plain run of a solver configuration, no post-passes.
    pub fn new(core: Config) -> Self {
        RunConfig { core, refine: None, refine_mode: RefineMode::Single }
    }
}

/// Run `tool` on `mesh` with `p` SPMD ranks (threads) and `k` blocks.
/// Points are dealt to ranks in contiguous chunks of the mesh order.
pub fn run_tool<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    k: usize,
    p: usize,
    cfg: &Config,
) -> RunOutcome {
    run_tool_configured(tool, mesh, k, p, &RunConfig::new(cfg.clone()))
}

/// Translate the driver-level refinement switches into the planner's
/// [`geographer_planner::RefineMode`]. The target-fraction inheritance the
/// driver used to do by hand now lives in the planner itself.
fn planner_refine(rc: &RunConfig) -> geographer_planner::RefineMode {
    match (&rc.refine, rc.refine_mode) {
        (None, _) => geographer_planner::RefineMode::None,
        (Some(rcfg), RefineMode::Single) => {
            geographer_planner::RefineMode::Single(rcfg.clone())
        }
        (Some(rcfg), RefineMode::Multilevel) => geographer_planner::RefineMode::Multilevel(
            MultilevelConfig { refine: rcfg.clone(), ..MultilevelConfig::default() },
        ),
    }
}

/// [`run_tool`] on a selectable SPMD substrate: threads (the default) or
/// forked worker processes. Both backends run the identical planner code
/// over the identical collective algorithms, so the assignment is the
/// same; the process backend's wall time includes real fork/rendezvous/
/// socket costs and its counters come from the per-rank views. The
/// process path is cold and plain (no refinement post-pass state crosses
/// back) — exactly what the scaling figures need.
pub fn run_tool_backend<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    k: usize,
    p: usize,
    cfg: &Config,
    backend: SpmdBackend,
) -> RunOutcome {
    match backend {
        SpmdBackend::Thread => run_tool(tool, mesh, k, p, cfg),
        SpmdBackend::Proc => {
            assert!(p >= 1 && k >= 1);
            let recipe = PlanRecipe::flat("run", tool, k, cfg.clone());
            let run = solve_plan_proc(mesh, &recipe, p)
                .unwrap_or_else(|e| panic!("process-backend solve failed: {e}"));
            RunOutcome {
                assignment: run.assignment,
                wall_seconds: run.wall_seconds,
                comm: run.comm,
                ranks: p,
                refine: None,
                refine_mode: RefineMode::Single,
                multilevel: None,
            }
        }
    }
}

/// [`run_tool`] with the full [`RunConfig`], including the opt-in
/// refinement post-pass. Thin wrapper over [`solve_plan`].
pub fn run_tool_configured<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    k: usize,
    p: usize,
    rc: &RunConfig,
) -> RunOutcome {
    assert!(p >= 1 && k >= 1);
    let recipe = PlanRecipe::flat("run", tool, k, rc.core.clone()).with_refine(planner_refine(rc));
    let run = solve_plan(mesh, &recipe, p, None);
    let plan = run.plan;
    RunOutcome {
        assignment: plan.assignment,
        wall_seconds: run.wall_seconds,
        comm: plan.comm,
        ranks: plan.ranks,
        refine: plan.refine,
        refine_mode: rc.refine_mode,
        multilevel: plan.multilevel,
    }
}

/// How a tool is restarted on each step of a time-stepped workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepartitionMode {
    /// Re-partition from scratch every step (what every tool can do).
    Cold,
    /// Warm-start from the previous step's solution. Only Geographer has
    /// reusable state (centers + influences); for the stateless baselines
    /// this silently degrades to [`RepartitionMode::Cold`] — which *is*
    /// the comparison the paper's reuse argument makes.
    Warm,
}

impl RepartitionMode {
    /// Display name for benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            RepartitionMode::Cold => "cold",
            RepartitionMode::Warm => "warm",
        }
    }
}

/// Per-step outcome of [`run_tool_repartition`].
#[derive(Debug, Clone)]
pub struct RepartitionStep {
    /// Workload step index (0 = bootstrap).
    pub step: usize,
    /// Wall-clock seconds of this step's (serialized SPMD) solve.
    pub wall_seconds: f64,
    /// Weighted imbalance of this step's assignment.
    pub imbalance: f64,
    /// Edge cut on the workload's (fixed) topology.
    pub edge_cut: u64,
    /// Relabel-free migrated-point fraction vs the previous step's
    /// assignment (0 at step 0).
    pub migrated_point_fraction: f64,
    /// Relabel-free migrated-weight fraction vs the previous step (0 at
    /// step 0), under this step's weights.
    pub migrated_weight_fraction: f64,
}

/// Drive `tool` over `steps` steps of a dynamic workload with `p` SPMD
/// ranks, repartitioning at every step in the given mode, and measure the
/// migration between consecutive assignments (relabel-free, so cold runs
/// with arbitrary block numbering are compared fairly).
///
/// Step 0 is always a cold bootstrap; in [`RepartitionMode::Warm`] every
/// later step feeds the previous plan's state back into the solve. Thin
/// wrapper over [`run_plan_chain`].
pub fn run_tool_repartition(
    tool: Tool,
    workload: &DynamicWorkload,
    k: usize,
    p: usize,
    cfg: &Config,
    steps: usize,
    mode: RepartitionMode,
) -> Vec<RepartitionStep> {
    assert!(p >= 1 && k >= 1 && steps >= 1);
    let mut recipe = PlanRecipe::flat(mode.name(), tool, k, cfg.clone());
    if mode == RepartitionMode::Warm {
        recipe = recipe.warm();
    }
    run_plan_chain(workload, &recipe, p, steps)
        .into_iter()
        .map(|s| RepartitionStep {
            step: s.step,
            wall_seconds: s.wall_seconds,
            imbalance: s.imbalance,
            edge_cut: s.edge_cut,
            migrated_point_fraction: s.migrated_point_fraction,
            migrated_weight_fraction: s.migrated_weight_fraction,
        })
        .collect()
}

/// One row of the paper's Tables 1–2: tool, time, cut, comm volumes,
/// diameter, SpMV communication time.
#[derive(Debug, Clone)]
pub struct ToolRow {
    /// Tool display name.
    pub tool: &'static str,
    /// Partitioning wall time (serialized; see [`RunOutcome`]).
    pub time: f64,
    /// Graph metrics of the produced partition.
    pub metrics: PartitionMetrics,
    /// SpMV halo-exchange seconds per multiplication: the *maximum* over
    /// ranks of the per-rank average (over `spmv_reps` repetitions). The
    /// paper's `timeSpMVComm` is bounded by the slowest rank — every rank
    /// waits for its neighbourhood exchange to complete — so summing the
    /// per-rank times would overstate the cost by up to a factor of `p`
    /// (see DESIGN.md §6 erratum).
    pub spmv_comm_seconds: f64,
    /// Bytes moved per SpMV across all ranks (8 × total communication
    /// volume when k = p) — a volume, so this one *is* the sum.
    pub spmv_bytes: u64,
    /// Refinement post-pass report, forwarded from [`RunOutcome::refine`].
    pub refine: Option<RefineReport>,
    /// Refinement mode that produced [`ToolRow::refine`].
    pub refine_mode: RefineMode,
    /// Per-level multilevel report, forwarded from
    /// [`RunOutcome::multilevel`].
    pub multilevel: Option<MultilevelReport>,
}

/// Aggregate per-rank SpMV reports into the row scalars: slowest-rank
/// exchange seconds (`timeSpMVComm` semantics) and summed bytes.
pub fn aggregate_spmv(reports: &[SpmvReport]) -> (f64, u64) {
    let seconds = reports.iter().map(|r| r.comm_seconds_avg).fold(0.0, f64::max);
    let bytes = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
    (seconds, bytes)
}

/// Evaluate a finished run: graph metrics + the empirical SpMV benchmark
/// (Sec. 2 "to measure the quality of a partition empirically ...").
/// Imbalance is measured against uniform targets; runs solved with
/// heterogeneous `target_fractions` should use
/// [`evaluate_run_with_targets`] so the row's imbalance is target-aware.
pub fn evaluate_run<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    outcome: &RunOutcome,
    k: usize,
    spmv_reps: usize,
) -> ToolRow {
    evaluate_run_with_targets(tool, mesh, outcome, k, spmv_reps, None)
}

/// [`evaluate_run`] with the solve's per-block target fractions threaded
/// into the imbalance metric (`geographer_graph::imbalance_with_targets`):
/// a deliberately skewed solve that hits its targets reads as balanced
/// instead of wildly imbalanced.
pub fn evaluate_run_with_targets<const D: usize>(
    tool: Tool,
    mesh: &Mesh<D>,
    outcome: &RunOutcome,
    k: usize,
    spmv_reps: usize,
    target_fractions: Option<&[f64]>,
) -> ToolRow {
    let metrics = evaluate_partition_with_targets(
        &mesh.graph,
        &outcome.assignment,
        &mesh.weights,
        k,
        target_fractions,
    );
    // Run the SpMV with min(k, 8) ranks: enough to exercise real exchange
    // without massive thread oversubscription on the 1-core box.
    let p = k.clamp(1, 8);
    let reports = run_spmd(p, |c| spmv_comm_time(&c, &mesh.graph, &outcome.assignment, k, spmv_reps));
    let (spmv_comm_seconds, spmv_bytes) = aggregate_spmv(&reports);
    ToolRow {
        tool: tool.name(),
        time: outcome.wall_seconds,
        metrics,
        spmv_comm_seconds,
        spmv_bytes,
        refine: outcome.refine,
        refine_mode: outcome.refine_mode,
        multilevel: outcome.multilevel.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_mesh::delaunay_unit_square;

    #[test]
    fn all_tools_run_on_a_delaunay_mesh() {
        let mesh = delaunay_unit_square(1200, 1);
        let cfg = Config::default();
        for tool in Tool::ALL {
            let out = run_tool(tool, &mesh, 4, 2, &cfg);
            assert_eq!(out.assignment.len(), mesh.n(), "{}", tool.name());
            assert!(out.assignment.iter().all(|&b| b < 4));
            let row = evaluate_run(tool, &mesh, &out, 4, 2);
            assert!(row.metrics.edge_cut > 0, "{}: cut can't be zero", tool.name());
            assert!(row.metrics.imbalance <= 0.06, "{}: imbalance", tool.name());
        }
    }

    #[test]
    fn repartition_driver_runs_warm_and_cold() {
        use geographer_mesh::{DynamicWorkload, Scenario};
        let base = delaunay_unit_square(900, 5);
        let wl = DynamicWorkload::new(
            base,
            Scenario::ClusterDrift { clusters: 3, speed: 0.02 },
            11,
        );
        let cfg = Config { sampling_init: false, ..Config::default() };
        for mode in [RepartitionMode::Cold, RepartitionMode::Warm] {
            let steps = run_tool_repartition(Tool::Geographer, &wl, 4, 2, &cfg, 3, mode);
            assert_eq!(steps.len(), 3);
            assert_eq!(steps[0].migrated_point_fraction, 0.0, "step 0 has no predecessor");
            for s in &steps {
                assert!(s.imbalance <= 0.03 + 1e-6, "{}: step {} imbalance", mode.name(), s.step);
                assert!(s.edge_cut > 0);
                assert!((0.0..=1.0).contains(&s.migrated_point_fraction));
            }
        }
        // Baselines run in warm mode too (degrading to cold re-runs).
        let steps = run_tool_repartition(Tool::Rcb, &wl, 4, 2, &cfg, 2, RepartitionMode::Warm);
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn spmv_seconds_are_slowest_rank_not_rank_sum() {
        // Regression for the timeSpMVComm semantics: the reported time is
        // the max across ranks — always ≤ the per-rank sum (what the old
        // code reported) and ≥ the per-rank max (it *is* the max).
        let reports: Vec<SpmvReport> = [0.004, 0.001, 0.003, 0.002]
            .iter()
            .map(|&s| SpmvReport {
                comm_seconds_avg: s,
                bytes_sent_per_iter: 100,
                ..SpmvReport::default()
            })
            .collect();
        let (secs, bytes) = aggregate_spmv(&reports);
        let per_rank_sum: f64 = reports.iter().map(|r| r.comm_seconds_avg).sum();
        let per_rank_max =
            reports.iter().map(|r| r.comm_seconds_avg).fold(0.0, f64::max);
        assert!(secs <= per_rank_sum, "{secs} must not exceed the rank sum {per_rank_sum}");
        assert!(secs >= per_rank_max, "{secs} must cover the slowest rank {per_rank_max}");
        assert_eq!(secs, 0.004);
        // Bytes are a volume: still the sum.
        assert_eq!(bytes, 400);
        assert_eq!(aggregate_spmv(&[]), (0.0, 0));
    }

    #[test]
    fn refine_post_pass_is_opt_in_and_reports_cut() {
        let mesh = delaunay_unit_square(1000, 7);
        let k = 6;
        let plain = run_tool(Tool::Hsfc, &mesh, k, 2, &Config::default());
        assert!(plain.refine.is_none(), "refinement must be opt-in");

        let rc = RunConfig {
            core: Config::default(),
            refine: Some(geographer_refine::RefineConfig::default()),
            refine_mode: RefineMode::Single,
        };
        let refined = run_tool_configured(Tool::Hsfc, &mesh, k, 2, &rc);
        let report = refined.refine.expect("post-pass must report");
        assert_eq!(
            report.cut_before,
            geographer_refine::edge_cut(&mesh.graph, &plain.assignment),
            "post-pass starts from the tool's own partition"
        );
        assert!(report.cut_after <= report.cut_before);
        assert_eq!(
            report.cut_after,
            geographer_refine::edge_cut(&mesh.graph, &refined.assignment),
            "outcome carries the refined assignment"
        );
        // The report reaches the tool row.
        let row = evaluate_run(Tool::Hsfc, &mesh, &refined, k, 2);
        assert_eq!(row.refine.unwrap(), report);
        assert_eq!(row.metrics.edge_cut, report.cut_after);
        // Balance survives refinement.
        assert!(row.metrics.imbalance <= 0.06);
    }

    #[test]
    fn multilevel_post_pass_reaches_a_lower_cut() {
        // The RunConfig refine-mode switch: same tool, same mesh, same ε —
        // the multilevel V-cycle must reach a cut no worse than the
        // single-level pass, and the row must carry mode + level reports.
        let mesh = delaunay_unit_square(3_000, 13);
        let k = 8;
        let base = Config { sampling_init: false, ..Config::default() };
        let single = run_tool_configured(
            Tool::Hsfc,
            &mesh,
            k,
            2,
            &RunConfig {
                core: base.clone(),
                refine: Some(RefineConfig::default()),
                refine_mode: RefineMode::Single,
            },
        );
        let multi = run_tool_configured(
            Tool::Hsfc,
            &mesh,
            k,
            2,
            &RunConfig {
                core: base,
                refine: Some(RefineConfig::default()),
                refine_mode: RefineMode::Multilevel,
            },
        );
        let sr = single.refine.unwrap();
        let mr = multi.refine.unwrap();
        assert_eq!(sr.cut_before, mr.cut_before, "same tool output, same start");
        assert!(mr.cut_after <= sr.cut_after, "multilevel must not be worse");
        assert!(single.multilevel.is_none());
        let ml = multi.multilevel.as_ref().unwrap();
        assert_eq!(ml.summary(), mr);
        let row = evaluate_run(Tool::Hsfc, &mesh, &multi, k, 1);
        assert_eq!(row.refine_mode, RefineMode::Multilevel);
        assert_eq!(row.refine_mode.name(), "multilevel");
        assert_eq!(row.multilevel.as_ref().unwrap().cut_after, mr.cut_after);
        assert_eq!(row.metrics.edge_cut, mr.cut_after);
    }

    #[test]
    fn skewed_solve_reads_balanced_with_targets() {
        // Regression for the imbalance semantics (DESIGN.md §7 erratum b):
        // a deliberately skewed solve measured with evaluate_run used to
        // report max/avg − 1 against the uniform average — hugely
        // "imbalanced" even when every block exactly hit its target.
        let mesh = delaunay_unit_square(1_500, 21);
        let fractions = vec![0.5, 0.25, 0.25];
        let cfg = Config {
            target_fractions: Some(fractions.clone()),
            sampling_init: false,
            ..Config::default()
        };
        let out = run_tool(Tool::Geographer, &mesh, 3, 2, &cfg);
        let uniform = evaluate_run(Tool::Geographer, &mesh, &out, 3, 1);
        let aware =
            evaluate_run_with_targets(Tool::Geographer, &mesh, &out, 3, 1, Some(&fractions));
        assert!(
            uniform.metrics.imbalance > 0.3,
            "uniform metric must expose the skew: {}",
            uniform.metrics.imbalance
        );
        assert!(
            aware.metrics.imbalance <= cfg.epsilon + 1e-3,
            "target-aware imbalance must be within ε: {}",
            aware.metrics.imbalance
        );
        // Everything else on the row is unaffected by the target change.
        assert_eq!(uniform.metrics.edge_cut, aware.metrics.edge_cut);
        assert_eq!(uniform.metrics.comm_volume, aware.metrics.comm_volume);
    }

    #[test]
    fn refine_post_pass_inherits_heterogeneous_targets() {
        // Regression: the post-pass used to build its balance capacities
        // solely from RefineConfig, so a heterogeneous solve refined with
        // a default RefineConfig was legally "rebalanced" toward uniform.
        // The driver now inherits core.target_fractions when the refine
        // config leaves them unset.
        let mesh = delaunay_unit_square(2_000, 31);
        let fractions = vec![0.5, 0.25, 0.25];
        let core = Config {
            target_fractions: Some(fractions.clone()),
            sampling_init: false,
            ..Config::default()
        };
        for mode in [RefineMode::Single, RefineMode::Multilevel] {
            let rc = RunConfig {
                core: core.clone(),
                refine: Some(RefineConfig { max_rounds: 30, ..RefineConfig::default() }),
                refine_mode: mode,
            };
            let out = run_tool_configured(Tool::Geographer, &mesh, 3, 2, &rc);
            let row = evaluate_run_with_targets(
                Tool::Geographer,
                &mesh,
                &out,
                3,
                1,
                Some(&fractions),
            );
            assert!(
                row.metrics.imbalance <= core.epsilon + 1e-3,
                "{}: refined skewed solve must stay on target, got {}",
                mode.name(),
                row.metrics.imbalance
            );
        }
    }

    #[test]
    fn comm_counters_grow_with_ranks() {
        let mesh = delaunay_unit_square(800, 2);
        let cfg = Config::default();
        let p1 = run_tool(Tool::Rcb, &mesh, 8, 1, &cfg);
        let p4 = run_tool(Tool::Rcb, &mesh, 8, 4, &cfg);
        assert!(p4.comm.bytes() > p1.comm.bytes(), "multi-rank runs move bytes");
        assert!(p4.comm.rounds() > 0, "collective rounds must be counted");
        // Same partition regardless of rank count.
        assert_eq!(p1.assignment, p4.assignment);
    }
}
