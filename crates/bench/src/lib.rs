//! Experiment harness: uniform driver for running all five tools
//! (Geographer + four Zoltan-style baselines) on generated meshes, the
//! quality/metrics rows of the paper's tables, and the α–β cost model used
//! by the scaling figures.
//!
//! Every `src/bin/*` target reproduces one table or figure; see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for paper-vs-measured results.

pub mod cost;
pub mod driver;
pub mod harness;
pub mod table;

pub use cost::{CostModel, TieredCostModel};
pub use driver::{
    aggregate_spmv, evaluate_run, evaluate_run_with_targets, run_tool, run_tool_backend,
    run_tool_configured, run_tool_repartition, RefineMode, RepartitionMode, RepartitionStep,
    RunConfig, RunOutcome, Tool, ToolRow,
};
pub use harness::{
    level_metrics_json, run_plan_chain, solve_plan, solve_plan_proc, solve_plan_proc_view,
    solve_plan_view, write_bench_json, ChainStep, PlanRecipe, PlanRun, ProcRun, SpmdBackend,
};
pub use table::TextTable;

/// Global instance-size multiplier, read from `GEO_SCALE` (default 1.0).
/// `GEO_SCALE=4 cargo run --release --bin table1_large` runs the same
/// experiments on 4× larger instances.
pub fn env_scale() -> f64 {
    std::env::var("GEO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// `n` scaled by [`env_scale`].
pub fn scaled(n: usize) -> usize {
    ((n as f64 * env_scale()) as usize).max(16)
}

/// Directory where experiment artifacts (SVGs, data files) are written.
pub fn out_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}
