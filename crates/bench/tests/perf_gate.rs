//! Tier-1 perf gate: the k-means assignment hot path must stay inside a
//! generous envelope of the committed `BENCH_scale.json` baseline.
//!
//! The gate instance is the committed `gate` block — n = 100k, p = 1,
//! k = 8, seed 77, default config — re-solved here and compared as
//! assignment ns/point. The envelope is deliberately loose (2.5× in
//! release, a further 20× under debug assertions, where tier-1 runs):
//! it exists to catch order-of-magnitude regressions — an accidental
//! O(n·k) reintroduction, a lost pruning bound, a per-iteration
//! allocation storm — not scheduler noise on a busy machine.

use geographer::Config;
use geographer_bench::{solve_plan_view, PlanRecipe, PlanRun, Tool};
use geographer_mesh::density::sample_by_density;
use geographer_planner::MeshView;

/// Pull `"key": <float>` out of `block`, no serde in the workspace.
fn json_f64(block: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = block.find(&pat).unwrap_or_else(|| panic!("no {key} in {block}"));
    let rest = block[at + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|e| panic!("parse {key}: {e}"))
}

#[test]
fn assignment_ns_per_point_within_committed_envelope() {
    let baseline = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scale.json"
    ))
    .expect("committed BENCH_scale.json at the repo root");
    let gate_at = baseline.find("\"gate\"").expect("baseline has a gate block");
    let gate = &baseline[gate_at..baseline[gate_at..].find('}').unwrap() + gate_at + 1];
    let committed_ns = json_f64(gate, "assignment_ns_per_point");
    let n = json_f64(gate, "n") as usize;
    assert!(committed_ns > 0.0 && n > 0, "gate block sane: {gate}");

    let k = 8;
    let cfg = Config::default();
    let points = sample_by_density(n, 77, |_| 1.0);
    let weights = vec![1.0f64; n];
    let view = MeshView { points: &points, weights: &weights, graph: None };
    // First-solve warmup (page faults, lazy binding) stays out of the
    // measured run, mirroring how the baseline was produced.
    let _ = solve_plan_view(
        view,
        &PlanRecipe::flat("warmup", Tool::Geographer, k, cfg.clone()),
        1,
        None,
    );
    let run = solve_plan_view(
        view,
        &PlanRecipe::flat("gate", Tool::Geographer, k, cfg.clone()),
        1,
        None,
    );
    let assign_s = run.plan.stats.expect("stats").assignment_seconds;
    let now_ns = PlanRun::<2>::ns_per_point(assign_s, n);

    // Release envelope 2.5×; debug builds of this workspace measure
    // roughly 15–20× slower on the same path, so widen accordingly
    // rather than gating on an unoptimized build's noise.
    let envelope = if cfg!(debug_assertions) { 2.5 * 20.0 } else { 2.5 };
    assert!(
        now_ns <= committed_ns * envelope,
        "assignment hot path regressed: {now_ns:.1} ns/point vs committed \
         {committed_ns:.1} ns/point (envelope {envelope}×)"
    );
}
