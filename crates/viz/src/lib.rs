//! SVG rendering of 2D partitions — the reproduction of the paper's Fig. 1
//! (visual comparison of block shapes across tools).

use geographer_geometry::{Aabb, Point};

/// A distinguishable color per block: evenly spaced hues, alternating
/// saturation/value rings so adjacent block ids stay distinguishable for
/// larger k.
pub fn block_color(block: u32, k: usize) -> String {
    let k = k.max(1) as f64;
    let hue = (block as f64 * 360.0 / k) % 360.0;
    let (s, v) = match block % 3 {
        0 => (0.85, 0.85),
        1 => (0.6, 0.95),
        _ => (0.95, 0.65),
    };
    let (r, g, b) = hsv_to_rgb(hue, s, v);
    format!("#{r:02x}{g:02x}{b:02x}")
}

fn hsv_to_rgb(h: f64, s: f64, v: f64) -> (u8, u8, u8) {
    let c = v * s;
    let hp = h / 60.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    (
        ((r1 + m) * 255.0).round() as u8,
        ((g1 + m) * 255.0).round() as u8,
        ((b1 + m) * 255.0).round() as u8,
    )
}

/// Render a partitioned 2D point set as an SVG document (one dot per
/// point, colored by block). `size` is the canvas side length in pixels.
pub fn render_partition_svg(
    points: &[Point<2>],
    assignment: &[u32],
    k: usize,
    size: u32,
    title: &str,
) -> String {
    assert_eq!(points.len(), assignment.len());
    let bb = Aabb::from_points(points)
        .unwrap_or_else(|| Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0])));
    let pad = 8.0;
    let span = size as f64 - 2.0 * pad;
    let sx = if bb.extent(0) > 0.0 { span / bb.extent(0) } else { 0.0 };
    let sy = if bb.extent(1) > 0.0 { span / bb.extent(1) } else { 0.0 };
    // Dot radius adapts to density.
    let radius = (span / (points.len() as f64).sqrt() * 0.45).clamp(0.4, 4.0);

    let mut svg = String::with_capacity(points.len() * 64 + 512);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size}\" height=\"{size}\" \
         viewBox=\"0 0 {size} {size}\">\n<title>{title}</title>\n\
         <rect width=\"{size}\" height=\"{size}\" fill=\"white\"/>\n"
    ));
    let palette: Vec<String> = (0..k as u32).map(|b| block_color(b, k)).collect();
    for (p, &b) in points.iter().zip(assignment) {
        let x = pad + (p[0] - bb.min[0]) * sx;
        // SVG y grows downward; flip so plots match math convention.
        let y = size as f64 - pad - (p[1] - bb.min[1]) * sy;
        svg.push_str(&format!(
            "<circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{radius:.2}\" fill=\"{}\"/>\n",
            palette[b as usize % palette.len()]
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_are_distinct_for_small_k() {
        let k = 8;
        let colors: Vec<String> = (0..k as u32).map(|b| block_color(b, k)).collect();
        let mut unique = colors.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), k, "palette must be collision-free: {colors:?}");
        for c in &colors {
            assert!(c.starts_with('#') && c.len() == 7);
        }
    }

    #[test]
    fn svg_has_one_circle_per_point() {
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.5]),
            Point::new([0.5, 1.0]),
        ];
        let svg = render_partition_svg(&pts, &[0, 1, 0], 2, 200, "test");
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<title>test</title>"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = render_partition_svg(&[], &[], 4, 100, "empty");
        assert!(svg.contains("</svg>"));
        // All points identical: zero extent.
        let pts = vec![Point::new([2.0, 2.0]); 5];
        let svg = render_partition_svg(&pts, &[0; 5], 1, 100, "point");
        assert_eq!(svg.matches("<circle").count(), 5);
    }

    #[test]
    fn coordinates_stay_on_canvas() {
        let pts = vec![
            Point::new([-5.0, -5.0]),
            Point::new([5.0, 5.0]),
            Point::new([0.0, 0.0]),
        ];
        let svg = render_partition_svg(&pts, &[0, 1, 2], 3, 300, "bounds");
        for line in svg.lines().filter(|l| l.starts_with("<circle")) {
            let cx: f64 = line.split("cx=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
            let cy: f64 = line.split("cy=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=300.0).contains(&cx));
            assert!((0.0..=300.0).contains(&cy));
        }
    }
}
