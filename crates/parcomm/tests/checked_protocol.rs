//! Fault injection for [`CheckedComm`]: a rank that issues a mismatched
//! collective must produce a typed [`ProtocolError`] — not a deadlock on
//! the thread backend, not a frame desync or job timeout on the process
//! backend — and conforming programs must pass through unchanged.

use geographer_parcomm::{
    run_spmd, run_spmd_checked, run_spmd_proc_checked, CheckedCall, Comm, ProcError,
    ProtocolError,
};

#[test]
fn thread_mismatched_collective_is_a_typed_error_not_a_hang() {
    // Without the checker, rank 0 would wait forever at a barrier its
    // peers never enter; the poisoned-barrier path would eventually fire
    // only if another rank panicked. With it, the job fails at call #0.
    let err = std::panic::catch_unwind(|| {
        run_spmd_checked(4, |c| {
            if c.rank() == 0 {
                c.barrier();
            } else {
                let _ = c.allgather(vec![c.rank() as u64]);
            }
            0u64
        })
    })
    .expect_err("diverging job must fail");
    let e = err.downcast_ref::<ProtocolError>().expect("typed ProtocolError payload");
    assert_eq!(e.seq, 0);
    assert_eq!(e.diverging, vec![0]);
    assert_eq!(e.calls[0].0, CheckedCall::Barrier as u64);
    for r in 1..4 {
        assert_eq!(e.calls[r].0, CheckedCall::Allgather as u64);
    }
}

#[test]
fn proc_mismatched_collective_reports_protocol_error() {
    // On the raw process backend this divergence decays into a frame
    // desync at an unpredictable rank (or a timeout); checked, it must
    // surface as ProcError::Protocol with the full per-rank call table.
    let err = run_spmd_proc_checked(3, |c| {
        if c.rank() == 2 {
            let _ = c.exscan_sum_u64(1);
        } else {
            c.barrier();
        }
        0u64
    })
    .expect_err("diverging job must fail");
    match err {
        ProcError::Protocol { error, .. } => {
            assert_eq!(error.seq, 0);
            assert_eq!(error.diverging, vec![2]);
            assert_eq!(error.calls[2].0, CheckedCall::ExscanSumU64 as u64);
            assert_eq!(error.calls[0].0, CheckedCall::Barrier as u64);
        }
        other => panic!("expected ProcError::Protocol, got: {other}"),
    }
}

#[test]
fn proc_mismatched_reduction_length_reports_protocol_error() {
    let err = run_spmd_proc_checked(2, |c| {
        let m = if c.rank() == 1 { 5 } else { 2 };
        let mut buf = vec![1.0f64; m];
        c.allreduce_sum_f64(&mut buf);
        buf.len() as u64
    })
    .expect_err("length divergence must fail");
    match err {
        ProcError::Protocol { error, .. } => {
            assert_eq!(error.diverging, vec![1]);
            assert_eq!(error.calls[0], (CheckedCall::AllreduceSumF64 as u64, 2));
            assert_eq!(error.calls[1], (CheckedCall::AllreduceSumF64 as u64, 5));
        }
        other => panic!("expected ProcError::Protocol, got: {other}"),
    }
}

#[test]
fn checked_results_match_unchecked_across_backends() {
    // A conforming program: checked wrappers must be observationally
    // transparent, and thread/process reductions stay bitwise-equal.
    fn body<C: Comm>(c: C) -> (u64, u64, Vec<f64>) {
        let mut buf = vec![c.rank() as f64 + 0.25, 2.0, -1.5];
        c.allreduce_sum_f64(&mut buf);
        let ex = c.exscan_sum_u64(c.rank() as u64 + 1);
        let bc = c.broadcast(1, (c.rank() == 1).then_some(42u64));
        c.barrier();
        (ex, bc, buf)
    }
    let plain = run_spmd(4, body);
    let threads = run_spmd_checked(4, body);
    let procs = run_spmd_proc_checked(4, body).expect("clean run");
    assert_eq!(plain, threads);
    assert_eq!(threads, procs);
}
