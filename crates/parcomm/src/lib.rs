//! SPMD communication layer: the workspace's stand-in for MPI.
//!
//! The paper's Geographer is an MPI code built on LAMA; every communication
//! it performs is a collective (global reductions, one global sort/exchange).
//! This crate provides the same programming model for a single shared-memory
//! machine: a [`Comm`] trait with MPI-shaped collectives, implemented by
//!
//! * [`SelfComm`] — the trivial single-rank communicator, and
//! * [`thread::ThreadComm`] — `p` OS threads acting as ranks, with real
//!   synchronization (sense-reversing barriers), **native collective
//!   algorithms** (recursive-doubling reductions and scans, single-deposit
//!   broadcast, move-once alltoallv), and per-collective byte/round
//!   accounting.
//!
//! Algorithms written against [`Comm`] are structured exactly like their MPI
//! counterparts: each rank owns a shard of the data and all cross-rank data
//! flow is explicit. Every reduction, scan, and broadcast is an overridable
//! trait method: the default bodies derive them from [`Comm::allgather`]
//! (correct for any communicator, and all [`SelfComm`] needs), while
//! `ThreadComm` overrides them with the native algorithms whose volumes
//! match real MPI implementations — `O(m·log p)` received bytes per rank
//! for an `m`-element reduction instead of the allgather's `O(m·p)`.
//!
//! The per-collective `(ops, rounds, bytes)` counters ([`CommStats`]) feed
//! the α–β cost model used by the scaling experiments (see DESIGN.md §3:
//! on a 1-core CI box, wall-clock speedup is not observable, so scaling
//! figures report modeled time from measured communication volume and
//! per-rank work).

pub mod checked;
pub mod proc;
pub mod stats;
pub mod thread;
pub mod wire;

pub use checked::{run_spmd_checked, run_spmd_proc_checked, CheckedCall, CheckedComm, ProtocolError};
pub use proc::{measure_alpha_beta, run_spmd_proc, MeasuredAlphaBeta, ProcComm, ProcError};
pub use stats::{Collective, CommStats, OpStats};
pub use thread::{run_spmd, ThreadComm};
pub use wire::{from_wire, to_wire, Wire, WireCursor};

/// An MPI-like communicator. All collectives must be called by every rank
/// of the communicator, in the same order (the usual MPI contract).
///
/// The reductions, scan, and broadcast have default bodies derived from
/// [`Comm::allgather`]. They make a new implementation correct after
/// providing only the five required methods (`rank`, `size`, `barrier`,
/// `allgather`, `alltoallv`), but move `p` copies of every payload;
/// communicators that care about volume (like [`ThreadComm`]) override
/// them with native algorithms. Cross-rank floating-point reductions are
/// deterministic per implementation but follow a *fixed reduction tree*
/// that may differ between implementations and rank counts — exactly the
/// associativity caveat of `MPI_Allreduce`.
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Block until every rank has entered the barrier.
    fn barrier(&self);

    /// Gather every rank's `local` vector on every rank
    /// (`result[r]` = rank `r`'s contribution).
    fn allgather<T: Wire>(&self, local: Vec<T>) -> Vec<Vec<T>>;

    /// Personalized all-to-all: `sends[r]` goes to rank `r`; the result's
    /// entry `s` is what rank `s` sent to this rank.
    fn alltoallv<T: Wire>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>>;

    /// Snapshot of communication counters (monotone; diff two snapshots to
    /// measure a phase). The trivial communicator reports zeros.
    fn stats(&self) -> CommStats {
        CommStats::default()
    }

    // ---- overridable collectives (allgather-derived reference bodies) ---

    /// Generic allreduce with a commutative, associative `combine`.
    fn allreduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(vec![value]);
        // geo-analyze: allow(panic-in-spmd): infallible — every rank contributed exactly one element just above.
        let mut it = all.into_iter().map(|mut v| v.pop().expect("one element per rank"));
        // geo-analyze: allow(panic-in-spmd): infallible — a communicator has at least one rank.
        let first = it.next().expect("at least one rank");
        it.fold(first, combine)
    }

    /// Element-wise global sum of a vector, in place. This is the
    /// `globalSumVector` of Algorithm 1 (the only communication inside the
    /// assign-and-balance loop).
    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        let all = self.allgather(buf.to_vec());
        for x in buf.iter_mut() {
            *x = 0.0;
        }
        for contrib in &all {
            debug_assert_eq!(contrib.len(), buf.len());
            for (x, c) in buf.iter_mut().zip(contrib) {
                *x += *c;
            }
        }
    }

    /// Element-wise global max, in place.
    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        let all = self.allgather(buf.to_vec());
        for (i, x) in buf.iter_mut().enumerate() {
            *x = all.iter().map(|c| c[i]).fold(f64::NEG_INFINITY, f64::max);
        }
    }

    /// Element-wise global min, in place.
    fn allreduce_min_f64(&self, buf: &mut [f64]) {
        let all = self.allgather(buf.to_vec());
        for (i, x) in buf.iter_mut().enumerate() {
            *x = all.iter().map(|c| c[i]).fold(f64::INFINITY, f64::min);
        }
    }

    /// Element-wise global sum of u64 counters, in place.
    fn allreduce_sum_u64(&self, buf: &mut [u64]) {
        let all = self.allgather(buf.to_vec());
        for x in buf.iter_mut() {
            *x = 0;
        }
        for contrib in &all {
            for (x, c) in buf.iter_mut().zip(contrib) {
                *x += *c;
            }
        }
    }

    /// Exclusive prefix sum over ranks: rank r receives Σ_{s<r} value_s.
    fn exscan_sum_u64(&self, value: u64) -> u64 {
        let all = self.allgather(vec![value]);
        all[..self.rank()].iter().map(|v| v[0]).sum()
    }

    /// Broadcast from `root`: `value` must be `Some` on the root and is
    /// ignored elsewhere.
    fn broadcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        debug_assert!(root < self.size());
        let contribution = if self.rank() == root {
            // geo-analyze: allow(panic-in-spmd): fail-loud API-contract check — the root must supply a value; a silent default would broadcast garbage.
            vec![value.expect("root must supply a value")]
        } else {
            Vec::new()
        };
        let mut all = self.allgather(contribution);
        // geo-analyze: allow(panic-in-spmd): infallible — the root branch above pushed exactly one element.
        all.swap_remove(root).pop().expect("root contribution present")
    }
}

/// The trivial communicator: one rank, no communication.
///
/// Collective *calls* are still counted: every collective records one op
/// with zero rounds and zero received bytes, exactly what a [`ThreadComm`]
/// of size 1 records — so p = 1 runs report the same per-kind op counts on
/// either communicator and measured-vs-modeled comparisons stay
/// apples-to-apples. (Previously only the trait-default bodies ran here
/// and nothing was recorded at all, so p = 1 op counts were unevenly zero
/// across kinds.) The counters live in a thread-local cell shared by all
/// `SelfComm` values on a thread — the instances are stateless and
/// indistinguishable, and [`CommStats`] snapshots are diffed around
/// phases, so sharing monotone counters is observationally equivalent to
/// per-instance cells.
#[derive(Debug, Clone, Default)]
pub struct SelfComm;

thread_local! {
    static SELF_STATS: stats::StatsCell = stats::StatsCell::default();
}

impl SelfComm {
    fn note(&self, kind: Collective) {
        SELF_STATS.with(|c| c.record(kind, 0, 0));
    }
}

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn barrier(&self) {}

    fn allgather<T: Wire>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        self.note(Collective::Allgather);
        vec![local]
    }

    fn alltoallv<T: Wire>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        debug_assert_eq!(sends.len(), 1);
        self.note(Collective::Alltoallv);
        sends
    }

    fn stats(&self) -> CommStats {
        SELF_STATS.with(|c| CommStats::aggregate(1, std::slice::from_ref(c)))
    }

    // Single-rank collectives are identities; each records its op so the
    // per-kind call counts match a size-1 ThreadComm.

    fn allreduce<T, F>(&self, value: T, _combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        self.note(Collective::Allreduce);
        value
    }

    fn allreduce_sum_f64(&self, _buf: &mut [f64]) {
        self.note(Collective::Allreduce);
    }

    fn allreduce_max_f64(&self, _buf: &mut [f64]) {
        self.note(Collective::Allreduce);
    }

    fn allreduce_min_f64(&self, _buf: &mut [f64]) {
        self.note(Collective::Allreduce);
    }

    fn allreduce_sum_u64(&self, _buf: &mut [u64]) {
        self.note(Collective::Allreduce);
    }

    fn exscan_sum_u64(&self, _value: u64) -> u64 {
        self.note(Collective::Exscan);
        0
    }

    fn broadcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        debug_assert_eq!(root, 0);
        self.note(Collective::Broadcast);
        // geo-analyze: allow(panic-in-spmd): fail-loud API-contract check — rank 0 is always the root here and must supply a value.
        value.expect("root must supply a value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_comm_identity() {
        let c = SelfComm;
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        c.barrier();
        let before = c.stats();
        assert_eq!(c.allgather(vec![1, 2, 3]), vec![vec![1, 2, 3]]);
        assert_eq!(c.alltoallv(vec![vec![9]]), vec![vec![9]]);
        let mut buf = [1.0, 2.0];
        c.allreduce_sum_f64(&mut buf);
        assert_eq!(buf, [1.0, 2.0]);
        assert_eq!(c.exscan_sum_u64(5), 0);
        assert_eq!(c.broadcast(0, Some(7)), 7);
        assert_eq!(c.allreduce(3, |a, b| a + b), 3);
        // Every collective kind records one op of zero rounds/bytes —
        // exactly what a size-1 ThreadComm records for the same calls.
        let d = c.stats().since(&before);
        assert_eq!(d.rounds(), 0);
        assert_eq!(d.bytes(), 0);
        assert_eq!(d.op(Collective::Allgather).ops, 1);
        assert_eq!(d.op(Collective::Alltoallv).ops, 1);
        assert_eq!(d.op(Collective::Allreduce).ops, 2);
        assert_eq!(d.op(Collective::Exscan).ops, 1);
        assert_eq!(d.op(Collective::Broadcast).ops, 1);
    }

    #[test]
    fn self_comm_op_counts_match_a_size_one_thread_comm() {
        let sc = SelfComm;
        let before = sc.stats();
        let mut buf = vec![1.0f64; 3];
        sc.allreduce_sum_f64(&mut buf);
        let _ = sc.exscan_sum_u64(2);
        let _ = sc.broadcast(0, Some(5u64));
        let _ = sc.allgather(vec![1u8]);
        let _ = sc.alltoallv(vec![vec![2u8]]);
        let self_delta = sc.stats().since(&before);
        let thread_delta = run_spmd(1, |c| {
            let before = c.stats();
            let mut buf = vec![1.0f64; 3];
            c.allreduce_sum_f64(&mut buf);
            let _ = c.exscan_sum_u64(2);
            let _ = c.broadcast(0, Some(5u64));
            let _ = c.allgather(vec![1u8]);
            let _ = c.alltoallv(vec![vec![2u8]]);
            c.stats().since(&before)
        })
        .remove(0);
        assert_eq!(self_delta.per_op, thread_delta.per_op);
    }

    /// A communicator providing only the five required methods (forwarded
    /// to a `ThreadComm`), so every derived collective runs the
    /// allgather-derived trait default instead of the native override.
    struct MinimalComm(ThreadComm);

    impl Comm for MinimalComm {
        fn rank(&self) -> usize {
            self.0.rank()
        }
        fn size(&self) -> usize {
            self.0.size()
        }
        fn barrier(&self) {
            self.0.barrier()
        }
        fn allgather<T: Wire>(&self, local: Vec<T>) -> Vec<Vec<T>> {
            self.0.allgather(local)
        }
        fn alltoallv<T: Wire>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
            self.0.alltoallv(sends)
        }
    }

    #[test]
    fn derived_bodies_match_native_ones() {
        // The allgather-derived defaults and ThreadComm's native overrides
        // must implement the same specification: run each collective both
        // ways on the same ranks and compare.
        let results = run_spmd(5, |c| {
            let minimal = MinimalComm(c.clone());
            let mut native_sum = vec![c.rank() as f64 + 0.5, 2.0];
            c.allreduce_sum_f64(&mut native_sum);
            let mut derived_sum = vec![c.rank() as f64 + 0.5, 2.0];
            minimal.allreduce_sum_f64(&mut derived_sum);
            let pairs = [
                (c.exscan_sum_u64(c.rank() as u64), minimal.exscan_sum_u64(c.rank() as u64)),
                (
                    c.broadcast(3, (c.rank() == 3).then_some(11u64)),
                    minimal.broadcast(3, (c.rank() == 3).then_some(11u64)),
                ),
                (
                    c.allreduce(c.rank() as u64, u64::max),
                    minimal.allreduce(c.rank() as u64, u64::max),
                ),
            ];
            (native_sum, derived_sum, pairs)
        });
        for (r, (native_sum, derived_sum, pairs)) in results.into_iter().enumerate() {
            assert!((native_sum[0] - 12.5).abs() < 1e-12);
            assert_eq!(native_sum[1], 10.0);
            // Exact for the integer-valued second component; the first may
            // differ from the derived rank-ordered fold by associativity.
            assert_eq!(derived_sum[1], 10.0);
            assert!((native_sum[0] - derived_sum[0]).abs() < 1e-12);
            let [(ex_n, ex_d), (bc_n, bc_d), (mx_n, mx_d)] = pairs;
            assert_eq!(ex_n, (0..r as u64).sum::<u64>());
            assert_eq!(ex_n, ex_d);
            assert_eq!(bc_n, 11);
            assert_eq!(bc_n, bc_d);
            assert_eq!(mx_n, 4);
            assert_eq!(mx_n, mx_d);
        }
    }
}
