//! Threads-as-ranks communicator.
//!
//! [`run_spmd`] launches `p` OS threads, each holding a [`ThreadComm`] with
//! a distinct rank, and runs the same closure on all of them — the SPMD
//! model of an `mpirun -np p` job. Collectives deposit each rank's
//! contribution into a shared, type-erased slot table, synchronize with a
//! sense-reversing barrier, then read the peers' contributions.
//!
//! The implementation favours obviousness over throughput: a collective is
//! two barriers and `p` mutex acquisitions. That is plenty for the
//! experiment scale of this reproduction (the data plane — points, graphs —
//! never moves through these slots wholesale; only collective payloads do,
//! exactly as in the MPI original).

use std::any::Any;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::stats::{CommStats, StatsCell};
use crate::Comm;

/// A reusable (sense-reversing) barrier for `n` participants.
#[derive(Debug)]
struct Barrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    waiting: usize,
    generation: u64,
}

impl Barrier {
    fn new(n: usize) -> Self {
        Barrier {
            n,
            state: Mutex::new(BarrierState { waiting: 0, generation: 0 }),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.waiting += 1;
        if st.waiting == self.n {
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
        }
    }
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// Shared state of one communicator instance.
#[derive(Debug)]
struct CommCore {
    size: usize,
    barrier: Barrier,
    slots: Vec<Slot>,
    stats: StatsCell,
}

/// One rank's handle into a threads-as-ranks communicator.
#[derive(Debug, Clone)]
pub struct ThreadComm {
    core: Arc<CommCore>,
    rank: usize,
}

impl ThreadComm {
    /// Create handles for all `size` ranks of a fresh communicator.
    /// (Usually you want [`run_spmd`] instead.)
    pub fn create(size: usize) -> Vec<ThreadComm> {
        assert!(size > 0, "communicator needs at least one rank");
        let core = Arc::new(CommCore {
            size,
            barrier: Barrier::new(size),
            slots: (0..size).map(|_| Mutex::new(None)).collect(),
            stats: StatsCell::default(),
        });
        (0..size).map(|rank| ThreadComm { core: Arc::clone(&core), rank }).collect()
    }

    fn deposit<T: Send + 'static>(&self, value: T) {
        *self.core.slots[self.rank].lock() = Some(Box::new(value));
    }

    fn peek<T: Clone + 'static, R>(&self, rank: usize, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.core.slots[rank].lock();
        let boxed = guard.as_ref().expect("peer slot must be filled");
        let value = boxed.downcast_ref::<T>().expect("collective type mismatch");
        f(value)
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.core.size
    }

    fn barrier(&self) {
        self.core.barrier.wait();
    }

    fn allgather<T: Clone + Send + 'static>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        self.core.stats.record(bytes * (self.core.size as u64 - 1));
        self.deposit(local);
        self.barrier();
        let mut out = Vec::with_capacity(self.core.size);
        for r in 0..self.core.size {
            out.push(self.peek::<Vec<T>, _>(r, |v| v.clone()));
        }
        // Nobody may overwrite a slot until everyone has read all of them.
        self.barrier();
        out
    }

    fn alltoallv<T: Clone + Send + 'static>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(sends.len(), self.core.size, "one send buffer per rank");
        let off_rank_bytes: u64 = sends
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != self.rank)
            .map(|(_, v)| (v.len() * std::mem::size_of::<T>()) as u64)
            .sum();
        self.core.stats.record(off_rank_bytes);
        self.deposit(sends);
        self.barrier();
        let mut out = Vec::with_capacity(self.core.size);
        for r in 0..self.core.size {
            out.push(self.peek::<Vec<Vec<T>>, _>(r, |v| v[self.rank].clone()));
        }
        self.barrier();
        out
    }

    fn stats(&self) -> CommStats {
        self.core.stats.snapshot()
    }
}

/// Run `f` as an SPMD program on `p` ranks (threads) and return the
/// per-rank results, indexed by rank.
pub fn run_spmd<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    let comms = ThreadComm::create(p);
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(p);
        for (comm, slot) in comms.into_iter().zip(results.iter_mut()) {
            handles.push(scope.spawn(move || {
                *slot = Some(f(comm));
            }));
        }
        for h in handles {
            h.join().expect("SPMD rank panicked");
        }
    });
    results.into_iter().map(|r| r.expect("rank produced a result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_collects_everyone() {
        let results = run_spmd(4, |c| {
            let all = c.allgather(vec![c.rank() as u64; c.rank() + 1]);
            all.iter().map(|v| v.len()).collect::<Vec<_>>()
        });
        for r in results {
            assert_eq!(r, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        let results = run_spmd(5, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn alltoallv_routes_correctly() {
        // Rank s sends the value 100*s + r to rank r.
        let results = run_spmd(4, |c| {
            let sends: Vec<Vec<u64>> =
                (0..4).map(|r| vec![100 * c.rank() as u64 + r as u64]).collect();
            c.alltoallv(sends)
        });
        for (r, recv) in results.iter().enumerate() {
            for (s, v) in recv.iter().enumerate() {
                assert_eq!(v, &vec![100 * s as u64 + r as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_buffers() {
        let results = run_spmd(3, |c| {
            // Only rank 0 sends anything, and only to rank 2.
            let mut sends: Vec<Vec<u8>> = vec![vec![]; 3];
            if c.rank() == 0 {
                sends[2] = vec![42];
            }
            c.alltoallv(sends)
        });
        assert_eq!(results[2][0], vec![42]);
        assert!(results[0].iter().all(|v| v.is_empty()));
        assert!(results[1].iter().all(|v| v.is_empty()));
    }

    #[test]
    fn exscan_is_exclusive_prefix() {
        let results = run_spmd(4, |c| c.exscan_sum_u64(10 * (c.rank() as u64 + 1)));
        assert_eq!(results, vec![0, 10, 30, 60]);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_spmd(4, |c| {
            let v = if c.rank() == 2 { Some(vec![7u32, 8]) } else { None };
            c.broadcast(2, v)
        });
        for r in results {
            assert_eq!(r, vec![7, 8]);
        }
    }

    #[test]
    fn generic_allreduce_max() {
        let results = run_spmd(6, |c| c.allreduce(c.rank() as u64, u64::max));
        assert!(results.iter().all(|&m| m == 5));
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_cross() {
        let results = run_spmd(3, |c| {
            let mut acc = 0u64;
            for round in 0..50u64 {
                let mut buf = vec![round + c.rank() as u64];
                c.allreduce_sum_u64(&mut buf);
                acc = acc.wrapping_add(buf[0]);
            }
            acc
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stats_count_bytes() {
        let results = run_spmd(2, |c| {
            let before = c.stats();
            let _ = c.allgather(vec![0u64; 4]);
            c.stats().since(&before)
        });
        // Each rank contributed 32 bytes to one peer.
        assert!(results[0].bytes >= 32);
        assert!(results[0].collectives >= 1);
    }

    #[test]
    fn single_rank_thread_comm_works() {
        let results = run_spmd(1, |c| {
            let mut buf = vec![3.0];
            c.allreduce_sum_f64(&mut buf);
            buf[0]
        });
        assert_eq!(results, vec![3.0]);
    }

    #[test]
    fn barrier_reusable_many_times() {
        run_spmd(4, |c| {
            for _ in 0..200 {
                c.barrier();
            }
        });
    }
}
