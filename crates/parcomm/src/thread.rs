//! Threads-as-ranks communicator.
//!
//! [`run_spmd`] launches `p` OS threads, each holding a [`ThreadComm`] with
//! a distinct rank, and runs the same closure on all of them — the SPMD
//! model of an `mpirun -np p` job. Collectives synchronize with a
//! sense-reversing barrier and move payloads through shared, type-erased
//! slots.
//!
//! Unlike the first iteration of this crate (which derived every collective
//! from a p-wide allgather), each collective now runs its native algorithm
//! with the volumes of its MPI counterpart (DESIGN.md §4):
//!
//! * reductions and scans use **recursive doubling** — `⌈log₂ p⌉` rounds of
//!   pairwise exchange, `O(m·log p)` received bytes per rank instead of the
//!   allgather's `O(m·p)`;
//! * **broadcast** is a single deposit: the root writes one slot and the
//!   `p−1` peers read it (no gather);
//! * **alltoallv** uses a `p×p` mailbox matrix, so every send vector is
//!   *moved* from sender to receiver exactly once, never cloned;
//! * **allgather** keeps the one-round deposit-and-read-all schedule, which
//!   is already volume-optimal for its semantics.
//!
//! Every rank records `(ops, rounds, received bytes)` per collective kind
//! into its own [`StatsCell`]; [`ThreadComm::stats`] aggregates them into
//! the per-op [`CommStats`] the α–β cost model consumes.

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::stats::{Collective, CommStats, StatsCell};
use crate::wire::Wire;
use crate::Comm;

/// Sentinel for "no rank has poisoned the communicator".
const NOT_POISONED: usize = usize::MAX;

/// A reusable (sense-reversing) barrier for `n` participants, with a
/// poison flag that aborts every present and future wait.
///
/// The poison path is the fix for the rank-failure hang: a rank that
/// panics mid-collective never arrives at the barrier its peers are
/// blocked in, and before the fix those peers waited forever (and
/// `run_spmd`'s in-order joins never completed). Poisoning wakes every
/// waiter and turns their wait into a panic, so the whole SPMD job
/// unwinds and the *original* panic can be propagated.
#[derive(Debug)]
struct Barrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Rank of the first poisoner, or [`NOT_POISONED`].
    poisoned: AtomicUsize,
}

#[derive(Debug)]
struct BarrierState {
    waiting: usize,
    generation: u64,
}

impl Barrier {
    fn new(n: usize) -> Self {
        Barrier {
            n,
            state: Mutex::new(BarrierState { waiting: 0, generation: 0 }),
            cv: Condvar::new(),
            poisoned: AtomicUsize::new(NOT_POISONED),
        }
    }

    fn check_poison(&self) {
        let p = self.poisoned.load(Ordering::Acquire);
        if p != NOT_POISONED {
            // Deliberate fail-loud abort — poisoning unparks peers of a dead rank; run_spmd re-propagates the first panic (DESIGN.md §10).
            panic!("SPMD aborted: rank {p} panicked while peers were in a collective");
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock();
        self.check_poison();
        let gen = st.generation;
        st.waiting += 1;
        if st.waiting == self.n {
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
                // Re-check under the lock: a poisoner wakes all waiters
                // without advancing the generation.
                self.check_poison();
            }
        }
    }

    /// Mark the barrier dead on behalf of `rank` and wake every waiter.
    /// Idempotent; only the first poisoner is recorded.
    fn poison(&self, rank: usize) {
        let _ = self.poisoned.compare_exchange(
            NOT_POISONED,
            rank,
            Ordering::Release,
            Ordering::Relaxed,
        );
        // Take the state lock before notifying so a waiter cannot slip
        // between its poison check and its `cv.wait` and miss the wakeup.
        let _guard = self.state.lock();
        self.cv.notify_all();
    }
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// Shared state of one communicator instance.
#[derive(Debug)]
struct CommCore {
    size: usize,
    barrier: Barrier,
    /// One payload slot per rank (reductions, gathers, broadcast).
    slots: Vec<Slot>,
    /// `p×p` mailbox matrix for alltoallv: entry `s·p + d` carries what
    /// rank `s` sends to rank `d`, moved in and moved out.
    mail: Vec<Slot>,
    /// One counter cell per rank; each rank writes only its own.
    stats: Vec<StatsCell>,
}

/// One rank's handle into a threads-as-ranks communicator.
#[derive(Debug, Clone)]
pub struct ThreadComm {
    core: Arc<CommCore>,
    rank: usize,
}

impl ThreadComm {
    /// Create handles for all `size` ranks of a fresh communicator.
    /// (Usually you want [`run_spmd`] instead.)
    pub fn create(size: usize) -> Vec<ThreadComm> {
        assert!(size > 0, "communicator needs at least one rank");
        let core = Arc::new(CommCore {
            size,
            barrier: Barrier::new(size),
            slots: (0..size).map(|_| Mutex::new(None)).collect(),
            mail: (0..size * size).map(|_| Mutex::new(None)).collect(),
            stats: (0..size).map(|_| StatsCell::default()).collect(),
        });
        (0..size).map(|rank| ThreadComm { core: Arc::clone(&core), rank }).collect()
    }

    fn deposit<T: Send + 'static>(&self, value: T) {
        *self.core.slots[self.rank].lock() = Some(Box::new(value));
    }

    fn peek<T: Clone + 'static, R>(&self, rank: usize, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.core.slots[rank].lock();
        // Infallible — peek always follows the deposit barrier of the same collective round.
        let boxed = guard.as_ref().expect("peer slot must be filled");
        // Fail-loud SPMD-contract check — ranks disagreeing on T must not silently reinterpret bytes.
        let value = boxed.downcast_ref::<T>().expect("collective type mismatch");
        f(value)
    }

    fn record(&self, kind: Collective, rounds: u64, received_bytes: u64) {
        self.core.stats[self.rank].record(kind, rounds, received_bytes);
    }

    /// Core recursive-doubling (butterfly) schedule shared by every
    /// allreduce variant.
    ///
    /// `p` is folded to the largest power of two `q ≤ p` first (the extra
    /// ranks pre-reduce into their partner and receive the result back at
    /// the end), then `log₂ q` pairwise exchange rounds run among the first
    /// `q` ranks. `combine` is always applied in rank order — lower rank's
    /// partial first — so every rank finishes with the bitwise-identical
    /// value of one fixed reduction tree.
    ///
    /// `msg_bytes` is the payload size of one exchanged message. Counts are
    /// recorded *at entry* (they are deterministic functions of `p` and the
    /// payload size), so a rank that exits the collective can snapshot the
    /// stats without racing slower peers' bookkeeping.
    fn butterfly<T, F>(&self, kind: Collective, value: T, msg_bytes: u64, combine: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let p = self.core.size;
        if p == 1 {
            self.record(kind, 0, 0);
            return value;
        }
        let r = self.rank;
        let q = prev_power_of_two(p);
        let extra = p - q;
        let log_q = q.trailing_zeros() as u64;
        let rounds = log_q + if extra > 0 { 2 } else { 0 };
        let my_exchanges = if r >= q {
            1 // receives the finished result in the unfold round only
        } else {
            log_q + u64::from(r < extra)
        };
        self.record(kind, rounds, my_exchanges * msg_bytes);
        let mut acc = value;

        // Fold step: ranks q..p send their contribution to rank r−q.
        if extra > 0 {
            if r >= q {
                self.deposit(acc.clone());
            }
            self.barrier();
            if r < extra {
                let theirs = self.peek::<T, _>(r + q, |t| t.clone());
                acc = combine(acc, theirs);
            }
            self.barrier();
        }

        // Butterfly among ranks 0..q.
        let mut gap = 1;
        while gap < q {
            if r < q {
                self.deposit(acc.clone());
            }
            self.barrier();
            if r < q {
                let partner = r ^ gap;
                let theirs = self.peek::<T, _>(partner, |t| t.clone());
                acc = if partner < r { combine(theirs, acc) } else { combine(acc, theirs) };
            }
            self.barrier();
            gap <<= 1;
        }

        // Unfold step: ranks 0..extra hand the result back to r+q.
        if extra > 0 {
            if r < extra {
                self.deposit(acc.clone());
            }
            self.barrier();
            if r >= q {
                acc = self.peek::<T, _>(r - q, |t| t.clone());
            }
            self.barrier();
        }
        acc
    }

    /// Element-wise butterfly reduction of a slice, in place.
    fn butterfly_slice<T, F>(&self, kind: Collective, buf: &mut [T], op: F)
    where
        T: Copy + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let msg_bytes = std::mem::size_of_val(buf) as u64;
        let out = self.butterfly(kind, buf.to_vec(), msg_bytes, |mut lower, higher| {
            for (x, t) in lower.iter_mut().zip(higher) {
                *x = op(*x, t);
            }
            lower
        });
        buf.copy_from_slice(&out);
    }
}

/// Largest power of two `≤ n` (`n ≥ 1`).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.core.size
    }

    fn barrier(&self) {
        self.core.barrier.wait();
    }

    fn allgather<T: Wire>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        let p = self.core.size;
        self.deposit(local);
        self.barrier();
        let mut out = Vec::with_capacity(p);
        let mut received = 0u64;
        for r in 0..p {
            out.push(self.peek::<Vec<T>, _>(r, |v| v.clone()));
            if r != self.rank {
                received += (out[r].len() * std::mem::size_of::<T>()) as u64;
            }
        }
        // Record before the exit barrier so peers' post-collective
        // snapshots see this rank's contribution; then nobody may
        // overwrite a slot until everyone has read all of them.
        self.record(Collective::Allgather, u64::from(p > 1), received);
        self.barrier();
        out
    }

    fn alltoallv<T: Wire>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.core.size;
        assert_eq!(sends.len(), p, "one send buffer per rank");
        // Move each send vector into its (sender, receiver) mailbox.
        for (d, v) in sends.into_iter().enumerate() {
            *self.core.mail[self.rank * p + d].lock() = Some(Box::new(v));
        }
        self.barrier();
        // Take ownership of what every sender deposited for this rank:
        // each vector is moved exactly once end to end.
        let mut out = Vec::with_capacity(p);
        let mut received = 0u64;
        for s in 0..p {
            let boxed = self.core.mail[s * p + self.rank]
                .lock()
                .take()
                // geo-analyze: allow(panic-in-spmd): infallible — every sender filled its row before the barrier above.
                .expect("mailbox must be filled");
            // geo-analyze: allow(panic-in-spmd): fail-loud SPMD-contract check — ranks disagreeing on T must not silently reinterpret bytes.
            let v = *boxed.downcast::<Vec<T>>().expect("collective type mismatch");
            if s != self.rank {
                received += (v.len() * std::mem::size_of::<T>()) as u64;
            }
            out.push(v);
        }
        self.record(Collective::Alltoallv, u64::from(p > 1), received);
        self.barrier();
        out
    }

    fn allreduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let esz = std::mem::size_of::<T>() as u64;
        self.butterfly(Collective::Allreduce, value, esz, combine)
    }

    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        self.butterfly_slice(Collective::Allreduce, buf, |a, b| a + b);
    }

    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        self.butterfly_slice(Collective::Allreduce, buf, f64::max);
    }

    fn allreduce_min_f64(&self, buf: &mut [f64]) {
        self.butterfly_slice(Collective::Allreduce, buf, f64::min);
    }

    fn allreduce_sum_u64(&self, buf: &mut [u64]) {
        self.butterfly_slice(Collective::Allreduce, buf, |a, b| a.wrapping_add(b));
    }

    fn exscan_sum_u64(&self, value: u64) -> u64 {
        // Hillis–Steele distributed scan: at distance `gap`, every rank
        // passes its inclusive partial down-stream; rank r accumulates
        // from r−gap. ⌈log₂ p⌉ rounds, 8 received bytes per active round.
        let p = self.core.size;
        if p == 1 {
            self.record(Collective::Exscan, 0, 0);
            return 0;
        }
        let r = self.rank;
        // Rank r receives in every round whose gap (1, 2, 4, …) is ≤ r.
        let rounds = usize::BITS as u64 - (p - 1).leading_zeros() as u64;
        let my_receives = (0..rounds).filter(|&d| (1usize << d) <= r).count() as u64;
        self.record(Collective::Exscan, rounds, my_receives * 8);
        let mut exclusive = 0u64;
        let mut inclusive = value;
        let mut gap = 1;
        while gap < p {
            self.deposit(inclusive);
            self.barrier();
            if r >= gap {
                let theirs = self.peek::<u64, _>(r - gap, |&t| t);
                exclusive += theirs;
                inclusive += theirs;
            }
            self.barrier();
            gap <<= 1;
        }
        exclusive
    }

    fn broadcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        // Single deposit: the root writes its slot once; the p−1 peers
        // read it. The root takes its own value back out of the slot after
        // the read phase, so nothing is cloned on the root path.
        debug_assert!(root < self.core.size);
        if self.core.size == 1 {
            self.record(Collective::Broadcast, 0, 0);
            // geo-analyze: allow(panic-in-spmd): fail-loud API-contract check — the root must supply a value; a silent default would broadcast garbage.
            return value.expect("root must supply a value");
        }
        let received =
            if self.rank == root { 0 } else { std::mem::size_of::<T>() as u64 };
        self.record(Collective::Broadcast, 1, received);
        if self.rank == root {
            // geo-analyze: allow(panic-in-spmd): fail-loud API-contract check — the root must supply a value; a silent default would broadcast garbage.
            self.deposit(value.expect("root must supply a value"));
        }
        self.barrier();
        let out = if self.rank == root {
            None
        } else {
            Some(self.peek::<T, _>(root, |t| t.clone()))
        };
        self.barrier();
        match out {
            Some(v) => v,
            None => {
                let boxed =
                    // geo-analyze: allow(panic-in-spmd): infallible — the root deposited before the barrier and only the root takes.
                    self.core.slots[root].lock().take().expect("root slot present");
                // geo-analyze: allow(panic-in-spmd): infallible — the root reclaims the exact value it deposited.
                *boxed.downcast::<T>().expect("collective type mismatch")
            }
        }
    }

    fn stats(&self) -> CommStats {
        CommStats::aggregate(self.core.size, &self.core.stats)
    }
}

/// Poisons the communicator's barrier if its rank unwinds, so peers
/// blocked in collectives abort instead of waiting forever for a rank
/// that will never arrive.
struct PoisonOnPanic {
    core: Arc<CommCore>,
    rank: usize,
}

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.core.barrier.poison(self.rank);
        }
    }
}

/// Run `f` as an SPMD program on `p` ranks (threads) and return the
/// per-rank results, indexed by rank.
///
/// If any rank panics, the communicator is poisoned so surviving ranks
/// abort out of their collectives (instead of deadlocking on the dead
/// rank's barrier/mailbox), and the **first** panic is re-propagated from
/// this call with its original payload. Ranks that were aborted by the
/// poison unwind with a secondary "SPMD aborted" panic that is joined and
/// discarded.
pub fn run_spmd<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    let comms = ThreadComm::create(p);
    let core = Arc::clone(&comms[0].core);
    let joined: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let guard =
                        PoisonOnPanic { core: Arc::clone(&comm.core), rank: comm.rank };
                    let out = f(comm);
                    // Reached only on success; a panic in `f` drops the
                    // guard while unwinding and poisons the barrier.
                    std::mem::forget(guard);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let first_panicker = core.barrier.poisoned.load(Ordering::Acquire);
    let mut payloads: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
    let mut results = Vec::with_capacity(p);
    for (rank, r) in joined.into_iter().enumerate() {
        match r {
            Ok(v) => results.push(v),
            Err(payload) => payloads.push((rank, payload)),
        }
    }
    if let Some(pos) = payloads.iter().position(|(r, _)| *r == first_panicker) {
        // Re-raise the original panic, not the secondary aborts it caused.
        std::panic::resume_unwind(payloads.swap_remove(pos).1);
    }
    if let Some((_, payload)) = payloads.into_iter().next() {
        std::panic::resume_unwind(payload);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OpStats;

    #[test]
    fn allgather_collects_everyone() {
        let results = run_spmd(4, |c| {
            let all = c.allgather(vec![c.rank() as u64; c.rank() + 1]);
            all.iter().map(|v| v.len()).collect::<Vec<_>>()
        });
        for r in results {
            assert_eq!(r, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        let results = run_spmd(5, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_min_max_over_many_rank_counts() {
        for p in 1..=9 {
            let results = run_spmd(p, |c| {
                let mut mx = vec![c.rank() as f64, -(c.rank() as f64)];
                c.allreduce_max_f64(&mut mx);
                let mut mn = vec![c.rank() as f64];
                c.allreduce_min_f64(&mut mn);
                (mx, mn)
            });
            for (mx, mn) in results {
                assert_eq!(mx, vec![(p - 1) as f64, 0.0], "p={p}");
                assert_eq!(mn, vec![0.0], "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_identical_bits_on_every_rank() {
        // The butterfly applies one fixed reduction tree: all ranks must
        // produce bitwise-identical sums even for non-associative f64 data.
        for p in [2usize, 3, 5, 6, 7, 8] {
            let results = run_spmd(p, |c| {
                let mut buf: Vec<f64> =
                    (0..17).map(|i| 0.1 * (c.rank() * 31 + i) as f64).collect();
                c.allreduce_sum_f64(&mut buf);
                buf
            });
            for r in &results[1..] {
                assert_eq!(
                    r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    results[0].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "p={p}: ranks disagree bitwise"
                );
            }
        }
    }

    #[test]
    fn alltoallv_routes_correctly() {
        // Rank s sends the value 100*s + r to rank r.
        let results = run_spmd(4, |c| {
            let sends: Vec<Vec<u64>> =
                (0..4).map(|r| vec![100 * c.rank() as u64 + r as u64]).collect();
            c.alltoallv(sends)
        });
        for (r, recv) in results.iter().enumerate() {
            for (s, v) in recv.iter().enumerate() {
                assert_eq!(v, &vec![100 * s as u64 + r as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_buffers() {
        let results = run_spmd(3, |c| {
            // Only rank 0 sends anything, and only to rank 2.
            let mut sends: Vec<Vec<u8>> = vec![vec![]; 3];
            if c.rank() == 0 {
                sends[2] = vec![42];
            }
            c.alltoallv(sends)
        });
        assert_eq!(results[2][0], vec![42]);
        assert!(results[0].iter().all(|v| v.is_empty()));
        assert!(results[1].iter().all(|v| v.is_empty()));
    }

    #[test]
    fn exscan_is_exclusive_prefix() {
        let results = run_spmd(4, |c| c.exscan_sum_u64(10 * (c.rank() as u64 + 1)));
        assert_eq!(results, vec![0, 10, 30, 60]);
    }

    #[test]
    fn exscan_nonpower_of_two() {
        for p in [3usize, 5, 6, 7] {
            let results = run_spmd(p, |c| c.exscan_sum_u64(c.rank() as u64 + 1));
            let expected: Vec<u64> =
                (0..p as u64).map(|r| (1..=r).sum::<u64>()).collect();
            assert_eq!(results, expected, "p={p}");
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_spmd(4, |c| {
            let v = if c.rank() == 2 { Some(vec![7u32, 8]) } else { None };
            c.broadcast(2, v)
        });
        for r in results {
            assert_eq!(r, vec![7, 8]);
        }
    }

    #[test]
    fn generic_allreduce_max() {
        let results = run_spmd(6, |c| c.allreduce(c.rank() as u64, u64::max));
        assert!(results.iter().all(|&m| m == 5));
    }

    #[test]
    fn generic_allreduce_tuple_minmax() {
        // The fused (min, max) reduction the quantile searches use.
        let results = run_spmd(5, |c| {
            let v = c.rank() as u64 * 10;
            c.allreduce((v, v), |a, b| (a.0.min(b.0), a.1.max(b.1)))
        });
        assert!(results.iter().all(|&mm| mm == (0, 40)));
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_cross() {
        let results = run_spmd(3, |c| {
            let mut acc = 0u64;
            for round in 0..50u64 {
                let mut buf = vec![round + c.rank() as u64];
                c.allreduce_sum_u64(&mut buf);
                acc = acc.wrapping_add(buf[0]);
            }
            acc
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stats_break_down_by_collective() {
        let results = run_spmd(2, |c| {
            let before = c.stats();
            let _ = c.allgather(vec![0u64; 4]);
            let mut buf = vec![0.0f64; 4];
            c.allreduce_sum_f64(&mut buf);
            let _ = c.exscan_sum_u64(1);
            let _ = c.broadcast(0, if c.rank() == 0 { Some(3u64) } else { None });
            let _ = c.alltoallv(vec![vec![1u8], vec![2u8]]);
            c.stats().since(&before)
        });
        let d = results[0];
        assert_eq!(d.ranks, 2);
        // allgather: each rank receives the peer's 32 bytes in one round.
        assert_eq!(d.op(Collective::Allgather), OpStats { ops: 1, rounds: 1, bytes: 64 });
        // allreduce at p=2: one butterfly round, 32 bytes per rank.
        assert_eq!(d.op(Collective::Allreduce), OpStats { ops: 1, rounds: 1, bytes: 64 });
        // exscan at p=2: one round, only rank 1 receives 8 bytes.
        assert_eq!(d.op(Collective::Exscan), OpStats { ops: 1, rounds: 1, bytes: 8 });
        // broadcast: only the non-root receives.
        assert_eq!(d.op(Collective::Broadcast), OpStats { ops: 1, rounds: 1, bytes: 8 });
        // alltoallv: each rank receives 1 off-rank byte.
        assert_eq!(d.op(Collective::Alltoallv), OpStats { ops: 1, rounds: 1, bytes: 2 });
        assert_eq!(d.collectives(), 5);
    }

    #[test]
    fn butterfly_allreduce_beats_allgather_volume_by_2x() {
        // The ISSUE-2 acceptance bound: p = 8, 4096-element f64 buffer —
        // per-rank received bytes of the native allreduce must be at least
        // 2× below the allgather-derived baseline.
        let (p, m) = (8usize, 4096usize);
        let results = run_spmd(p, |c| {
            let s0 = c.stats();
            let mut buf = vec![1.0f64; m];
            c.allreduce_sum_f64(&mut buf);
            let s1 = c.stats();
            let _ = c.allgather(vec![1.0f64; m]);
            let s2 = c.stats();
            (s1.since(&s0), s2.since(&s1))
        });
        let (reduce, gather) = &results[0];
        let reduce_per_rank = reduce.op(Collective::Allreduce).bytes / p as u64;
        let gather_per_rank = gather.op(Collective::Allgather).bytes / p as u64;
        // Exactly log₂(8) = 3 exchange rounds of 4096·8 bytes each...
        assert_eq!(reduce.op(Collective::Allreduce).rounds, 3);
        assert_eq!(reduce_per_rank, 3 * (m as u64) * 8);
        // ...versus (p−1)·m·8 for the gather-everything baseline.
        assert_eq!(gather_per_rank, 7 * (m as u64) * 8);
        assert!(
            gather_per_rank >= 2 * reduce_per_rank,
            "allreduce must receive ≥2× fewer bytes than the allgather \
             baseline ({reduce_per_rank} vs {gather_per_rank})"
        );
    }

    #[test]
    fn single_rank_thread_comm_works() {
        let results = run_spmd(1, |c| {
            let mut buf = vec![3.0];
            c.allreduce_sum_f64(&mut buf);
            let ex = c.exscan_sum_u64(9);
            let bc = c.broadcast(0, Some(4u32));
            (buf[0], ex, bc)
        });
        assert_eq!(results, vec![(3.0, 0, 4)]);
    }

    #[test]
    fn barrier_reusable_many_times() {
        run_spmd(4, |c| {
            for _ in 0..200 {
                c.barrier();
            }
        });
    }

    #[test]
    fn panicking_rank_unblocks_peers_and_propagates_the_original_panic() {
        // Regression: rank 2 dies *before* entering the collective its
        // peers are already blocked in. Without poisoning, ranks 0/1/3
        // wait forever for a deposit that never comes and the job hangs.
        let err = std::panic::catch_unwind(|| {
            run_spmd(4, |c| {
                if c.rank() == 2 {
                    panic!("rank 2 exploded");
                }
                let mut buf = vec![1.0];
                c.allreduce_sum_f64(&mut buf);
                buf[0]
            })
        })
        .expect_err("the job must fail, not hang");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(
            msg, "rank 2 exploded",
            "the original panic must propagate, not the secondary aborts"
        );
    }

    #[test]
    fn panicking_rank_mid_collective_sequence_aborts_cleanly() {
        // The panicker completes one collective first, so peers are
        // mid-stream with live mailbox state when the poison lands.
        let err = std::panic::catch_unwind(|| {
            run_spmd(3, |c| {
                let mut buf = vec![c.rank() as f64];
                c.allreduce_sum_f64(&mut buf);
                if c.rank() == 0 {
                    panic!("late failure");
                }
                c.barrier();
                let all = c.allgather(vec![c.rank() as u64]);
                all.len()
            })
        })
        .expect_err("the job must fail, not hang");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "late failure");
    }
}
