//! Wire serialization for collective payloads.
//!
//! [`ThreadComm`](crate::ThreadComm) moves payloads between ranks as
//! type-erased boxes inside one address space, so any `Clone + Send` type
//! works. A multi-process backend ([`ProcComm`](crate::ProcComm)) moves
//! them over Unix-domain sockets, which needs an explicit byte encoding.
//! [`Wire`] is that encoding: a minimal, dependency-free, little-endian
//! format implemented for exactly the payload shapes the workspace's
//! algorithms exchange (scalars, tuples, fixed arrays, vectors).
//!
//! The [`Comm`](crate::Comm) trait bounds its generic collectives on
//! `Wire`, so every algorithm written against `Comm` is guaranteed to run
//! unchanged on both the threads-as-ranks and the processes-as-ranks
//! backend. The encoding is not self-describing (no field tags, no type
//! ids): both sides of a collective already agree on `T` by the SPMD
//! contract, and the framing layer around it carries length, sequence
//! number, and collective kind (see `proc::frame`).

/// A value that can cross a process boundary inside a collective.
///
/// Implementations must round-trip exactly: `from_wire(to_wire(x)) == x`
/// bit-for-bit (floats are encoded as their IEEE-754 bits, so NaN payloads
/// survive). `wire_write` appends to the buffer; `wire_read` consumes from
/// the cursor and panics on truncated or malformed input — inside a
/// collective that indicates a framing bug, and the worker's panic is
/// converted into a job error by the process runner.
pub trait Wire: Clone + Send + 'static {
    /// Append this value's encoding to `out`.
    fn wire_write(&self, out: &mut Vec<u8>);
    /// Decode one value from the cursor.
    fn wire_read(r: &mut WireCursor<'_>) -> Self;
}

/// Read cursor over an encoded buffer.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// Cursor over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireCursor { buf, pos: 0 }
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> &'a [u8] {
        let end = self.pos.checked_add(n).expect("wire cursor overflow");
        assert!(end <= self.buf.len(), "wire payload truncated: need {n} bytes at {}", self.pos);
        let s = &self.buf[self.pos..end];
        self.pos = end;
        s
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encode one value into a fresh buffer.
pub fn to_wire<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.wire_write(&mut out);
    out
}

/// Decode one value, requiring the buffer to be fully consumed.
pub fn from_wire<T: Wire>(bytes: &[u8]) -> T {
    let mut c = WireCursor::new(bytes);
    let v = T::wire_read(&mut c);
    assert_eq!(c.remaining(), 0, "wire payload has trailing bytes");
    v
}

macro_rules! wire_scalar {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn wire_write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn wire_read(r: &mut WireCursor<'_>) -> Self {
                <$t>::from_le_bytes(r.take(std::mem::size_of::<$t>()).try_into().unwrap())
            }
        }
    )*};
}

wire_scalar!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

// usize/isize travel as 8-byte values so the encoding does not depend on
// the host word size (all ranks of one job share an architecture anyway,
// but the frames should not care).
impl Wire for usize {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (*self as u64).wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        u64::wire_read(r) as usize
    }
}

impl Wire for isize {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (*self as i64).wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        i64::wire_read(r) as isize
    }
}

impl Wire for bool {
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        r.take(1)[0] != 0
    }
}

impl Wire for () {
    fn wire_write(&self, _out: &mut Vec<u8>) {}
    fn wire_read(_r: &mut WireCursor<'_>) -> Self {}
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.0.wire_write(out);
        self.1.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        (A::wire_read(r), B::wire_read(r))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.0.wire_write(out);
        self.1.wire_write(out);
        self.2.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        (A::wire_read(r), B::wire_read(r), C::wire_read(r))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.0.wire_write(out);
        self.1.wire_write(out);
        self.2.wire_write(out);
        self.3.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        (A::wire_read(r), B::wire_read(r), C::wire_read(r), D::wire_read(r))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn wire_write(&self, out: &mut Vec<u8>) {
        for x in self {
            x.wire_write(out);
        }
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        std::array::from_fn(|_| T::wire_read(r))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (self.len() as u64).wire_write(out);
        for x in self {
            x.wire_write(out);
        }
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        let n = u64::wire_read(r) as usize;
        // Sanity floor: even 1-byte elements cannot outnumber the bytes
        // left, so a corrupt length fails here instead of in an OOM.
        assert!(n <= r.remaining(), "wire vector length {n} exceeds payload");
        (0..n).map(|_| T::wire_read(r)).collect()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_write(out);
            }
        }
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        match r.take(1)[0] {
            0 => None,
            1 => Some(T::wire_read(r)),
            t => panic!("wire Option tag {t} invalid"),
        }
    }
}

impl Wire for String {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (self.len() as u64).wire_write(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        let n = u64::wire_read(r) as usize;
        String::from_utf8(r.take(n).to_vec()).expect("wire string not UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(from_wire::<T>(&to_wire(&v)), v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-5i64);
        roundtrip(3.75f64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let back = from_wire::<f64>(&to_wire(&weird));
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn compounds_roundtrip() {
        roundtrip((1u64, 2.5f64));
        roundtrip((1u64, [0.5f64, -0.25], 7u32));
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(Some(vec![(4u64, 9u32)]));
        roundtrip(None::<u64>);
        roundtrip(String::from("rank-7"));
        roundtrip([1u64, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_payload_panics() {
        let bytes = to_wire(&12345u64);
        let _ = from_wire::<u64>(&bytes[..4]);
    }

    #[test]
    #[should_panic(expected = "trailing")]
    fn trailing_bytes_panic() {
        let mut bytes = to_wire(&1u32);
        bytes.push(0);
        let _ = from_wire::<u32>(&bytes);
    }

    #[test]
    #[should_panic(expected = "exceeds payload")]
    fn corrupt_vec_length_panics() {
        let mut bytes = Vec::new();
        (u64::MAX).wire_write(&mut bytes);
        let _ = from_wire::<Vec<u64>>(&bytes);
    }
}
