//! Lockstep validation of collective call sequences: [`CheckedComm`].
//!
//! The SPMD contract (see [`Comm`]) says every rank issues the same
//! collectives in the same order with compatible arguments. When code
//! breaks that contract, today's failure modes are terrible: the thread
//! backend deadlocks (a rank waits at a barrier its peer never reaches)
//! and the process backend panics with a frame-desync error at whichever
//! rank happens to read the mismatched frame first. [`CheckedComm`] turns
//! call-sequence divergence into a typed [`ProtocolError`] naming the
//! diverging ranks, raised on **every** rank at the first diverging call,
//! on both backends.
//!
//! Mechanism: before forwarding a collective to the inner communicator,
//! every rank contributes its call signature `(call counter, collective
//! kind, detail)` to a digest allgather **on the inner comm**. The digest
//! is the same wire operation regardless of which user-level collective
//! the rank was about to issue, so the side channel itself stays aligned
//! even when the user calls diverge; every rank then holds the full
//! signature table and, on mismatch, panics with the same
//! [`ProtocolError`] simultaneously — no rank is left blocked. The
//! `detail` slot carries what must agree per collective: element count
//! for the typed reductions (a length mismatch would otherwise silently
//! zip-truncate), the root for broadcast, the fan-out for alltoallv.
//!
//! Cost: one extra small allgather per collective — fine for tests and
//! debugging sessions ([`run_spmd_checked`] / [`run_spmd_proc_checked`]),
//! not for the bench hot path. What the digest cannot catch: a rank that
//! simply *stops* calling collectives (returns early) — that remains the
//! backends' liveness problem (EOF detection / the parent deadline on
//! processes, barrier poisoning on threads — DESIGN.md §10).

use std::cell::{Cell, RefCell};

use crate::proc::{run_spmd_proc, ProcComm, ProcError};
use crate::stats::CommStats;
use crate::thread::{run_spmd, ThreadComm};
use crate::wire::{Wire, WireCursor};
use crate::Comm;

/// Which checked collective a rank entered. Ids are wire-stable, and each
/// allreduce *variant* is distinct: a sum-vs-max divergence would not
/// hang (the wire traffic is identical), it would silently disagree —
/// exactly the kind of bug a lockstep check exists to surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum CheckedCall {
    Barrier = 1,
    Allgather = 2,
    Alltoallv = 3,
    Allreduce = 4,
    AllreduceSumF64 = 5,
    AllreduceMaxF64 = 6,
    AllreduceMinF64 = 7,
    AllreduceSumU64 = 8,
    ExscanSumU64 = 9,
    Broadcast = 10,
}

/// Human-readable name for a wire call id: the exact [`Comm`] method
/// name. Used for [`ProtocolError`] display and by the static-protocol
/// refinement test to compare a runtime trace against `geo-analyze`'s
/// collective-kind alphabet.
pub fn call_name(id: u64) -> &'static str {
    match id {
        1 => "barrier",
        2 => "allgather",
        3 => "alltoallv",
        4 => "allreduce",
        5 => "allreduce_sum_f64",
        6 => "allreduce_max_f64",
        7 => "allreduce_min_f64",
        8 => "allreduce_sum_u64",
        9 => "exscan_sum_u64",
        10 => "broadcast",
        _ => "unknown-collective",
    }
}

/// A lockstep check failed: at call index [`ProtocolError::seq`], the
/// ranks did not all issue the same collective with compatible arguments.
///
/// On the thread backend this is the panic payload re-propagated by
/// [`run_spmd`] (downcast it from `catch_unwind`'s error); on the process
/// backend it crosses the control socket typed and surfaces as
/// [`ProcError::Protocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Per-rank collective call counter at which the divergence occurred
    /// (0 = the first checked collective of the job).
    pub seq: u64,
    /// Ranks whose signature disagrees with the majority (ties resolved
    /// toward the lowest-ranked signature, so at p = 2 rank 0 is the
    /// reference). Identical on every rank.
    pub diverging: Vec<usize>,
    /// Per-rank `(call id, detail)` signatures at the diverging index —
    /// `calls[r]` is what rank `r` issued.
    pub calls: Vec<(u64, u64)>,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPMD collective call #{} diverged across ranks (diverging: {:?}): ",
            self.seq, self.diverging
        )?;
        for (r, (call, detail)) in self.calls.iter().enumerate() {
            if r > 0 {
                write!(f, ", ")?;
            }
            write!(f, "rank {r}: {}({detail})", call_name(*call))?;
        }
        Ok(())
    }
}

impl std::error::Error for ProtocolError {}

impl Wire for ProtocolError {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.seq.wire_write(out);
        self.diverging.wire_write(out);
        self.calls.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        ProtocolError {
            seq: u64::wire_read(r),
            diverging: Vec::<usize>::wire_read(r),
            calls: Vec::<(u64, u64)>::wire_read(r),
        }
    }
}

/// A [`Comm`] wrapper that lockstep-validates every collective call
/// across ranks before forwarding it to the inner communicator. Wrap each
/// rank's communicator ([`CheckedComm::new`]), or use the
/// [`run_spmd_checked`] / [`run_spmd_proc_checked`] entry points.
#[derive(Debug)]
pub struct CheckedComm<C: Comm> {
    inner: C,
    /// Count of checked collectives issued by this rank.
    calls: Cell<u64>,
    /// Call-id trace of every checked collective, in issue order (the
    /// runtime side of the static-protocol refinement contract).
    trace: RefCell<Vec<u64>>,
}

impl<C: Comm> CheckedComm<C> {
    /// Wrap `inner`; every rank of the job must wrap (the digest is
    /// itself a collective).
    pub fn new(inner: C) -> Self {
        CheckedComm { inner, calls: Cell::new(0), trace: RefCell::new(Vec::new()) }
    }

    /// The wire call ids ([`CheckedCall`] values) of every collective this
    /// rank has issued so far, in order. Map through [`call_name`] to get
    /// the collective-kind sequence `geo-analyze protocol` summarizes.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.trace.borrow().clone()
    }

    /// The wrapped communicator (e.g. for backend-specific calls like
    /// [`ProcComm::probe_exchange`]).
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Exchange call signatures and fail every rank on divergence.
    fn check(&self, call: CheckedCall, detail: u64) {
        let seq = self.calls.get();
        self.calls.set(seq + 1);
        self.trace.borrow_mut().push(call as u64);
        let sig = (seq, call as u64, detail);
        let table = self.inner.allgather(vec![sig]);
        let sigs: Vec<(u64, u64, u64)> = table.iter().map(|row| row[0]).collect();
        if sigs.iter().all(|s| *s == sigs[0]) {
            return;
        }
        // Majority signature is the reference; ties resolve to the
        // lowest rank's, so every rank computes the identical verdict
        // from the identical table.
        let mut best = sigs[0];
        let mut best_count = 0usize;
        for cand in &sigs {
            let count = sigs.iter().filter(|s| *s == cand).count();
            if count > best_count {
                best = *cand;
                best_count = count;
            }
        }
        let diverging: Vec<usize> =
            sigs.iter().enumerate().filter(|(_, s)| **s != best).map(|(r, _)| r).collect();
        let err = ProtocolError {
            seq,
            diverging,
            calls: sigs.iter().map(|&(_, call, detail)| (call, detail)).collect(),
        };
        // Raised on every rank at once: the thread runner re-propagates
        // the typed payload, the process runner forwards it over the
        // control socket as a PROTOCOL frame.
        std::panic::panic_any(err);
    }
}

impl<C: Comm> Comm for CheckedComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn barrier(&self) {
        self.check(CheckedCall::Barrier, 0);
        self.inner.barrier();
    }

    fn allgather<T: Wire>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        // Per-rank element counts legitimately differ here: detail 0.
        self.check(CheckedCall::Allgather, 0);
        self.inner.allgather(local)
    }

    fn alltoallv<T: Wire>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.check(CheckedCall::Alltoallv, sends.len() as u64);
        self.inner.alltoallv(sends)
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn allreduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        self.check(CheckedCall::Allreduce, 0);
        self.inner.allreduce(value, combine)
    }

    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        // The element count is part of the contract: mismatched lengths
        // would silently zip-truncate in the butterfly's combine.
        self.check(CheckedCall::AllreduceSumF64, buf.len() as u64);
        self.inner.allreduce_sum_f64(buf);
    }

    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        self.check(CheckedCall::AllreduceMaxF64, buf.len() as u64);
        self.inner.allreduce_max_f64(buf);
    }

    fn allreduce_min_f64(&self, buf: &mut [f64]) {
        self.check(CheckedCall::AllreduceMinF64, buf.len() as u64);
        self.inner.allreduce_min_f64(buf);
    }

    fn allreduce_sum_u64(&self, buf: &mut [u64]) {
        self.check(CheckedCall::AllreduceSumU64, buf.len() as u64);
        self.inner.allreduce_sum_u64(buf);
    }

    fn exscan_sum_u64(&self, value: u64) -> u64 {
        self.check(CheckedCall::ExscanSumU64, 0);
        self.inner.exscan_sum_u64(value)
    }

    fn broadcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        self.check(CheckedCall::Broadcast, root as u64);
        self.inner.broadcast(root, value)
    }
}

/// [`run_spmd`] with every rank's communicator wrapped in a
/// [`CheckedComm`]: the debug/test entry point. A diverging call sequence
/// panics the job with a [`ProtocolError`] payload instead of hanging.
pub fn run_spmd_checked<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(CheckedComm<ThreadComm>) -> R + Sync,
{
    run_spmd(p, move |c| f(CheckedComm::new(c)))
}

/// [`run_spmd_proc`] with every rank's communicator wrapped in a
/// [`CheckedComm`]: a diverging call sequence fails the job with
/// [`ProcError::Protocol`] instead of a frame desync or a timeout.
pub fn run_spmd_proc_checked<R, F>(p: usize, f: F) -> Result<Vec<R>, ProcError>
where
    R: Wire,
    F: Fn(CheckedComm<ProcComm>) -> R,
{
    run_spmd_proc(p, move |c| f(CheckedComm::new(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{from_wire, to_wire};

    #[test]
    fn protocol_error_roundtrips_on_the_wire() {
        let e = ProtocolError { seq: 7, diverging: vec![1, 3], calls: vec![(1, 0), (5, 4)] };
        assert_eq!(from_wire::<ProtocolError>(&to_wire(&e)), e);
        let msg = e.to_string();
        assert!(msg.contains("call #7") && msg.contains("barrier(0)"), "{msg}");
        assert!(msg.contains("allreduce_sum_f64(4)"), "{msg}");
    }

    #[test]
    fn checked_comm_is_transparent_for_conforming_programs() {
        let checked = run_spmd_checked(4, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut buf);
            let ex = c.exscan_sum_u64(c.rank() as u64);
            let bc = c.broadcast(2, (c.rank() == 2).then_some(9u64));
            c.barrier();
            let all = c.allgather(vec![c.rank() as u64; c.rank() + 1]);
            (buf, ex, bc, all.len())
        });
        let plain = run_spmd(4, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut buf);
            let ex = c.exscan_sum_u64(c.rank() as u64);
            let bc = c.broadcast(2, (c.rank() == 2).then_some(9u64));
            c.barrier();
            let all = c.allgather(vec![c.rank() as u64; c.rank() + 1]);
            (buf, ex, bc, all.len())
        });
        assert_eq!(checked, plain);
    }

    #[test]
    fn mismatched_collective_kind_is_a_typed_error_on_threads() {
        let err = std::panic::catch_unwind(|| {
            run_spmd_checked(3, |c| {
                if c.rank() == 1 {
                    c.barrier();
                } else {
                    let mut buf = vec![1.0, 2.0];
                    c.allreduce_sum_f64(&mut buf);
                }
                0u64
            })
        })
        .expect_err("diverging job must fail");
        let e = err.downcast_ref::<ProtocolError>().expect("typed ProtocolError payload");
        assert_eq!(e.seq, 0);
        assert_eq!(e.diverging, vec![1]);
        assert_eq!(e.calls[1].0, CheckedCall::Barrier as u64);
        assert_eq!(e.calls[0], (CheckedCall::AllreduceSumF64 as u64, 2));
    }

    #[test]
    fn mismatched_element_count_is_detected_not_truncated() {
        let err = std::panic::catch_unwind(|| {
            run_spmd_checked(3, |c| {
                // Rank 0 brings a short buffer: same collective, wrong m.
                let m = if c.rank() == 0 { 3 } else { 4 };
                let mut buf = vec![1.0f64; m];
                c.allreduce_sum_f64(&mut buf);
                buf.len()
            })
        })
        .expect_err("length divergence must fail");
        let e = err.downcast_ref::<ProtocolError>().expect("typed ProtocolError payload");
        assert_eq!(e.diverging, vec![0]);
        assert_eq!(e.calls[0], (CheckedCall::AllreduceSumF64 as u64, 3));
        assert_eq!(e.calls[1], (CheckedCall::AllreduceSumF64 as u64, 4));
    }

    #[test]
    fn divergence_after_agreeing_prefix_reports_the_right_call_index() {
        let err = std::panic::catch_unwind(|| {
            run_spmd_checked(2, |c| {
                c.barrier();
                let _ = c.exscan_sum_u64(1);
                // Call #2 diverges: different broadcast roots.
                let root = c.rank();
                let _ = c.broadcast(root, Some(1u64));
                0u64
            })
        })
        .expect_err("root divergence must fail");
        let e = err.downcast_ref::<ProtocolError>().expect("typed ProtocolError payload");
        assert_eq!(e.seq, 2);
        assert_eq!(e.diverging, vec![1], "lowest rank is the tie reference at p=2");
        assert_eq!(e.calls[0], (CheckedCall::Broadcast as u64, 0));
        assert_eq!(e.calls[1], (CheckedCall::Broadcast as u64, 1));
    }
}
