//! Processes-as-ranks communicator: the real-wires SPMD backend.
//!
//! [`run_spmd_proc`] forks `p` worker **OS processes** and runs the same
//! closure on all of them, exactly like [`run_spmd`](crate::run_spmd) does
//! with threads — except nothing is shared: every collective payload
//! crosses a process boundary through Unix-domain sockets, so the α–β
//! numbers the substrate reports can be *measured* against real kernel
//! round-trips instead of modeled from counters alone.
//!
//! The substrate has three layers:
//!
//! * **Rendezvous** — the parent forks workers that meet in a private
//!   socket directory: each rank binds its own listener, dials every
//!   lower rank (with retry until the peer has bound), and both sides
//!   exchange a `HELLO` frame carrying the rank id and a per-job token,
//!   yielding a full mesh of per-peer streams. A control socketpair per
//!   rank (created before the fork) carries the final result or panic
//!   back to the parent.
//! * **Framing** — every message is `[magic, kind, seq, len]` +
//!   payload. `kind` is the collective, `seq` a per-communicator call
//!   counter: because SPMD ranks issue collectives in identical order, a
//!   mismatch means the streams desynchronized and the worker fails loudly
//!   instead of deserializing garbage. Payloads are [`Wire`]-encoded.
//! * **Collectives** — the *same algorithms* as
//!   [`ThreadComm`](crate::ThreadComm): recursive-doubling (butterfly)
//!   reductions with the identical rank-ordered combine tree, the
//!   Hillis–Steele exscan, root-sends broadcast, and ring
//!   allgather/alltoallv. Reduction trees being identical makes results
//!   **bitwise-equal** to the thread backend at the same `p`, which is
//!   what the cross-backend conformance suite pins.
//!
//! Failure semantics (the part a shared-memory simulation cannot give
//! you): a rank that panics reports through its control socket and exits;
//! a rank that *dies* (kill -9, `process::exit`) just disappears — its
//! sockets close, peers' blocking reads return EOF, and they panic with a
//! "peer hung up" error that propagates the failure instead of hanging
//! the job. The parent additionally enforces a deadline
//! (`GEO_PROC_TIMEOUT_SECS`, default 120 s) and SIGKILLs stragglers, so a
//! genuinely hung worker also becomes a clean [`ProcError`].
//!
//! Deadlock avoidance on the wire: frames at or below [`EAGER_MAX`] bytes
//! are written eagerly (they fit the socket buffer, so the write cannot
//! block) and read afterwards; larger pairwise exchanges fall back to a
//! rank-ordered rendezvous (lower rank writes first while the higher rank
//! drains), and larger ring steps overlap the write on a scoped thread —
//! the same eager/rendezvous split real MPI implementations use.
//!
//! Unlike `ThreadComm`, a process cannot read its peers' counters without
//! more communication, so [`ProcComm::stats`] reports *this rank's* view
//! (`ranks = 1`): `bytes_per_rank()` is then exactly this rank's received
//! volume — the quantity the α–β model multiplies by β — and `rounds`
//! are identical on every rank by the SPMD contract.

#![cfg(unix)]

use std::cell::Cell;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

use crate::stats::{Collective, CommStats, StatsCell};
use crate::wire::{from_wire, to_wire, Wire};
use crate::Comm;

/// Largest frame payload written eagerly (before reading): must stay
/// comfortably under the kernel's default Unix-socket buffer so an eager
/// write can never block against an un-drained peer.
const EAGER_MAX: usize = 64 * 1024;

/// Seconds a job may run before the parent kills the workers
/// (override with `GEO_PROC_TIMEOUT_SECS`).
const DEFAULT_TIMEOUT_SECS: f64 = 120.0;

/// Seconds the mesh rendezvous may take before a worker gives up.
const RENDEZVOUS_TIMEOUT_SECS: f64 = 20.0;

/// Raw process primitives, declared directly against the platform libc
/// that std already links (the workspace builds offline; no `libc` crate).
mod sys {
    extern "C" {
        pub fn fork() -> i32;
        pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        pub fn kill(pid: i32, sig: i32) -> i32;
    }

    pub const SIGKILL: i32 = 9;

    /// Decode a `waitpid` status into a human-readable failure, or `None`
    /// for a clean zero exit.
    pub fn failure_of(status: i32) -> Option<String> {
        if status & 0x7f == 0 {
            let code = (status >> 8) & 0xff;
            (code != 0).then(|| format!("exited with code {code}"))
        } else {
            Some(format!("killed by signal {}", status & 0x7f))
        }
    }
}

/// Why a multi-process SPMD job failed.
#[derive(Debug)]
pub enum ProcError {
    /// The workers could not be spawned or the rendezvous directory could
    /// not be set up.
    Spawn(io::Error),
    /// A rank died, panicked, or broke the protocol; `detail` carries the
    /// panic message or exit status.
    RankFailed {
        /// The failing rank.
        rank: usize,
        /// Panic message, exit status, or protocol violation.
        detail: String,
    },
    /// A rank did not report a result before the job deadline and was
    /// killed.
    Timeout {
        /// The first rank that missed the deadline.
        rank: usize,
        /// The deadline that was enforced.
        seconds: f64,
    },
    /// A [`crate::CheckedComm`] lockstep check failed: the ranks diverged
    /// from the single SPMD call sequence (different collective, element
    /// count, or root). Carries the typed report instead of the frame
    /// desync / timeout the divergence would otherwise decay into.
    Protocol {
        /// The first rank whose report reached the parent.
        rank: usize,
        /// The structured divergence report (identical on every rank).
        error: crate::checked::ProtocolError,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Spawn(e) => write!(f, "failed to spawn SPMD workers: {e}"),
            ProcError::RankFailed { rank, detail } => {
                write!(f, "SPMD rank {rank} failed: {detail}")
            }
            ProcError::Timeout { rank, seconds } => {
                write!(f, "SPMD rank {rank} missed the {seconds}s job deadline and was killed")
            }
            ProcError::Protocol { rank, error } => {
                write!(f, "SPMD rank {rank} reported a protocol violation: {error}")
            }
        }
    }
}

impl std::error::Error for ProcError {}

/// Frame kinds on the wire (one byte).
mod kind {
    pub const HELLO: u8 = 1;
    pub const BARRIER: u8 = 2;
    pub const ALLGATHER: u8 = 3;
    pub const ALLREDUCE: u8 = 4;
    pub const BROADCAST: u8 = 5;
    pub const EXSCAN: u8 = 6;
    pub const ALLTOALLV: u8 = 7;
    pub const PROBE: u8 = 8;
    pub const RESULT: u8 = 9;
    pub const PANIC: u8 = 10;
    /// A worker's `CheckedComm` lockstep check failed: the payload is a
    /// wire-encoded [`crate::checked::ProtocolError`], not a panic string.
    pub const PROTOCOL: u8 = 11;
}

/// Length-prefixed framing over a stream: `[magic u32][kind u8][pad ×3]
/// [seq u64][len u64]` followed by `len` payload bytes.
mod frame {
    use super::*;

    const MAGIC: u32 = 0x47454F46; // "GEOF"
    pub const HEADER: usize = 24;
    /// Upper bound on a single frame payload (8 GiB): a corrupt length
    /// fails fast instead of attempting a matching allocation.
    const MAX_LEN: u64 = 1 << 33;

    pub fn write(stream: &UnixStream, kind: u8, seq: u64, payload: &[u8]) -> io::Result<()> {
        let mut head = [0u8; HEADER];
        head[..4].copy_from_slice(&MAGIC.to_le_bytes());
        head[4] = kind;
        head[8..16].copy_from_slice(&seq.to_le_bytes());
        head[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        let mut w = stream;
        if payload.len() <= EAGER_MAX {
            // One buffer, one write: eager frames must hit the socket in a
            // single syscall so the "cannot block" reasoning holds.
            let mut buf = Vec::with_capacity(HEADER + payload.len());
            buf.extend_from_slice(&head);
            buf.extend_from_slice(payload);
            w.write_all(&buf)
        } else {
            w.write_all(&head)?;
            w.write_all(payload)
        }
    }

    /// Little-endian u32 at byte `off` of a header. Infallible by
    /// construction: callers pass compile-time offsets inside the
    /// fixed-size `[u8; HEADER]`.
    pub fn field_u32(head: &[u8; HEADER], off: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&head[off..off + 4]);
        u32::from_le_bytes(b)
    }

    /// Little-endian u64 at byte `off` of a header.
    pub fn field_u64(head: &[u8; HEADER], off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&head[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Read one frame, requiring `kind` and `seq` to match what the SPMD
    /// call order predicts.
    pub fn read(stream: &UnixStream, kind: u8, seq: u64) -> io::Result<Vec<u8>> {
        let mut r = stream;
        let mut head = [0u8; HEADER];
        r.read_exact(&mut head)?;
        let magic = field_u32(&head, 0);
        let got_kind = head[4];
        let got_seq = field_u64(&head, 8);
        let len = field_u64(&head, 16);
        if magic != MAGIC || got_kind != kind || got_seq != seq || len > MAX_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame desync: got (magic {magic:#x}, kind {got_kind}, seq {got_seq}, \
                     len {len}), expected (kind {kind}, seq {seq})"
                ),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(payload)
    }
}

/// One rank's handle into a processes-as-ranks communicator: a full mesh
/// of per-peer Unix-domain streams plus this rank's counters.
#[derive(Debug)]
pub struct ProcComm {
    rank: usize,
    size: usize,
    /// `peers[s]` is the stream to rank `s` (`None` at `s == rank`).
    peers: Vec<Option<UnixStream>>,
    /// Collective call counter; stamped into every frame of a call.
    seq: Cell<u64>,
    stats: StatsCell,
}

impl ProcComm {
    /// Worker-side rendezvous: bind own listener, dial every lower rank,
    /// accept every higher rank, handshake with `HELLO{rank}` frames
    /// carrying the job token.
    fn connect(dir: &Path, rank: usize, size: usize, job: u64) -> io::Result<ProcComm> {
        let deadline = Instant::now() + Duration::from_secs_f64(RENDEZVOUS_TIMEOUT_SECS);
        let sock = |r: usize| dir.join(format!("r{r}.sock"));
        let mut peers: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();
        let listener = UnixListener::bind(sock(rank))?;
        listener.set_nonblocking(true)?;
        // Dial lower ranks, retrying until the peer has bound its path.
        #[allow(clippy::needless_range_loop)] // `s` is a rank id, not just an index
        for s in 0..rank {
            let stream = loop {
                match UnixStream::connect(sock(s)) {
                    Ok(st) => break st,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                e.kind(),
                                format!("rank {rank}: rendezvous with rank {s} timed out: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            frame::write(&stream, kind::HELLO, job, &to_wire(&(rank as u64)))?;
            peers[s] = Some(stream);
        }
        // Accept higher ranks; the hello tells us which one dialed in.
        for _ in rank + 1..size {
            let stream = loop {
                match listener.accept() {
                    Ok((st, _)) => break st,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                format!("rank {rank}: rendezvous accept timed out"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(e),
                }
            };
            stream.set_nonblocking(false)?;
            stream.set_read_timeout(Some(deadline.saturating_duration_since(Instant::now())))?;
            let hello = frame::read(&stream, kind::HELLO, job)?;
            let s = from_wire::<u64>(&hello) as usize;
            if s <= rank || s >= size || peers[s].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rank {rank}: bogus hello from rank {s}"),
                ));
            }
            stream.set_read_timeout(None)?;
            peers[s] = Some(stream);
        }
        Ok(ProcComm { rank, size, peers, seq: Cell::new(0), stats: StatsCell::default() })
    }

    fn peer(&self, r: usize) -> &UnixStream {
        // Infallible — the mesh is full except s == rank, and no collective addresses self.
        self.peers[r].as_ref().unwrap_or_else(|| panic!("rank {} has no stream to {r}", self.rank))
    }

    /// Next collective sequence number (stamped into this call's frames).
    fn next_seq(&self) -> u64 {
        let s = self.seq.get() + 1;
        self.seq.set(s);
        s
    }

    fn record(&self, kindc: Collective, rounds: u64, received_bytes: u64) {
        self.stats.record(kindc, rounds, received_bytes);
    }

    fn send(&self, to: usize, k: u8, seq: u64, payload: &[u8]) {
        frame::write(self.peer(to), k, seq, payload).unwrap_or_else(|e| {
            // Deliberate fail-loud abort — a wire fault means a peer died; the parent reports a ProcError (DESIGN.md §10).
            panic!("rank {}: send to rank {to} failed (kind {k}, seq {seq}): {e}", self.rank)
        });
    }

    fn recv(&self, from: usize, k: u8, seq: u64) -> Vec<u8> {
        frame::read(self.peer(from), k, seq).unwrap_or_else(|e| {
            let why = if e.kind() == io::ErrorKind::UnexpectedEof {
                "peer hung up mid-collective (rank died?)".to_string()
            } else {
                e.to_string()
            };
            // Deliberate fail-loud abort — EOF here is the designed dead-peer signal; the parent reports a ProcError (DESIGN.md §10).
            panic!("rank {}: recv from rank {from} failed (kind {k}, seq {seq}): {why}", self.rank)
        })
    }

    /// Symmetric pairwise exchange with `peer` (both sides send
    /// same-kind frames). Eager for small payloads; rank-ordered
    /// write-then-read rendezvous for large ones, so neither side can
    /// block forever against a full socket buffer.
    fn exchange(&self, peer: usize, k: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
        if payload.len() <= EAGER_MAX || self.rank < peer {
            self.send(peer, k, seq, payload);
            self.recv(peer, k, seq)
        } else {
            let got = self.recv(peer, k, seq);
            self.send(peer, k, seq, payload);
            got
        }
    }

    /// Ring step: send `payload` to `to` while receiving from `from`
    /// (`to != from` in general). Large payloads overlap the write on a
    /// scoped thread because a ring of blocking writes can cycle.
    fn sendrecv(&self, to: usize, k: u8, seq: u64, payload: &[u8], from: usize) -> Vec<u8> {
        if payload.len() <= EAGER_MAX {
            self.send(to, k, seq, payload);
            self.recv(from, k, seq)
        } else {
            let to_stream = self.peer(to);
            let me = self.rank;
            std::thread::scope(|sc| {
                sc.spawn(move || {
                    frame::write(to_stream, k, seq, payload).unwrap_or_else(|e| {
                        // Deliberate fail-loud abort — same dead-peer policy as send() (DESIGN.md §10).
                        panic!("rank {me}: send to rank {to} failed (kind {k}, seq {seq}): {e}")
                    });
                });
                self.recv(from, k, seq)
            })
        }
    }

    /// Recursive-doubling butterfly with the **identical** fold/unfold
    /// schedule and rank-ordered combine tree as
    /// [`ThreadComm`](crate::ThreadComm) — see `thread.rs` — so reductions
    /// are bitwise-equal across backends at the same `p`.
    fn butterfly<T, F>(&self, kindc: Collective, k: u8, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        let p = self.size;
        if p == 1 {
            self.record(kindc, 0, 0);
            return value;
        }
        let seq = self.next_seq();
        let r = self.rank;
        let q = prev_power_of_two(p);
        let extra = p - q;
        let log_q = q.trailing_zeros() as u64;
        let rounds = log_q + if extra > 0 { 2 } else { 0 };
        let mut received = 0u64;
        let mut acc = value;

        // Fold step: ranks q..p send their contribution to rank r−q.
        if extra > 0 {
            if r >= q {
                self.send(r - q, k, seq, &to_wire(&acc));
            } else if r < extra {
                let bytes = self.recv(r + q, k, seq);
                received += bytes.len() as u64;
                let theirs = from_wire::<T>(&bytes);
                acc = combine(acc, theirs);
            }
        }

        // Butterfly among ranks 0..q.
        let mut gap = 1;
        while gap < q {
            if r < q {
                let partner = r ^ gap;
                let bytes = self.exchange(partner, k, seq, &to_wire(&acc));
                received += bytes.len() as u64;
                let theirs = from_wire::<T>(&bytes);
                acc = if partner < r { combine(theirs, acc) } else { combine(acc, theirs) };
            }
            gap <<= 1;
        }

        // Unfold step: ranks 0..extra hand the result back to r+q.
        if extra > 0 {
            if r < extra {
                self.send(r + q, k, seq, &to_wire(&acc));
            } else if r >= q {
                let bytes = self.recv(r - q, k, seq);
                received += bytes.len() as u64;
                acc = from_wire::<T>(&bytes);
            }
        }
        self.record(kindc, rounds, received);
        acc
    }

    /// Element-wise butterfly reduction of a slice, in place.
    fn butterfly_slice<T, F>(&self, kindc: Collective, k: u8, buf: &mut [T], op: F)
    where
        T: Wire + Copy,
        F: Fn(T, T) -> T,
    {
        let out = self.butterfly(kindc, k, buf.to_vec(), |mut lower, higher| {
            for (x, t) in lower.iter_mut().zip(higher) {
                *x = op(*x, t);
            }
            lower
        });
        buf.copy_from_slice(&out);
    }

    /// Raw pairwise exchange with rank `rank ^ 1`, outside the collective
    /// bookkeeping: the calibration probe [`measure_alpha_beta`] uses this
    /// to time exactly one frame each way with no serialization overhead.
    pub fn probe_exchange(&self, payload: &[u8]) -> Vec<u8> {
        assert!(self.size >= 2, "probe needs a partner rank");
        let partner = self.rank ^ 1;
        let seq = self.next_seq();
        self.exchange(partner, kind::PROBE, seq, payload)
    }
}

/// Largest power of two `≤ n` (`n ≥ 1`).
fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

impl Comm for ProcComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn barrier(&self) {
        // Dissemination barrier: ⌈log₂ p⌉ rounds of 0-byte frames; rank r
        // talks to r±gap for doubling gaps. Like ThreadComm's barrier it
        // records no stats.
        let p = self.size;
        if p == 1 {
            return;
        }
        let seq = self.next_seq();
        let mut gap = 1;
        while gap < p {
            let to = (self.rank + gap) % p;
            let from = (self.rank + p - gap) % p;
            let _ = self.sendrecv(to, kind::BARRIER, seq, &[], from);
            gap <<= 1;
        }
    }

    fn allgather<T: Wire>(&self, local: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size;
        if p == 1 {
            self.record(Collective::Allgather, 0, 0);
            return vec![local];
        }
        let seq = self.next_seq();
        let bytes = to_wire(&local);
        let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        out[self.rank] = Some(local);
        let mut received = 0u64;
        // Ring: step d sends own vector to r+d and receives rank (r−d)'s.
        for d in 1..p {
            let to = (self.rank + d) % p;
            let from = (self.rank + p - d) % p;
            let got = self.sendrecv(to, kind::ALLGATHER, seq, &bytes, from);
            received += got.len() as u64;
            out[from] = Some(from_wire::<Vec<T>>(&got));
        }
        // p−1 transfer steps: the wire really does p−1 serialized rounds
        // where the shared-memory backend deposits once (1 round).
        self.record(Collective::Allgather, (p - 1) as u64, received);
        // geo-analyze: allow(panic-in-spmd): infallible — the d-loop visits every from-rank exactly once.
        out.into_iter().map(|v| v.expect("ring filled every slot")).collect()
    }

    fn alltoallv<T: Wire>(&self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size;
        assert_eq!(sends.len(), p, "one send buffer per rank");
        if p == 1 {
            self.record(Collective::Alltoallv, 0, 0);
            return sends;
        }
        let seq = self.next_seq();
        let mut sends = sends;
        let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        out[self.rank] = Some(std::mem::take(&mut sends[self.rank]));
        let mut received = 0u64;
        for d in 1..p {
            let to = (self.rank + d) % p;
            let from = (self.rank + p - d) % p;
            let payload = to_wire(&sends[to]);
            let got = self.sendrecv(to, kind::ALLTOALLV, seq, &payload, from);
            received += got.len() as u64;
            out[from] = Some(from_wire::<Vec<T>>(&got));
        }
        self.record(Collective::Alltoallv, (p - 1) as u64, received);
        // geo-analyze: allow(panic-in-spmd): infallible — the d-loop visits every from-rank exactly once.
        out.into_iter().map(|v| v.expect("ring filled every slot")).collect()
    }

    fn allreduce<T, F>(&self, value: T, combine: F) -> T
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        self.butterfly(Collective::Allreduce, kind::ALLREDUCE, value, combine)
    }

    fn allreduce_sum_f64(&self, buf: &mut [f64]) {
        self.butterfly_slice(Collective::Allreduce, kind::ALLREDUCE, buf, |a, b| a + b);
    }

    fn allreduce_max_f64(&self, buf: &mut [f64]) {
        self.butterfly_slice(Collective::Allreduce, kind::ALLREDUCE, buf, f64::max);
    }

    fn allreduce_min_f64(&self, buf: &mut [f64]) {
        self.butterfly_slice(Collective::Allreduce, kind::ALLREDUCE, buf, f64::min);
    }

    fn allreduce_sum_u64(&self, buf: &mut [u64]) {
        self.butterfly_slice(Collective::Allreduce, kind::ALLREDUCE, buf, |a, b| {
            a.wrapping_add(b)
        });
    }

    fn exscan_sum_u64(&self, value: u64) -> u64 {
        // Hillis–Steele distributed scan, identical round structure and
        // accumulation order to ThreadComm's.
        let p = self.size;
        if p == 1 {
            self.record(Collective::Exscan, 0, 0);
            return 0;
        }
        let seq = self.next_seq();
        let r = self.rank;
        let rounds = usize::BITS as u64 - (p - 1).leading_zeros() as u64;
        let mut received = 0u64;
        let mut exclusive = 0u64;
        let mut inclusive = value;
        let mut gap = 1;
        while gap < p {
            // Downstream send first (the sends form a DAG toward higher
            // ranks, so blocking writes cannot cycle), then receive.
            if r + gap < p {
                self.send(r + gap, kind::EXSCAN, seq, &to_wire(&inclusive));
            }
            if r >= gap {
                let bytes = self.recv(r - gap, kind::EXSCAN, seq);
                received += bytes.len() as u64;
                let theirs = from_wire::<u64>(&bytes);
                exclusive += theirs;
                inclusive += theirs;
            }
            gap <<= 1;
        }
        self.record(Collective::Exscan, rounds, received);
        exclusive
    }

    fn broadcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        debug_assert!(root < self.size);
        if self.size == 1 {
            self.record(Collective::Broadcast, 0, 0);
            // geo-analyze: allow(panic-in-spmd): fail-loud API-contract check — the root must supply a value; a silent default would broadcast garbage.
            return value.expect("root must supply a value");
        }
        let seq = self.next_seq();
        if self.rank == root {
            // geo-analyze: allow(panic-in-spmd): fail-loud API-contract check — the root must supply a value; a silent default would broadcast garbage.
            let v = value.expect("root must supply a value");
            let bytes = to_wire(&v);
            for s in 0..self.size {
                if s != root {
                    self.send(s, kind::BROADCAST, seq, &bytes);
                }
            }
            self.record(Collective::Broadcast, 1, 0);
            v
        } else {
            let bytes = self.recv(root, kind::BROADCAST, seq);
            self.record(Collective::Broadcast, 1, bytes.len() as u64);
            from_wire::<T>(&bytes)
        }
    }

    /// This rank's counters, as a per-rank view (`ranks = 1`): a process
    /// cannot observe its peers' cells without extra communication, and
    /// the per-rank received volume is exactly what the β term of the
    /// cost model needs.
    fn stats(&self) -> CommStats {
        CommStats::aggregate(1, std::slice::from_ref(&self.stats))
    }
}

/// Monotone job counter, so concurrent/nested jobs in one process get
/// distinct rendezvous directories.
static JOB_COUNTER: AtomicU64 = AtomicU64::new(0);

fn job_timeout() -> f64 {
    std::env::var("GEO_PROC_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(DEFAULT_TIMEOUT_SECS)
}

/// Worker body after the fork: rendezvous, run `f`, report the result (or
/// the panic message) over the control socket, and exit without returning
/// into the caller's stack.
fn child_main<R, F>(ctrl: UnixStream, dir: PathBuf, rank: usize, size: usize, job: u64, f: F) -> !
where
    R: Wire,
    F: Fn(ProcComm) -> R,
{
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let comm = ProcComm::connect(&dir, rank, size, job)
            // Deliberate fail-loud abort — caught by this catch_unwind and reported to the parent as a PANIC frame.
            .unwrap_or_else(|e| panic!("rank {rank}: rendezvous failed: {e}"));
        f(comm)
    }));
    let code = match outcome {
        Ok(v) => {
            let _ = frame::write(&ctrl, kind::RESULT, job, &to_wire(&v));
            0
        }
        Err(payload) => {
            // A CheckedComm lockstep report crosses the control socket
            // typed, not flattened to a panic string.
            if let Some(pe) = payload.downcast_ref::<crate::checked::ProtocolError>() {
                let _ = frame::write(&ctrl, kind::PROTOCOL, job, &to_wire(pe));
                102
            } else {
                let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s
                } else {
                    "worker panicked (non-string payload)"
                };
                let _ = frame::write(&ctrl, kind::PANIC, job, msg.as_bytes());
                101
            }
        }
    };
    std::process::exit(code)
}

/// Run `f` as an SPMD program on `p` ranks, each a forked **worker
/// process**, and return the per-rank results indexed by rank.
///
/// The closure is inherited through `fork`, so like [`run_spmd`]
/// (crate::run_spmd) it can capture arbitrary borrowed data — but all
/// rank-to-rank communication goes over Unix-domain sockets and the
/// result crosses back to the parent [`Wire`]-encoded. Any rank that
/// panics, dies, or hangs turns into an `Err` here instead of a deadlock:
/// peers of a dead rank fail on EOF, and the parent SIGKILLs the job at
/// the `GEO_PROC_TIMEOUT_SECS` deadline (default 120 s).
pub fn run_spmd_proc<R, F>(p: usize, f: F) -> Result<Vec<R>, ProcError>
where
    R: Wire,
    F: Fn(ProcComm) -> R,
{
    assert!(p > 0, "communicator needs at least one rank");
    let job = JOB_COUNTER.fetch_add(1, Ordering::Relaxed);
    let token = {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        (std::process::id() as u64) << 32 ^ job << 8 ^ nanos
    };
    let dir = std::env::temp_dir().join(format!("geo-spmd-{}-{job}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(ProcError::Spawn)?;

    let mut parents: Vec<UnixStream> = Vec::with_capacity(p);
    let mut pids: Vec<i32> = Vec::with_capacity(p);
    let kill_all = |pids: &[i32]| {
        for &pid in pids {
            // SAFETY: plain kill(2) on a pid this parent forked and has
            // not yet reaped; on an already-dead pid it is a harmless
            // ESRCH. No memory is touched.
            unsafe {
                sys::kill(pid, sys::SIGKILL);
            }
        }
        for &pid in pids {
            let mut status = 0i32;
            // SAFETY: waitpid(2) on a child of this process; the status
            // out-pointer refers to a live i32 on this stack frame.
            unsafe {
                sys::waitpid(pid, &mut status, 0);
            }
        }
    };
    for rank in 0..p {
        let (pa, ch) = match UnixStream::pair() {
            Ok(pair) => pair,
            Err(e) => {
                kill_all(&pids);
                let _ = std::fs::remove_dir_all(&dir);
                return Err(ProcError::Spawn(e));
            }
        };
        // SAFETY: direct fork(2). The child never returns into the
        // caller's stack: it drops the inherited parent-side endpoints
        // and diverges into `child_main`, which ends in process::exit —
        // so no foreign Drop impls or locks from the parent run in the
        // child, and the parent side only inspects the returned pid.
        let pid = unsafe { sys::fork() };
        if pid < 0 {
            kill_all(&pids);
            let _ = std::fs::remove_dir_all(&dir);
            return Err(ProcError::Spawn(io::Error::last_os_error()));
        }
        if pid == 0 {
            // Worker: close the inherited parent-side endpoints of ranks
            // forked before us, keep only our child end, and never return.
            drop(std::mem::take(&mut parents));
            drop(pa);
            child_main(ch, dir, rank, p, token, f)
        }
        parents.push(pa);
        drop(ch);
        pids.push(pid);
    }

    // Collect one result or panic frame per rank, under a job deadline.
    let timeout = job_timeout();
    let deadline = Instant::now() + Duration::from_secs_f64(timeout);
    let mut failure: Option<ProcError> = None;
    let mut payloads: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
    for (rank, ctrl) in parents.iter().enumerate() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            failure.get_or_insert(ProcError::Timeout { rank, seconds: timeout });
            continue;
        }
        // `set_read_timeout` rejects a zero duration; remaining > 0 here.
        if ctrl.set_read_timeout(Some(remaining)).is_err() {
            failure.get_or_insert(ProcError::RankFailed {
                rank,
                detail: "control socket unusable".into(),
            });
            continue;
        }
        let mut head = [0u8; frame::HEADER];
        let outcome = (&mut (&*ctrl)).read_exact(&mut head).and_then(|()| {
            let k = head[4];
            let len = frame::field_u64(&head, 16) as usize;
            let mut payload = vec![0u8; len];
            (&mut (&*ctrl)).read_exact(&mut payload)?;
            Ok((k, payload))
        });
        match outcome {
            Ok((k, payload)) if k == kind::RESULT => payloads[rank] = Some(payload),
            Ok((k, payload)) if k == kind::PANIC => {
                failure.get_or_insert(ProcError::RankFailed {
                    rank,
                    detail: String::from_utf8_lossy(&payload).into_owned(),
                });
            }
            Ok((k, payload)) if k == kind::PROTOCOL => {
                failure.get_or_insert(ProcError::Protocol { rank, error: from_wire(&payload) });
            }
            Ok((k, _)) => {
                failure.get_or_insert(ProcError::RankFailed {
                    rank,
                    detail: format!("protocol violation: unexpected frame kind {k}"),
                });
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                failure.get_or_insert(ProcError::Timeout { rank, seconds: timeout });
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                failure.get_or_insert(ProcError::RankFailed {
                    rank,
                    detail: "worker process died without reporting a result".into(),
                });
            }
            Err(e) => {
                failure.get_or_insert(ProcError::RankFailed { rank, detail: e.to_string() });
            }
        }
    }

    if failure.is_some() {
        // Stragglers may be blocked on a dead peer; put the job down hard.
        kill_all(&pids);
    } else {
        for (rank, &pid) in pids.iter().enumerate() {
            let mut status = 0i32;
            // SAFETY: waitpid(2) on a child this parent forked and has
            // not reaped; the status out-pointer is a live stack i32.
            let r = unsafe { sys::waitpid(pid, &mut status, 0) };
            if r == pid {
                if let Some(detail) = sys::failure_of(status) {
                    failure.get_or_insert(ProcError::RankFailed { rank, detail });
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(payloads
        .into_iter()
        // Infallible — reached only when `failure` is None, which requires a RESULT frame from every rank.
        .map(|b| from_wire::<R>(&b.expect("result frame present for every rank")))
        .collect())
}

/// Measured α–β constants of the process substrate, from wire-level
/// probes.
#[derive(Debug, Clone)]
pub struct MeasuredAlphaBeta {
    /// Seconds per synchronization round (one pairwise exchange):
    /// intercept of the probe line.
    pub alpha: f64,
    /// Seconds per payload byte received by a rank: slope of the probe
    /// line in the bandwidth-bound regime.
    pub beta: f64,
    /// Raw probe table: `(message bytes, seconds per exchange)`.
    pub samples: Vec<(u64, f64)>,
}

/// Measure α (per-round latency) and β (per-byte cost) of the real
/// socket substrate with a two-rank ping-pong and streaming probe:
/// `reps` timed pairwise exchanges at each message size; α comes from the
/// small-message plateau, β from the slope between the largest sizes.
pub fn measure_alpha_beta(reps: usize) -> Result<MeasuredAlphaBeta, ProcError> {
    assert!(reps >= 1);
    let sizes: [usize; 6] = [8, 1024, 8192, 65536, 262144, 1048576];
    let mut results = run_spmd_proc(2, |c| {
        let mut samples: Vec<(u64, f64)> = Vec::new();
        for &s in &sizes {
            let payload = vec![0u8; s];
            for _ in 0..3 {
                let _ = c.probe_exchange(&payload);
            }
            let t = Instant::now();
            for _ in 0..reps {
                let _ = c.probe_exchange(&payload);
            }
            samples.push((s as u64, t.elapsed().as_secs_f64() / reps as f64));
        }
        samples
    })?;
    let samples = results.remove(0);
    let (s_lo, t_lo) = samples[samples.len() - 2];
    let (s_hi, t_hi) = samples[samples.len() - 1];
    let beta = ((t_hi - t_lo) / (s_hi - s_lo) as f64).max(0.0);
    let alpha = samples
        .iter()
        .take(2)
        .map(|&(s, t)| (t - beta * s as f64).max(0.0))
        .sum::<f64>()
        / 2.0;
    Ok(MeasuredAlphaBeta { alpha, beta, samples })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_allreduce_sum_matches_serial() {
        let results = run_spmd_proc(4, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut buf);
            buf
        })
        .expect("job runs");
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn proc_collectives_match_thread_comm_bitwise() {
        // Same reduction tree ⇒ bitwise-identical non-associative sums,
        // power-of-two and non-power-of-two rank counts alike.
        for p in [2usize, 3, 5] {
            let thread = crate::run_spmd(p, |c| {
                let mut buf: Vec<f64> =
                    (0..9).map(|i| 0.1 * (c.rank() * 13 + i) as f64).collect();
                c.allreduce_sum_f64(&mut buf);
                (buf, c.exscan_sum_u64(c.rank() as u64 + 3))
            });
            let procs = run_spmd_proc(p, |c| {
                let mut buf: Vec<f64> =
                    (0..9).map(|i| 0.1 * (c.rank() * 13 + i) as f64).collect();
                c.allreduce_sum_f64(&mut buf);
                (buf, c.exscan_sum_u64(c.rank() as u64 + 3))
            })
            .expect("job runs");
            for (t, q) in thread.iter().zip(&procs) {
                assert_eq!(
                    t.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    q.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "p={p}: backends disagree bitwise"
                );
                assert_eq!(t.1, q.1, "p={p}: exscan disagrees");
            }
        }
    }

    #[test]
    fn proc_allgather_and_alltoallv_route_correctly() {
        let results = run_spmd_proc(4, |c| {
            let all = c.allgather(vec![c.rank() as u64; c.rank() + 1]);
            let sends: Vec<Vec<u64>> =
                (0..4).map(|d| vec![100 * c.rank() as u64 + d as u64]).collect();
            let recv = c.alltoallv(sends);
            (all, recv)
        })
        .expect("job runs");
        for (r, (all, recv)) in results.iter().enumerate() {
            assert_eq!(all.iter().map(|v| v.len()).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
            for (s, v) in recv.iter().enumerate() {
                assert_eq!(v, &vec![100 * s as u64 + r as u64]);
            }
        }
    }

    #[test]
    fn proc_broadcast_and_barrier() {
        let results = run_spmd_proc(3, |c| {
            c.barrier();
            let v = c.broadcast(1, (c.rank() == 1).then(|| vec![5u32, 6]));
            c.barrier();
            v
        })
        .expect("job runs");
        for r in results {
            assert_eq!(r, vec![5, 6]);
        }
    }

    #[test]
    fn proc_single_rank_works() {
        let results = run_spmd_proc(1, |c| {
            let mut buf = vec![3.0];
            c.allreduce_sum_f64(&mut buf);
            (buf[0], c.exscan_sum_u64(9), c.broadcast(0, Some(4u32)))
        })
        .expect("job runs");
        assert_eq!(results, vec![(3.0, 0, 4)]);
    }

    #[test]
    fn proc_large_payload_exchange() {
        // Above EAGER_MAX: exercises the rank-ordered rendezvous and the
        // scoped-thread ring path.
        let n = 40_000; // 320 KB of f64 per message
        let results = run_spmd_proc(2, |c| {
            let mut buf = vec![1.5f64; n];
            c.allreduce_sum_f64(&mut buf);
            let all = c.allgather(vec![c.rank() as u64; n]);
            (buf[0], all[1][0])
        })
        .expect("job runs");
        for (sum, g) in results {
            assert_eq!(sum, 3.0);
            assert_eq!(g, 1);
        }
    }

    #[test]
    fn proc_panicking_rank_is_a_clean_error_not_a_hang() {
        let err = run_spmd_proc(3, |c| {
            if c.rank() == 1 {
                panic!("rank 1 exploded");
            }
            let mut buf = vec![1.0];
            c.allreduce_sum_f64(&mut buf);
            buf[0]
        })
        .expect_err("job must fail");
        let msg = err.to_string();
        assert!(msg.contains("exploded") || msg.contains("rank"), "unhelpful error: {msg}");
    }

    #[test]
    fn proc_killed_rank_is_a_clean_error_not_a_hang() {
        // A worker that dies without unwinding (exit ≈ kill -9 as far as
        // peers can tell: sockets close, no panic report).
        let err = run_spmd_proc(3, |c| {
            if c.rank() == 2 {
                std::process::exit(7);
            }
            let mut buf = vec![1.0];
            c.allreduce_sum_f64(&mut buf);
            buf[0]
        })
        .expect_err("job must fail");
        match err {
            ProcError::RankFailed { .. } | ProcError::Timeout { .. } => {}
            other => panic!("unexpected error shape: {other}"),
        }
    }

    #[test]
    fn proc_stats_are_per_rank_views() {
        let results = run_spmd_proc(2, |c| {
            let before = c.stats();
            let mut buf = vec![0.0f64; 4];
            c.allreduce_sum_f64(&mut buf);
            let d = c.stats().since(&before);
            (d.op(Collective::Allreduce).rounds, d.op(Collective::Allreduce).bytes)
        })
        .expect("job runs");
        for (rounds, bytes) in results {
            assert_eq!(rounds, 1, "p=2 butterfly is one round");
            // Serialized Vec<f64> of 4 elements: 8-byte length + 32 bytes.
            assert_eq!(bytes, 40);
        }
    }

    #[test]
    fn measured_alpha_beta_is_sane() {
        let m = measure_alpha_beta(20).expect("calibration runs");
        assert!(m.alpha > 0.0 && m.alpha < 0.1, "alpha {} out of range", m.alpha);
        assert!(m.beta >= 0.0 && m.beta < 1e-4, "beta {} out of range", m.beta);
        assert_eq!(m.samples.len(), 6);
    }
}
