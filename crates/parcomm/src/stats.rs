//! Per-collective communication counters.
//!
//! Every rank of a `ThreadComm` records, for each collective *kind*, how
//! many operations it entered, how many synchronization rounds those
//! operations took, and how many payload bytes the rank *received*. The
//! scaling experiments diff two [`CommStats`] snapshots around a phase and
//! feed the result into an α–β cost model (latency per round + inverse
//! bandwidth per received byte), mirroring how the paper attributes its
//! running time to communication vs. computation (DESIGN.md §3).
//!
//! Semantics of the three counters per [`Collective`] kind:
//!
//! * `ops` — logical collective calls (counted once per call, not once per
//!   rank; in an SPMD program every rank enters the same calls).
//! * `rounds` — barrier-synchronized communication steps. A recursive
//!   doubling allreduce on `p` ranks is one op of `⌈log₂ p⌉` rounds; an
//!   allgather or single-deposit broadcast is one op of one round. The α
//!   (latency) term of the cost model multiplies *rounds*, not ops.
//! * `bytes` — payload bytes received, summed over all ranks. Sizes are
//!   shallow (`size_of::<T>()` per element); heap payloads inside elements
//!   are not followed. The β (bandwidth) term divides by the rank count to
//!   get the per-rank volume that bounds the parallel time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::{Wire, WireCursor};

/// The collective kinds the substrate distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Every rank gathers every rank's buffer.
    Allgather,
    /// Element-wise global reductions (sum/min/max, scalar or vector).
    Allreduce,
    /// One root's value distributed to all ranks.
    Broadcast,
    /// Exclusive prefix sum over ranks.
    Exscan,
    /// Personalized all-to-all exchange.
    Alltoallv,
}

/// Number of distinct [`Collective`] kinds.
pub const COLLECTIVE_KINDS: usize = 5;

impl Collective {
    /// All kinds, in display order.
    pub const ALL: [Collective; COLLECTIVE_KINDS] = [
        Collective::Allgather,
        Collective::Allreduce,
        Collective::Broadcast,
        Collective::Exscan,
        Collective::Alltoallv,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Collective::Allgather => "allgather",
            Collective::Allreduce => "allreduce",
            Collective::Broadcast => "broadcast",
            Collective::Exscan => "exscan",
            Collective::Alltoallv => "alltoallv",
        }
    }
}

/// Counters of one collective kind (monotone; see the module docs for the
/// exact semantics of each field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Logical collective calls.
    pub ops: u64,
    /// Barrier-synchronized communication rounds across those calls.
    pub rounds: u64,
    /// Payload bytes received, summed over ranks.
    pub bytes: u64,
}

impl OpStats {
    fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            ops: self.ops - earlier.ops,
            rounds: self.rounds - earlier.rounds,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// One rank's monotone counters (each rank of a communicator owns one cell
/// and only ever writes its own; snapshots read all cells).
#[derive(Debug, Default)]
pub struct StatsCell {
    ops: [AtomicU64; COLLECTIVE_KINDS],
    rounds: [AtomicU64; COLLECTIVE_KINDS],
    bytes: [AtomicU64; COLLECTIVE_KINDS],
}

impl StatsCell {
    /// Record one collective of `kind` that took `rounds` synchronization
    /// rounds and in which this rank received `received_bytes` payload
    /// bytes.
    pub fn record(&self, kind: Collective, rounds: u64, received_bytes: u64) {
        let i = kind as usize;
        self.ops[i].fetch_add(1, Ordering::Relaxed);
        self.rounds[i].fetch_add(rounds, Ordering::Relaxed);
        self.bytes[i].fetch_add(received_bytes, Ordering::Relaxed);
    }

    /// Current counters of one kind.
    pub fn op_snapshot(&self, kind: Collective) -> OpStats {
        let i = kind as usize;
        OpStats {
            ops: self.ops[i].load(Ordering::Relaxed),
            rounds: self.rounds[i].load(Ordering::Relaxed),
            bytes: self.bytes[i].load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a communicator's counters, broken down by
/// collective kind. Subtract snapshots with [`CommStats::since`] to measure
/// a phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Rank count of the communicator the snapshot came from (0 for the
    /// trivial/default stats; treated as 1 by the per-rank accessors).
    pub ranks: u64,
    /// Counters per collective kind, indexed by `Collective as usize`.
    pub per_op: [OpStats; COLLECTIVE_KINDS],
}

impl CommStats {
    /// Combine per-rank snapshots (`ranks == 1` views, as the process
    /// backend returns from each worker) into one job-wide view with the
    /// same convention as [`CommStats::aggregate`]: logical op/round
    /// counts from rank 0, received bytes summed over all ranks.
    pub fn from_rank_views(views: &[CommStats]) -> CommStats {
        assert!(!views.is_empty(), "need at least one rank view");
        let mut out = CommStats { ranks: views.len() as u64, per_op: views[0].per_op };
        for i in 0..COLLECTIVE_KINDS {
            out.per_op[i].bytes = views.iter().map(|v| v.per_op[i].bytes).sum();
        }
        out
    }

    /// Aggregate the per-rank cells of one communicator: logical op/round
    /// counts are taken from rank 0 (identical on every rank by the SPMD
    /// contract), received bytes are summed over all ranks.
    pub fn aggregate(ranks: usize, cells: &[StatsCell]) -> CommStats {
        let mut out = CommStats { ranks: ranks as u64, per_op: Default::default() };
        for (i, kind) in Collective::ALL.into_iter().enumerate() {
            let lead = cells[0].op_snapshot(kind);
            out.per_op[i].ops = lead.ops;
            out.per_op[i].rounds = lead.rounds;
            out.per_op[i].bytes = cells.iter().map(|c| c.op_snapshot(kind).bytes).sum();
        }
        out
    }

    /// Counters of one collective kind.
    pub fn op(&self, kind: Collective) -> OpStats {
        self.per_op[kind as usize]
    }

    /// Total logical collective calls across all kinds.
    pub fn collectives(&self) -> u64 {
        self.per_op.iter().map(|o| o.ops).sum()
    }

    /// Total synchronization rounds across all kinds (the latency count).
    pub fn rounds(&self) -> u64 {
        self.per_op.iter().map(|o| o.rounds).sum()
    }

    /// Total payload bytes received, summed over ranks.
    pub fn bytes(&self) -> u64 {
        self.per_op.iter().map(|o| o.bytes).sum()
    }

    /// Average payload bytes received per rank — the volume that bounds the
    /// parallel communication time of a symmetric collective schedule.
    ///
    /// Returned as an `f64` average: the earlier integer division floored
    /// sub-rank-count payloads to 0 bytes, silently dropping the β term of
    /// [`CommStats::modeled_seconds`] for small messages — exactly the
    /// regime where the scaling figures' latency/bandwidth split matters.
    pub fn bytes_per_rank(&self) -> f64 {
        self.bytes() as f64 / self.ranks.max(1) as f64
    }

    /// Counter deltas since `earlier` (the rank count carries over).
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats { ranks: self.ranks, per_op: Default::default() };
        for i in 0..COLLECTIVE_KINDS {
            out.per_op[i] = self.per_op[i].since(&earlier.per_op[i]);
        }
        out
    }

    /// Modeled communication seconds under an α–β model: `alpha` seconds
    /// per synchronization round plus `beta` seconds per byte received by
    /// a rank.
    pub fn modeled_seconds(&self, alpha: f64, beta: f64) -> f64 {
        self.rounds() as f64 * alpha + self.bytes_per_rank() * beta
    }
}

// Snapshots cross the process boundary when the multi-process backend
// reports per-rank counters back to the parent.
impl Wire for OpStats {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.ops.wire_write(out);
        self.rounds.wire_write(out);
        self.bytes.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        OpStats { ops: u64::wire_read(r), rounds: u64::wire_read(r), bytes: u64::wire_read(r) }
    }
}

impl Wire for CommStats {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.ranks.wire_write(out);
        self.per_op.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        CommStats { ranks: u64::wire_read(r), per_op: Wire::wire_read(r) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let cell = StatsCell::default();
        cell.record(Collective::Allreduce, 3, 100);
        cell.record(Collective::Allreduce, 3, 20);
        cell.record(Collective::Broadcast, 1, 8);
        let red = cell.op_snapshot(Collective::Allreduce);
        assert_eq!(red, OpStats { ops: 2, rounds: 6, bytes: 120 });
        let bc = cell.op_snapshot(Collective::Broadcast);
        assert_eq!(bc, OpStats { ops: 1, rounds: 1, bytes: 8 });
        assert_eq!(cell.op_snapshot(Collective::Exscan), OpStats::default());
    }

    #[test]
    fn aggregate_sums_bytes_and_keeps_logical_counts() {
        let cells = [StatsCell::default(), StatsCell::default()];
        cells[0].record(Collective::Allgather, 1, 32);
        cells[1].record(Collective::Allgather, 1, 32);
        let s = CommStats::aggregate(2, &cells);
        assert_eq!(s.ranks, 2);
        assert_eq!(s.op(Collective::Allgather), OpStats { ops: 1, rounds: 1, bytes: 64 });
        assert_eq!(s.collectives(), 1);
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.bytes(), 64);
        assert_eq!(s.bytes_per_rank(), 32.0);
    }

    #[test]
    fn bytes_per_rank_keeps_sub_rank_payloads() {
        // Regression: 3 bytes over 4 ranks used to floor to 0 and erase
        // the β term; the average must stay positive.
        let mut s = CommStats { ranks: 4, per_op: Default::default() };
        s.per_op[Collective::Alltoallv as usize] = OpStats { ops: 1, rounds: 1, bytes: 3 };
        assert_eq!(s.bytes_per_rank(), 0.75);
        let t = s.modeled_seconds(0.0, 1.0);
        assert!(t > 0.0, "β term must survive bytes < ranks, got {t}");
    }

    #[test]
    fn from_rank_views_matches_aggregate_convention() {
        let mut a = CommStats { ranks: 1, per_op: Default::default() };
        a.per_op[Collective::Allreduce as usize] = OpStats { ops: 2, rounds: 4, bytes: 100 };
        let mut b = a;
        b.per_op[Collective::Allreduce as usize].bytes = 60;
        let s = CommStats::from_rank_views(&[a, b]);
        assert_eq!(s.ranks, 2);
        assert_eq!(s.op(Collective::Allreduce), OpStats { ops: 2, rounds: 4, bytes: 160 });
        assert_eq!(s.bytes_per_rank(), 80.0);
    }

    #[test]
    fn comm_stats_roundtrip_the_wire() {
        let mut s = CommStats { ranks: 3, per_op: Default::default() };
        s.per_op[Collective::Exscan as usize] = OpStats { ops: 1, rounds: 2, bytes: 16 };
        let back = crate::wire::from_wire::<CommStats>(&crate::wire::to_wire(&s));
        assert_eq!(back, s);
    }

    #[test]
    fn since_diffs_every_kind() {
        let cell = StatsCell::default();
        cell.record(Collective::Allreduce, 2, 100);
        let a = CommStats::aggregate(1, std::slice::from_ref(&cell));
        cell.record(Collective::Allreduce, 2, 80);
        cell.record(Collective::Alltoallv, 1, 50);
        let b = CommStats::aggregate(1, std::slice::from_ref(&cell));
        let d = b.since(&a);
        assert_eq!(d.op(Collective::Allreduce), OpStats { ops: 1, rounds: 2, bytes: 80 });
        assert_eq!(d.op(Collective::Alltoallv), OpStats { ops: 1, rounds: 1, bytes: 50 });
        assert_eq!(d.collectives(), 2);
    }

    #[test]
    fn modeled_seconds_is_linear_in_rounds_and_per_rank_bytes() {
        let mut s = CommStats { ranks: 4, per_op: Default::default() };
        s.per_op[Collective::Allreduce as usize] =
            OpStats { ops: 5, rounds: 10, bytes: 4000 };
        let t = s.modeled_seconds(1e-5, 1e-9);
        assert!((t - (10.0 * 1e-5 + 1000.0 * 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn default_stats_are_zero_and_safe() {
        let s = CommStats::default();
        assert_eq!(s.collectives(), 0);
        assert_eq!(s.bytes_per_rank(), 0.0, "no division by zero ranks");
    }
}
