//! Communication counters.
//!
//! Every `ThreadComm` collective records how many payload bytes crossed
//! ranks and how many collective rounds happened. The scaling experiments
//! diff two snapshots around a phase and feed the result into an α–β cost
//! model (latency per round + inverse bandwidth per byte), mirroring how
//! the paper attributes its running time to communication vs. computation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters shared by all ranks of a communicator.
#[derive(Debug, Default)]
pub struct StatsCell {
    collectives: AtomicU64,
    bytes: AtomicU64,
}

impl StatsCell {
    /// Record one collective in which `bytes` payload bytes were contributed.
    pub fn record(&self, bytes: u64) {
        self.collectives.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> CommStats {
        CommStats {
            collectives: self.collectives.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of the counters. Subtract snapshots to measure a
/// phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of collective operations entered.
    pub collectives: u64,
    /// Total payload bytes contributed across all ranks.
    pub bytes: u64,
}

impl CommStats {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            collectives: self.collectives - earlier.collectives,
            bytes: self.bytes - earlier.bytes,
        }
    }

    /// Modeled communication seconds under an α–β model:
    /// `alpha` seconds per collective round plus `beta` seconds per byte.
    pub fn modeled_seconds(&self, alpha: f64, beta: f64) -> f64 {
        self.collectives as f64 * alpha + self.bytes as f64 * beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let cell = StatsCell::default();
        cell.record(100);
        cell.record(20);
        let s = cell.snapshot();
        assert_eq!(s.collectives, 2);
        assert_eq!(s.bytes, 120);
    }

    #[test]
    fn since_diffs() {
        let a = CommStats { collectives: 2, bytes: 100 };
        let b = CommStats { collectives: 5, bytes: 180 };
        let d = b.since(&a);
        assert_eq!(d, CommStats { collectives: 3, bytes: 80 });
    }

    #[test]
    fn modeled_seconds_is_linear() {
        let s = CommStats { collectives: 10, bytes: 1000 };
        let t = s.modeled_seconds(1e-5, 1e-9);
        assert!((t - (10.0 * 1e-5 + 1000.0 * 1e-9)).abs() < 1e-15);
    }
}
