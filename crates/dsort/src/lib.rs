//! Distributed sorting and selection over a [`Comm`].
//!
//! Two primitives back most of the workspace:
//!
//! * [`sample_sort_by_key`] + [`rebalance`] — the global sort-by-Hilbert-key
//!   and redistribution step of Geographer's bootstrap (Algorithm 2, lines
//!   4–6). The paper uses the schizophrenic quicksort of Axtmann et al.;
//!   sample sort plays the same role (one splitter-selection round, one
//!   personalized exchange) with simpler machinery. See DESIGN.md §3.
//! * [`weighted_quantiles_f64`] / [`weighted_quantiles_u64`] — distributed
//!   weighted quantile selection by bisection, the communication kernel
//!   inside the RCB/RIB/MultiJagged/HSFC baselines (this is also how
//!   Zoltan's RCB finds its median cuts: iterated weight counting).
//!
//! Both primitives run on the native collectives of `geographer_parcomm`
//! (DESIGN.md §4): the sample-sort exchange is one move-once `alltoallv`
//! plus a recursive-doubling exscan/allreduce pair in [`rebalance`], and
//! every bisection iteration costs one `O(m·log p)`-volume allreduce. Range
//! discovery is fused into a single reduction per search — the f64 paths
//! pack `(min, −max)` pairs into one min-reduce, the u64 path reduces a
//! `(min, max)` tuple — so a quantile search never spends two latency
//! rounds where one suffices.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

use geographer_parcomm::{Comm, Wire};

/// Oversampling factor for splitter selection. Higher values buy better
/// balance for one slightly larger allgather.
const OVERSAMPLE: usize = 16;

/// Globally sort `items` by `key` across all ranks of `comm`.
///
/// On return, each rank holds a contiguous run of the global sorted order,
/// runs ascending with rank. Run lengths are approximately balanced (use
/// [`rebalance`] for exact `n/p` splits). Stable within nothing — ties are
/// ordered arbitrarily between ranks.
pub fn sample_sort_by_key<T, C, K>(comm: &C, mut items: Vec<T>, key: K) -> Vec<T>
where
    T: Wire,
    C: Comm,
    K: Fn(&T) -> u64,
{
    let p = comm.size();
    items.sort_by_key(|t| key(t));
    if p == 1 {
        return items;
    }

    // Regular sampling of the locally sorted run.
    let s = OVERSAMPLE * (p - 1);
    let mut samples = Vec::with_capacity(s.min(items.len()));
    if !items.is_empty() {
        for j in 0..s {
            let idx = (j * items.len()) / s;
            samples.push(key(&items[idx]));
        }
    }
    let mut all_samples: Vec<u64> = comm.allgather(samples).into_iter().flatten().collect();
    all_samples.sort_unstable();

    // p-1 splitters at regular positions in the gathered sample.
    let splitters: Vec<u64> = if all_samples.is_empty() {
        vec![0; p - 1]
    } else {
        (1..p)
            .map(|r| all_samples[(r * all_samples.len()) / p])
            .collect()
    };

    // Partition the local run by splitter and exchange. The run is
    // sorted, so destinations are monotone: an item with key `k` goes to
    // rank `#{sp ≤ k}`, and the p−1 run boundaries fall out of binary
    // searches. Each run is then moved out wholesale (`split_off`) —
    // exact-size send vectors, no per-item destination search or
    // p-growing-vector churn.
    let mut bounds = Vec::with_capacity(p + 1);
    bounds.push(0);
    for &sp in &splitters {
        bounds.push(items.partition_point(|t| key(t) < sp));
    }
    debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    let mut sends: Vec<Vec<T>> = Vec::with_capacity(p);
    for r in (1..p).rev() {
        sends.push(items.split_off(bounds[r]));
    }
    sends.push(items);
    sends.reverse();
    let mut received: Vec<T> = comm.alltoallv(sends).into_iter().flatten().collect();
    received.sort_by_key(|t| key(t));
    received
}

/// Redistribute globally ordered data so rank `r` owns exactly the global
/// slice `[r·n/p, (r+1)·n/p)`, preserving order. Input must already be
/// globally ordered by rank (e.g. the output of [`sample_sort_by_key`]).
pub fn rebalance<T, C>(comm: &C, items: Vec<T>) -> Vec<T>
where
    T: Wire,
    C: Comm,
{
    let p = comm.size();
    if p == 1 {
        return items;
    }
    let local_n = items.len() as u64;
    let offset = comm.exscan_sum_u64(local_n);
    let total = comm.allreduce(local_n, |a, b| a + b);
    if total == 0 {
        return items;
    }

    // Global element g belongs to rank r = ⌊g·p/total⌋, i.e. rank r owns
    // the contiguous global range [⌈r·total/p⌉, ⌈(r+1)·total/p⌉). The
    // local run covers [offset, offset + n): slice it at the arithmetic
    // boundaries directly — no per-element owner computation, no growing
    // send vectors.
    let start =
        |r: usize| -> u64 { (r as u128 * total as u128).div_ceil(p as u128) as u64 };
    let end_g = offset + local_n;
    let mut items = items;
    let mut sends: Vec<Vec<T>> = Vec::with_capacity(p);
    for r in (1..p).rev() {
        let lo = start(r).clamp(offset, end_g) - offset;
        sends.push(items.split_off(lo as usize));
    }
    sends.push(items);
    sends.reverse();
    // Concatenating by source rank preserves global order: sources hold
    // ascending disjoint runs.
    comm.alltoallv(sends).into_iter().flatten().collect()
}

/// Result tolerance of the floating-point bisection, relative to the value
/// range.
const F64_BISECT_ITERS: usize = 60;

/// Distributed weighted quantiles over `f64` values.
///
/// For each `alpha` in `alphas` (each in `[0, 1]`), find a threshold `x`
/// such that the global weight of `{v_i ≤ x}` is as close as possible to
/// `alpha · total_weight`. All ranks receive identical thresholds.
///
/// One collective per bisection iteration, vectorized over all alphas —
/// exactly the communication pattern of a multi-way Zoltan cut search.
pub fn weighted_quantiles_f64<C: Comm>(
    comm: &C,
    values: &[f64],
    weights: &[f64],
    alphas: &[f64],
) -> Vec<f64> {
    assert_eq!(values.len(), weights.len());
    if alphas.is_empty() {
        return Vec::new();
    }
    // Global range (one min-reduce carries both bounds via the min(-max)
    // trick) and global total weight.
    let local_min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let local_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut minmax = [local_min, -local_max];
    comm.allreduce_min_f64(&mut minmax);
    let (glo, ghi) = (minmax[0], -minmax[1]);
    let mut wsum = [weights.iter().sum::<f64>()];
    comm.allreduce_sum_f64(&mut wsum);
    let total_w = wsum[0];

    if !glo.is_finite() || !ghi.is_finite() || total_w <= 0.0 {
        // Empty global input: any threshold works.
        return vec![0.0; alphas.len()];
    }

    let m = alphas.len();
    let mut lo = vec![glo; m];
    let mut hi = vec![ghi; m];
    for _ in 0..F64_BISECT_ITERS {
        let mids: Vec<f64> = lo.iter().zip(&hi).map(|(a, b)| 0.5 * (a + b)).collect();
        // Local weight at or below each mid.
        let mut below = vec![0.0; m];
        for (v, w) in values.iter().zip(weights) {
            for (j, mid) in mids.iter().enumerate() {
                if v <= mid {
                    below[j] += w;
                }
            }
        }
        comm.allreduce_sum_f64(&mut below);
        for j in 0..m {
            if below[j] < alphas[j] * total_w {
                lo[j] = mids[j];
            } else {
                hi[j] = mids[j];
            }
        }
        if lo.iter().zip(&hi).all(|(a, b)| b - a <= f64::EPSILON * (ghi - glo).abs()) {
            break;
        }
    }
    lo.iter().zip(&hi).map(|(a, b)| 0.5 * (a + b)).collect()
}

/// One independent quantile problem inside a batched
/// [`weighted_quantiles_grouped`] call.
#[derive(Debug, Clone, Default)]
pub struct QuantileGroup {
    /// Local values of this group.
    pub values: Vec<f64>,
    /// Local weights, same length as `values`.
    pub weights: Vec<f64>,
    /// Quantile fractions to find for this group.
    pub alphas: Vec<f64>,
}

/// Batched distributed weighted quantiles: solve many independent quantile
/// problems (e.g. all region cuts of one recursion level of RCB or
/// MultiJagged) with a *single* shared bisection — one allreduce per
/// iteration regardless of the number of groups. This level-synchronous
/// batching is what keeps the collective count of recursive partitioners at
/// `O(levels)` instead of `O(k)`, the property behind their scaling
/// behaviour in the paper's Fig. 3.
pub fn weighted_quantiles_grouped<C: Comm>(
    comm: &C,
    groups: &[QuantileGroup],
) -> Vec<Vec<f64>> {
    if groups.is_empty() {
        return Vec::new();
    }
    let g = groups.len();
    // Batched range + weight reduction: one min-reduce (carrying min and
    // -max per group) and one sum-reduce.
    let mut minmax = vec![f64::INFINITY; 2 * g];
    let mut wsum = vec![0.0f64; g];
    for (j, grp) in groups.iter().enumerate() {
        debug_assert_eq!(grp.values.len(), grp.weights.len());
        for &v in &grp.values {
            minmax[2 * j] = minmax[2 * j].min(v);
            minmax[2 * j + 1] = minmax[2 * j + 1].min(-v);
        }
        wsum[j] = grp.weights.iter().sum();
    }
    comm.allreduce_min_f64(&mut minmax);
    comm.allreduce_sum_f64(&mut wsum);

    // Flattened per-alpha bisection state.
    let offsets: Vec<usize> = {
        let mut off = vec![0usize];
        for grp in groups {
            off.push(off.last().unwrap() + grp.alphas.len());
        }
        off
    };
    let total = *offsets.last().unwrap();
    let mut lo = vec![0.0f64; total];
    let mut hi = vec![0.0f64; total];
    let mut valid = vec![false; total];
    for (j, grp) in groups.iter().enumerate() {
        let (glo, ghi) = (minmax[2 * j], -minmax[2 * j + 1]);
        let ok = glo.is_finite() && ghi.is_finite() && wsum[j] > 0.0;
        for (a, _) in grp.alphas.iter().enumerate() {
            let idx = offsets[j] + a;
            valid[idx] = ok;
            lo[idx] = if ok { glo } else { 0.0 };
            hi[idx] = if ok { ghi } else { 0.0 };
        }
    }

    for _ in 0..F64_BISECT_ITERS {
        let mids: Vec<f64> = lo.iter().zip(&hi).map(|(a, b)| 0.5 * (a + b)).collect();
        let mut below = vec![0.0f64; total];
        for (j, grp) in groups.iter().enumerate() {
            let span = offsets[j]..offsets[j + 1];
            for (v, w) in grp.values.iter().zip(&grp.weights) {
                for idx in span.clone() {
                    if v <= &mids[idx] {
                        below[idx] += w;
                    }
                }
            }
        }
        comm.allreduce_sum_f64(&mut below);
        for (j, grp) in groups.iter().enumerate() {
            for (a, &alpha) in grp.alphas.iter().enumerate() {
                let idx = offsets[j] + a;
                if !valid[idx] {
                    continue;
                }
                if below[idx] < alpha * wsum[j] {
                    lo[idx] = mids[idx];
                } else {
                    hi[idx] = mids[idx];
                }
            }
        }
    }

    groups
        .iter()
        .enumerate()
        .map(|(j, grp)| {
            (0..grp.alphas.len())
                .map(|a| {
                    let idx = offsets[j] + a;
                    0.5 * (lo[idx] + hi[idx])
                })
                .collect()
        })
        .collect()
}

/// Distributed weighted quantiles over `u64` keys (exact integer bisection).
/// Semantics as [`weighted_quantiles_f64`], with thresholds `x` such that
/// keys `≤ x` hold approximately `alpha · total_weight`.
pub fn weighted_quantiles_u64<C: Comm>(
    comm: &C,
    keys: &[u64],
    weights: &[f64],
    alphas: &[f64],
) -> Vec<u64> {
    assert_eq!(keys.len(), weights.len());
    if alphas.is_empty() {
        return Vec::new();
    }
    let local_min = keys.iter().copied().min().unwrap_or(u64::MAX);
    let local_max = keys.iter().copied().max().unwrap_or(0);
    // One fused reduction finds both ends of the key range.
    let (glo, ghi) = comm.allreduce((local_min, local_max), |a, b| {
        (a.0.min(b.0), a.1.max(b.1))
    });
    let mut wsum = [weights.iter().sum::<f64>()];
    comm.allreduce_sum_f64(&mut wsum);
    let total_w = wsum[0];
    if total_w <= 0.0 || glo > ghi {
        return vec![0; alphas.len()];
    }

    let m = alphas.len();
    let mut lo = vec![glo; m]; // invariant: weight(<= lo-1) < target  (loose)
    let mut hi = vec![ghi; m]; // invariant: weight(<= hi) >= target
    while lo.iter().zip(&hi).any(|(a, b)| a < b) {
        let mids: Vec<u64> = lo.iter().zip(&hi).map(|(a, b)| a + (b - a) / 2).collect();
        let mut below = vec![0.0; m];
        for (k, w) in keys.iter().zip(weights) {
            for (j, mid) in mids.iter().enumerate() {
                if k <= mid {
                    below[j] += w;
                }
            }
        }
        comm.allreduce_sum_f64(&mut below);
        for j in 0..m {
            if lo[j] < hi[j] {
                if below[j] < alphas[j] * total_w {
                    lo[j] = mids[j] + 1;
                } else {
                    hi[j] = mids[j];
                }
            }
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_parcomm::{run_spmd, SelfComm};

    fn seq_weighted_quantile(mut vw: Vec<(f64, f64)>, alpha: f64) -> f64 {
        vw.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = vw.iter().map(|x| x.1).sum();
        let mut acc = 0.0;
        for (v, w) in &vw {
            acc += w;
            if acc >= alpha * total {
                return *v;
            }
        }
        vw.last().unwrap().0
    }

    #[test]
    fn sample_sort_single_rank_is_plain_sort() {
        let items = vec![5u64, 3, 9, 1];
        let sorted = sample_sort_by_key(&SelfComm, items, |&x| x);
        assert_eq!(sorted, vec![1, 3, 5, 9]);
    }

    #[test]
    fn sample_sort_multi_rank_matches_sequential() {
        let p = 4;
        let per_rank = 500;
        let results = run_spmd(p, |c| {
            // Deterministic pseudo-random input, different per rank.
            let items: Vec<u64> = (0..per_rank)
                .map(|i| {
                    let x = (c.rank() as u64 * 1_000_003 + i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x >> 16
                })
                .collect();
            let mine = sample_sort_by_key(&c, items.clone(), |&x| x);
            (items, mine)
        });
        let mut expected: Vec<u64> = results.iter().flat_map(|(inp, _)| inp.clone()).collect();
        expected.sort_unstable();
        let got: Vec<u64> = results.iter().flat_map(|(_, out)| out.clone()).collect();
        assert_eq!(got, expected, "concatenated rank outputs must equal global sort");
        // Balance check: no rank should be grossly overloaded.
        for (_, out) in &results {
            assert!(out.len() < 3 * per_rank, "splitters badly unbalanced");
        }
    }

    #[test]
    fn sample_sort_with_heavy_duplicates() {
        let results = run_spmd(3, |c| {
            let items: Vec<u64> = (0..300).map(|i| (i % 4) as u64).collect();
            sample_sort_by_key(&c, items, |&x| x)
        });
        let got: Vec<u64> = results.iter().flatten().copied().collect();
        assert_eq!(got.len(), 900);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rebalance_equalizes_counts_and_preserves_order() {
        let results = run_spmd(4, |c| {
            // Rank r starts with r*10 elements of a globally ordered sequence.
            let start: u64 = (0..c.rank() as u64).map(|r| r * 10).sum();
            let items: Vec<u64> = (0..(c.rank() as u64 * 10)).map(|i| start + i).collect();
            rebalance(&c, items)
        });
        let total: usize = results.iter().map(|r| r.len()).sum();
        assert_eq!(total, 60);
        for r in &results {
            assert!(r.len() == 15, "each rank must own n/p elements, got {}", r.len());
        }
        let flat: Vec<u64> = results.iter().flatten().copied().collect();
        assert_eq!(flat, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn rebalance_empty_input() {
        let results = run_spmd(3, |c| rebalance::<u64, _>(&c, Vec::new()));
        assert!(results.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn f64_quantiles_match_sequential() {
        let p = 3;
        let per_rank = 200;
        let results = run_spmd(p, |c| {
            let values: Vec<f64> = (0..per_rank)
                .map(|i| ((c.rank() * per_rank + i) as f64 * 0.731).sin() * 100.0)
                .collect();
            let weights: Vec<f64> = (0..per_rank).map(|i| 1.0 + (i % 5) as f64).collect();
            let q = weighted_quantiles_f64(&c, &values, &weights, &[0.25, 0.5, 0.9]);
            (values, weights, q)
        });
        let all: Vec<(f64, f64)> = results
            .iter()
            .flat_map(|(v, w, _)| v.iter().copied().zip(w.iter().copied()))
            .collect();
        let q = &results[0].2;
        for (j, &alpha) in [0.25, 0.5, 0.9].iter().enumerate() {
            let exact = seq_weighted_quantile(all.clone(), alpha);
            assert!(
                (q[j] - exact).abs() < 1.0,
                "alpha={alpha}: got {} want {exact}",
                q[j]
            );
            // The defining property: weight below threshold ≈ alpha.
            let total: f64 = all.iter().map(|x| x.1).sum();
            let below: f64 = all.iter().filter(|x| x.0 <= q[j]).map(|x| x.1).sum();
            assert!((below / total - alpha).abs() < 0.02, "alpha={alpha} below={below}");
        }
        // All ranks agree.
        for (_, _, qr) in &results {
            assert_eq!(qr, q);
        }
    }

    #[test]
    fn u64_quantiles_split_weight() {
        let results = run_spmd(4, |c| {
            let keys: Vec<u64> = (0..100).map(|i| (c.rank() * 100 + i) as u64).collect();
            let weights = vec![1.0; 100];
            weighted_quantiles_u64(&c, &keys, &weights, &[0.5])
        });
        let t = results[0][0];
        // 400 unit-weight keys 0..400; the median threshold is ~199.
        assert!((195..=205).contains(&(t as i64)), "median threshold {t}");
        for r in &results {
            assert_eq!(r[0], t);
        }
    }

    #[test]
    fn quantiles_empty_input_all_ranks() {
        let results = run_spmd(2, |c| {
            (
                weighted_quantiles_f64(&c, &[], &[], &[0.5]),
                weighted_quantiles_u64(&c, &[], &[], &[0.5]),
            )
        });
        assert_eq!(results[0].0, vec![0.0]);
        assert_eq!(results[0].1, vec![0]);
    }

    #[test]
    fn grouped_quantiles_match_single_group_calls() {
        let results = run_spmd(3, |c| {
            let mk = |seed: u64, n: usize| -> (Vec<f64>, Vec<f64>) {
                let vals: Vec<f64> = (0..n)
                    .map(|i| ((seed + c.rank() as u64 * 31 + i as u64) as f64 * 0.37).sin())
                    .collect();
                let w: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
                (vals, w)
            };
            let (v1, w1) = mk(1, 120);
            let (v2, w2) = mk(2, 80);
            let grouped = weighted_quantiles_grouped(
                &c,
                &[
                    QuantileGroup { values: v1.clone(), weights: w1.clone(), alphas: vec![0.3, 0.7] },
                    QuantileGroup { values: v2.clone(), weights: w2.clone(), alphas: vec![0.5] },
                ],
            );
            let single1 = weighted_quantiles_f64(&c, &v1, &w1, &[0.3, 0.7]);
            let single2 = weighted_quantiles_f64(&c, &v2, &w2, &[0.5]);
            (grouped, single1, single2)
        });
        for (grouped, s1, s2) in results {
            for (a, b) in grouped[0].iter().zip(&s1) {
                assert!((a - b).abs() < 1e-9, "group0: {a} vs {b}");
            }
            assert!((grouped[1][0] - s2[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn grouped_quantiles_handle_empty_group() {
        let results = run_spmd(2, |c| {
            weighted_quantiles_grouped(
                &c,
                &[
                    QuantileGroup { values: vec![], weights: vec![], alphas: vec![0.5] },
                    QuantileGroup {
                        values: vec![c.rank() as f64],
                        weights: vec![1.0],
                        alphas: vec![0.5],
                    },
                ],
            )
        });
        assert_eq!(results[0][0], vec![0.0], "empty group falls back to 0");
        assert!((results[0][1][0] - 0.0).abs() < 0.51, "median of {{0,1}}");
    }

    #[test]
    fn quantiles_skewed_weights() {
        // One huge-weight element dominates: every quantile ≤ its mass lands
        // on it.
        let q = weighted_quantiles_f64(
            &SelfComm,
            &[1.0, 2.0, 3.0],
            &[1.0, 100.0, 1.0],
            &[0.5, 0.95],
        );
        assert!((q[0] - 2.0).abs() < 1e-6);
        assert!((q[1] - 2.0).abs() < 1e-6);
    }
}
