//! Distributed sparse matrix–vector multiplication with halo exchange.
//!
//! This is the empirical quality measure of the paper (Sec. 2): "we
//! redistribute the input graph according to [the partition], perform
//! sparse matrix-vector multiplications with the adjacency matrix ... and
//! measure the communication time needed within the SpMV", averaged over
//! many repetitions (`timeSpMVComm` in Tables 1–2).
//!
//! Each rank owns the vertices of its block(s) (blocks map to ranks
//! contiguously). One multiplication is: exchange boundary values (each
//! owned vertex value goes once to every *rank* that has a neighbour of
//! it — exactly the communication-volume metric), then multiply locally.
//! Only the exchange is timed.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;
use std::time::Instant;

use geographer_graph::CsrGraph;
use geographer_parcomm::Comm;

/// Measurements of a repeated SpMV run on one rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmvReport {
    /// Average seconds per multiplication spent in the halo exchange.
    pub comm_seconds_avg: f64,
    /// Average seconds per multiplication spent in local compute.
    pub compute_seconds_avg: f64,
    /// Payload bytes this rank sends per multiplication.
    pub bytes_sent_per_iter: u64,
    /// The subset of [`Self::bytes_sent_per_iter`] that crosses a *node*
    /// boundary when ranks are grouped onto nodes (see
    /// [`spmv_comm_time_on_nodes`]). With the flat default of one rank per
    /// node this equals `bytes_sent_per_iter`.
    pub inter_node_bytes_per_iter: u64,
    /// Sum of the final result vector entries owned by this rank
    /// (determinism check; also keeps the compute from being optimized out).
    pub checksum: f64,
}

/// Map block `b` of `k` to its owning rank among `p` (contiguous ranges;
/// identity when `k == p`).
///
/// Contiguity is what makes this mapping *hierarchy-aware*: the
/// hierarchical solver flattens leaf paths lexicographically, so sibling
/// leaves have consecutive flat ids and land on consecutive ranks — with
/// ranks grouped onto nodes in the same contiguous fashion
/// ([`node_of_rank`]), a subtree of blocks stays inside one node.
#[inline]
pub fn owner_of_block(b: u32, k: usize, p: usize) -> usize {
    ((b as usize * p) / k).min(p - 1)
}

/// Node of rank `r` when `p` ranks are packed onto nodes of
/// `ranks_per_node` consecutive ranks each (the contiguous rank→node
/// mapping matching [`owner_of_block`]). `ranks_per_node = 1` is the flat
/// machine: every rank is its own node and all cross-rank traffic is
/// inter-node.
#[inline]
pub fn node_of_rank(r: usize, ranks_per_node: usize) -> usize {
    r / ranks_per_node.max(1)
}

/// Run `reps` SpMV iterations on the partition `assignment` (block per
/// vertex, `k` blocks) of `g`, SPMD over `comm`. The graph structure and
/// assignment are replicated (reproduction-scale instances fit easily);
/// the *vector* is distributed and every boundary value moves through a
/// real `alltoallv` per iteration.
pub fn spmv_comm_time<C: Comm>(
    comm: &C,
    g: &CsrGraph,
    assignment: &[u32],
    k: usize,
    reps: usize,
) -> SpmvReport {
    spmv_comm_time_on_nodes(comm, g, assignment, k, reps, 1)
}

/// [`spmv_comm_time`] on a two-tier machine: ranks are packed onto nodes
/// of `ranks_per_node` consecutive ranks, and the report additionally
/// splits the sent bytes into intra-node and inter-node traffic
/// (`inter_node_bytes_per_iter`). The exchange itself is identical — the
/// grouping only drives the accounting, which the tiered α–β cost model
/// in `geographer_bench` prices per link class.
///
/// Counting convention: bytes are per **destination rank** (what the
/// wire carries — a value needed by two ranks of the same remote node is
/// sent twice). The level-0 communication volume of
/// `geographer_graph::evaluate_levels` instead deduplicates per
/// destination *node*, so the two inter-node numbers for the same
/// partition differ slightly; don't mix them in one comparison.
pub fn spmv_comm_time_on_nodes<C: Comm>(
    comm: &C,
    g: &CsrGraph,
    assignment: &[u32],
    k: usize,
    reps: usize,
    ranks_per_node: usize,
) -> SpmvReport {
    assert_eq!(assignment.len(), g.n());
    assert!(reps >= 1);
    let p = comm.size();
    let me = comm.rank();
    let owner = |v: u32| owner_of_block(assignment[v as usize], k, p);

    // Owned vertices, and a dense local index for them.
    let owned: Vec<u32> = (0..g.n() as u32).filter(|&v| owner(v) == me).collect();
    // geo-analyze: allow(hash-container): lookup-only dense-index map, never iterated.
    let mut local_of: HashMap<u32, u32> = HashMap::with_capacity(owned.len());
    for (i, &v) in owned.iter().enumerate() {
        local_of.insert(v, i as u32);
    }

    // Send lists: owned vertices that each foreign rank needs (a vertex is
    // sent at most once per rank — the comm-volume semantics).
    let mut send_list: Vec<Vec<u32>> = vec![Vec::new(); p];
    {
        // geo-analyze: allow(hash-container): dedup-only membership set — send_list order comes from the deterministic owned/neighbors walk.
        let mut sent: Vec<HashMap<u32, ()>> = vec![HashMap::new(); p];
        for &v in &owned {
            for &u in g.neighbors(v) {
                let r = owner(u);
                if r != me && sent[r].insert(v, ()).is_none() {
                    send_list[r].push(v);
                }
            }
        }
    }
    // Receive map: which foreign vertices I need. Values arrive in the
    // sender's send_list order, which both sides can compute (replicated
    // structure) — mirror it here.
    let mut recv_from: Vec<Vec<u32>> = vec![Vec::new(); p];
    for r in 0..p {
        if r == me {
            continue;
        }
        // geo-analyze: allow(hash-container): dedup-only membership set — recv_from order mirrors the sender's deterministic walk.
        let mut sent: HashMap<u32, ()> = HashMap::new();
        for v in 0..g.n() as u32 {
            if owner(v) != r {
                continue;
            }
            for &u in g.neighbors(v) {
                if owner(u) == me && sent.insert(v, ()).is_none() {
                    recv_from[r].push(v);
                }
            }
        }
    }

    let bytes_sent_per_iter: u64 =
        send_list.iter().map(|l| (l.len() * std::mem::size_of::<f64>()) as u64).sum();
    let my_node = node_of_rank(me, ranks_per_node);
    let inter_node_bytes_per_iter: u64 = send_list
        .iter()
        .enumerate()
        .filter(|(r, _)| node_of_rank(*r, ranks_per_node) != my_node)
        .map(|(_, l)| (l.len() * std::mem::size_of::<f64>()) as u64)
        .sum();

    // Distributed vector: x[v] for owned v, plus a ghost table.
    let mut x: Vec<f64> = owned.iter().map(|&v| 1.0 + (v % 7) as f64).collect();
    // geo-analyze: allow(hash-container): lookup-only ghost table, read by key in the multiply, never iterated.
    let mut ghost: HashMap<u32, f64> = HashMap::new();
    let mut y = vec![0.0f64; owned.len()];

    let mut comm_secs = 0.0;
    let mut compute_secs = 0.0;
    for _ in 0..reps {
        // Halo exchange (timed).
        // geo-analyze: allow(kernel-entropy): this clock IS the comm measurement; it never influences control flow or output.
        let t = Instant::now();
        let sends: Vec<Vec<f64>> = send_list
            .iter()
            .map(|l| l.iter().map(|&v| x[local_of[&v] as usize]).collect())
            .collect();
        // geo-analyze: allow(rank-tainted-length): per-peer send lengths legitimately differ by rank; shape consistency is pairwise and every rank derives it from the same replicated graph and owner map.
        let received = comm.alltoallv(sends);
        for (r, vals) in received.into_iter().enumerate() {
            debug_assert_eq!(vals.len(), recv_from[r].len());
            for (&v, val) in recv_from[r].iter().zip(vals) {
                ghost.insert(v, val);
            }
        }
        comm_secs += t.elapsed().as_secs_f64();

        // Local multiply: y = A·x with unit edge weights.
        // geo-analyze: allow(kernel-entropy): this clock IS the compute measurement; it never influences control flow or output.
        let t = Instant::now();
        for (i, &v) in owned.iter().enumerate() {
            let mut acc = 0.0;
            for &u in g.neighbors(v) {
                acc += if owner(u) == me {
                    x[local_of[&u] as usize]
                } else {
                    ghost[&u]
                };
            }
            y[i] = acc;
        }
        // Keep values bounded across iterations (Jacobi-like damping).
        let scale = 1.0 / (1.0 + g.n() as f64).sqrt();
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = 0.5 * *xi + scale * yi;
        }
        compute_secs += t.elapsed().as_secs_f64();
    }

    SpmvReport {
        comm_seconds_avg: comm_secs / reps as f64,
        compute_seconds_avg: compute_secs / reps as f64,
        bytes_sent_per_iter,
        inter_node_bytes_per_iter,
        checksum: x.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_parcomm::{run_spmd, SelfComm};

    fn path_graph(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn owner_mapping_contiguous() {
        assert_eq!(owner_of_block(0, 4, 2), 0);
        assert_eq!(owner_of_block(1, 4, 2), 0);
        assert_eq!(owner_of_block(2, 4, 2), 1);
        assert_eq!(owner_of_block(3, 4, 2), 1);
        // k == p: identity.
        for b in 0..6u32 {
            assert_eq!(owner_of_block(b, 6, 6), b as usize);
        }
    }

    #[test]
    fn single_rank_runs_and_checksums() {
        let g = path_graph(50);
        let asg = vec![0u32; 50];
        let r = spmv_comm_time(&SelfComm, &g, &asg, 1, 5);
        assert_eq!(r.bytes_sent_per_iter, 0, "one rank sends nothing");
        assert!(r.checksum.is_finite());
    }

    #[test]
    fn bytes_match_comm_volume_metric() {
        // For k == p, per-iteration sent bytes across all ranks must be
        // 8 × total communication volume of the partition.
        let g = path_graph(40);
        let asg: Vec<u32> = (0..40).map(|v| (v / 10) as u32).collect();
        let k = 4;
        let metrics = geographer_graph::evaluate_partition(&g, &asg, &vec![1.0; 40], k);
        let reports = run_spmd(k, |c| spmv_comm_time(&c, &g, &asg, k, 3));
        let total_bytes: u64 = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
        assert_eq!(total_bytes, 8 * metrics.total_comm_volume);
    }

    #[test]
    fn distributed_matches_serial_checksum() {
        let g = path_graph(60);
        let asg: Vec<u32> = (0..60).map(|v| (v / 20) as u32).collect();
        let serial = spmv_comm_time(&SelfComm, &g, &asg, 3, 4);
        let reports = run_spmd(3, |c| spmv_comm_time(&c, &g, &asg, 3, 4));
        let dist_sum: f64 = reports.iter().map(|r| r.checksum).sum();
        assert!(
            (dist_sum - serial.checksum).abs() < 1e-9,
            "distributed {dist_sum} vs serial {}",
            serial.checksum
        );
    }

    #[test]
    fn worse_partition_sends_more() {
        // Stripes (every other vertex alternating blocks) send far more
        // than contiguous halves on a path.
        let g = path_graph(100);
        let good: Vec<u32> = (0..100).map(|v| (v / 50) as u32).collect();
        let bad: Vec<u32> = (0..100).map(|v| (v % 2) as u32).collect();
        let good_bytes: u64 = run_spmd(2, |c| spmv_comm_time(&c, &g, &good, 2, 2))
            .iter()
            .map(|r| r.bytes_sent_per_iter)
            .sum();
        let bad_bytes: u64 = run_spmd(2, |c| spmv_comm_time(&c, &g, &bad, 2, 2))
            .iter()
            .map(|r| r.bytes_sent_per_iter)
            .sum();
        assert!(bad_bytes > 10 * good_bytes, "{bad_bytes} vs {good_bytes}");
    }

    #[test]
    fn flat_default_counts_everything_as_inter_node() {
        let g = path_graph(40);
        let asg: Vec<u32> = (0..40).map(|v| (v / 10) as u32).collect();
        let reports = run_spmd(4, |c| spmv_comm_time(&c, &g, &asg, 4, 2));
        for r in &reports {
            assert_eq!(r.inter_node_bytes_per_iter, r.bytes_sent_per_iter);
        }
    }

    #[test]
    fn grouping_splits_bytes_by_tier() {
        // Path of 40 in 4 contiguous blocks on 4 ranks; 2 ranks per node.
        // Boundaries 0|1 and 2|3 are intra-node, 1|2 is inter-node.
        let g = path_graph(40);
        let asg: Vec<u32> = (0..40).map(|v| (v / 10) as u32).collect();
        let reports = run_spmd(4, |c| spmv_comm_time_on_nodes(&c, &g, &asg, 4, 2, 2));
        let total: u64 = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
        let inter: u64 = reports.iter().map(|r| r.inter_node_bytes_per_iter).sum();
        // 3 cut boundaries, one vertex each way: 6 values total; only the
        // middle boundary (2 values) crosses nodes.
        assert_eq!(total, 6 * 8);
        assert_eq!(inter, 2 * 8);
        // All ranks on one node: nothing is inter-node.
        let reports = run_spmd(4, |c| spmv_comm_time_on_nodes(&c, &g, &asg, 4, 2, 4));
        assert!(reports.iter().all(|r| r.inter_node_bytes_per_iter == 0));
        assert!(reports.iter().any(|r| r.bytes_sent_per_iter > 0));
    }

    #[test]
    fn node_of_rank_is_contiguous() {
        assert_eq!(node_of_rank(0, 2), 0);
        assert_eq!(node_of_rank(1, 2), 0);
        assert_eq!(node_of_rank(2, 2), 1);
        // Degenerate ranks_per_node = 0 clamps to 1.
        assert_eq!(node_of_rank(3, 0), 3);
    }

    #[test]
    fn more_blocks_than_ranks() {
        let g = path_graph(80);
        let asg: Vec<u32> = (0..80).map(|v| (v / 10) as u32).collect();
        // k = 8 blocks on p = 2 ranks.
        let reports = run_spmd(2, |c| spmv_comm_time(&c, &g, &asg, 8, 2));
        // Only the single edge crossing the rank boundary (block 3|4)
        // carries data: one vertex each way.
        let total: u64 = reports.iter().map(|r| r.bytes_sent_per_iter).sum();
        assert_eq!(total, 16);
    }
}
