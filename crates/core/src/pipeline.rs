//! The full Geographer pipeline (Algorithm 2 including its bootstrap):
//!
//! 1. compute Hilbert indices of all points (over the global bounding box);
//! 2. globally sort and redistribute the points by Hilbert index, so every
//!    rank owns a spatially coherent, equally sized shard;
//! 3. place the k initial centers at equal distances along the sorted
//!    order (`C[i] = sortedPoints[i·n/k + n/2k]`);
//! 4. run balanced k-means;
//! 5. route the block assignments back to the original owners (evaluation
//!    convenience; not part of the paper's timed pipeline).
//!
//! Per-phase wall-clock and communication counters are recorded — the
//! "Components" breakdown of Sec. 5.3.2 reads them directly.

use std::time::Instant;

use geographer_dsort::{rebalance, sample_sort_by_key};
use geographer_geometry::{Aabb, Point, WeightedPoints};
use geographer_parcomm::{Comm, CommStats, SelfComm, Wire, WireCursor};
use geographer_sfc::HilbertMapper;

use crate::config::Config;
use crate::kmeans::{balanced_kmeans, KMeansStats};

/// Bits per axis of the bootstrap Hilbert curve.
const PIPELINE_SFC_BITS: u32 = 16;

/// Wall-clock seconds of each pipeline phase (per rank; ranks are
/// synchronized by the collectives inside each phase, so these are
/// effectively the maximum across ranks).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTimings {
    /// Hilbert index computation.
    pub sfc_index: f64,
    /// Global sort + redistribution.
    pub redistribute: f64,
    /// Balanced k-means iterations.
    pub kmeans: f64,
    /// Routing assignments back to the original distribution (evaluation
    /// only; excluded from `total`).
    pub writeback: f64,
}

impl PipelineTimings {
    /// The paper-comparable total: index + redistribute + k-means.
    pub fn total(&self) -> f64 {
        self.sfc_index + self.redistribute + self.kmeans
    }
}

/// Per-collective communication counters of each pipeline phase (the
/// snapshots diffed around the phase boundaries). The Components breakdown
/// of Sec. 5.3.2 reads these next to the wall-clock timings: the
/// redistribution phase is volume-dominated (one alltoallv moving the
/// points), while the k-means phase is round-dominated (one short
/// allreduce per balance iteration).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseComm {
    /// Hilbert index phase (bounding box, id offsets).
    pub sfc_index: CommStats,
    /// Global sort + redistribution.
    pub redistribute: CommStats,
    /// Balanced k-means iterations.
    pub kmeans: CommStats,
    /// Assignment write-back (evaluation only).
    pub writeback: CommStats,
}

/// Result of a pipeline run on one rank.
#[derive(Debug, Clone)]
pub struct PipelineResult<const D: usize> {
    /// Block id of every *input-local* point, in input order.
    pub assignment: Vec<u32>,
    /// Final cluster centers (replicated across ranks).
    pub centers: Vec<Point<D>>,
    /// Final influence values (replicated across ranks). Together with
    /// `centers` this is the reusable state a later
    /// [`crate::repartition_spmd`] warm-starts from.
    pub influence: Vec<f64>,
    /// Per-phase timings.
    pub timings: PipelineTimings,
    /// k-means work counters for this rank.
    pub stats: KMeansStats,
    /// Communication counters accumulated during the timed phases.
    pub comm_stats: CommStats,
    /// The same counters broken down by pipeline phase.
    pub phase_comm: PhaseComm,
}

impl<const D: usize> PipelineResult<D> {
    /// Snapshot the reusable solver state for a later warm-started
    /// [`crate::repartition_spmd`] call (DESIGN.md §5).
    pub fn previous(&self) -> crate::repartition::PreviousPartition<D> {
        crate::repartition::PreviousPartition {
            centers: self.centers.clone(),
            influence: self.influence.clone(),
        }
    }
}

/// Global bounding box of a distributed point set — a single min-reduce:
/// the buffer carries `[min_0…min_{D−1}, −max_0…−max_{D−1}]`, so one
/// collective finds both corners (the min(−max) trick also used by the
/// quantile searches in `geographer_dsort`).
pub fn global_bbox<const D: usize, C: Comm>(comm: &C, points: &[Point<D>]) -> Aabb<D> {
    let mut buf = vec![f64::INFINITY; 2 * D];
    for p in points {
        for d in 0..D {
            buf[d] = buf[d].min(p[d]);
            buf[D + d] = buf[D + d].min(-p[d]);
        }
    }
    comm.allreduce_min_f64(&mut buf);
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        let (mut mn, mut mx) = (buf[d], -buf[D + d]);
        if mn > mx {
            // Globally empty input: unit box.
            (mn, mx) = (0.0, 1.0);
        }
        lo[d] = mn;
        hi[d] = mx;
    }
    Aabb::new(Point::new(lo), Point::new(hi))
}

/// A point travelling through the sort/exchange, tagged with its Hilbert
/// key and original global id.
#[derive(Debug, Clone, Copy)]
struct Tagged<const D: usize> {
    key: u64,
    id: u64,
    coords: [f64; D],
    weight: f64,
}

// Tagged points cross rank boundaries in the sort/exchange, so they need a
// byte encoding for the process backend (field order, little-endian).
impl<const D: usize> Wire for Tagged<D> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.key.wire_write(out);
        self.id.wire_write(out);
        self.coords.wire_write(out);
        self.weight.wire_write(out);
    }
    fn wire_read(r: &mut WireCursor<'_>) -> Self {
        Tagged {
            key: u64::wire_read(r),
            id: u64::wire_read(r),
            coords: <[f64; D]>::wire_read(r),
            weight: f64::wire_read(r),
        }
    }
}

/// Phase-boundary counter snapshot. Collectives record their counters at
/// entry, so without synchronization a fast rank could enter the next
/// phase's first collective while a slow rank is still reading the
/// boundary snapshot, misattributing bytes between phases. The barrier
/// pair makes the snapshot a consistent cut: after the first barrier every
/// rank has finished the previous phase, and no rank proceeds past the
/// second until everyone has read.
pub(crate) fn phase_snapshot<C: Comm>(comm: &C) -> CommStats {
    comm.barrier();
    let s = comm.stats();
    comm.barrier();
    s
}

/// Run the full Geographer pipeline SPMD. `points`/`weights` are this
/// rank's shard; the returned assignment is aligned with them.
///
/// # Panics
/// If `k` exceeds the global number of points, or on inconsistent input
/// lengths.
pub fn partition_spmd<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
    cfg: &Config,
) -> PipelineResult<D> {
    assert_eq!(points.len(), weights.len());
    cfg.validate();
    let comm_before = phase_snapshot(comm);

    // Phase 1: Hilbert indices.
    // geo-analyze: allow(kernel-entropy): phase timer — the paper's reported timing, never an input to the computation.
    let t0 = Instant::now();
    let bb = global_bbox(comm, points);
    let mapper = HilbertMapper::new(bb, PIPELINE_SFC_BITS);
    let local_n = points.len() as u64;
    let id_offset = comm.exscan_sum_u64(local_n);
    let global_n = comm.allreduce(local_n, |a, b| a + b);
    crate::config::validate_k(k, global_n);
    let tagged: Vec<Tagged<D>> = points
        .iter()
        .zip(weights)
        .enumerate()
        .map(|(i, (p, &w))| Tagged {
            key: mapper.key_of(p),
            id: id_offset + i as u64,
            coords: *p.coords(),
            weight: w,
        })
        .collect();
    let sfc_index = t0.elapsed().as_secs_f64();
    let comm_after_index = phase_snapshot(comm);

    // Phase 2: global sort by key + rebalance to n/p per rank.
    // geo-analyze: allow(kernel-entropy): phase timer — the paper's reported timing, never an input to the computation.
    let t1 = Instant::now();
    let sorted = sample_sort_by_key(comm, tagged, |t| t.key);
    let sorted = rebalance(comm, sorted);
    let redistribute = t1.elapsed().as_secs_f64();
    let comm_after_redistribute = phase_snapshot(comm);

    // Phase 3: initial centers along the curve, then balanced k-means.
    // geo-analyze: allow(kernel-entropy): phase timer — the paper's reported timing, never an input to the computation.
    let t2 = Instant::now();
    // One pass over the sorted run fills both exact-size arrays.
    let mut sorted_points: Vec<Point<D>> = Vec::with_capacity(sorted.len());
    let mut sorted_weights: Vec<f64> = Vec::with_capacity(sorted.len());
    for t in &sorted {
        sorted_points.push(Point::new(t.coords));
        sorted_weights.push(t.weight);
    }
    let centers = initial_centers_from_sorted(comm, &sorted_points, k, global_n);
    let out = balanced_kmeans(comm, &sorted_points, &sorted_weights, k, centers, cfg);
    let kmeans = t2.elapsed().as_secs_f64();
    let comm_after = phase_snapshot(comm);

    // Phase 4 (untimed in the paper): route assignments back to the
    // original owners so callers see blocks in input order.
    // geo-analyze: allow(kernel-entropy): phase timer — the paper's reported timing, never an input to the computation.
    let t3 = Instant::now();
    let assignment =
        route_back(comm, &sorted, &out.assignment, id_offset, local_n as usize);
    let writeback = t3.elapsed().as_secs_f64();
    let comm_after_writeback = phase_snapshot(comm);

    PipelineResult {
        assignment,
        centers: out.centers,
        influence: out.influence,
        timings: PipelineTimings { sfc_index, redistribute, kmeans, writeback },
        stats: out.stats,
        comm_stats: comm_after.since(&comm_before),
        phase_comm: PhaseComm {
            sfc_index: comm_after_index.since(&comm_before),
            redistribute: comm_after_redistribute.since(&comm_after_index),
            kmeans: comm_after.since(&comm_after_redistribute),
            writeback: comm_after_writeback.since(&comm_after),
        },
    }
}

/// Initial center selection (Algorithm 2, line 7): the points at global
/// sorted positions `i·n/k + n/(2k)`.
fn initial_centers_from_sorted<const D: usize, C: Comm>(
    comm: &C,
    sorted_points: &[Point<D>],
    k: usize,
    global_n: u64,
) -> Vec<Point<D>> {
    let my_offset = comm.exscan_sum_u64(sorted_points.len() as u64);
    let my_end = my_offset + sorted_points.len() as u64;
    let mut mine: Vec<(u64, [f64; D])> = Vec::new();
    for i in 0..k as u64 {
        let pos = (i * global_n) / k as u64 + global_n / (2 * k as u64);
        let pos = pos.min(global_n.saturating_sub(1));
        if pos >= my_offset && pos < my_end {
            mine.push((i, *sorted_points[(pos - my_offset) as usize].coords()));
        }
    }
    let mut all: Vec<(u64, [f64; D])> =
        comm.allgather(mine).into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    all.dedup_by_key(|(i, _)| *i);
    assert_eq!(all.len(), k, "every center position must be owned by some rank");
    all.into_iter().map(|(_, c)| Point::new(c)).collect()
}

/// Send `(original id, block)` pairs back to the original owners (who are
/// identified by the global id ranges of the input distribution).
fn route_back<const D: usize, C: Comm>(
    comm: &C,
    sorted: &[Tagged<D>],
    blocks: &[u32],
    my_id_offset: u64,
    my_input_len: usize,
) -> Vec<u32> {
    // Original ownership boundaries: allgather every rank's offset.
    let offsets: Vec<u64> =
        comm.allgather(vec![my_id_offset]).into_iter().map(|v| v[0]).collect();
    let owner_of = |id: u64| -> usize {
        // Last rank whose offset is <= id.
        match offsets.binary_search(&id) {
            Ok(r) => {
                // Ranks with zero points share offsets; pick the last one
                // whose range actually contains id (the one before the next
                // strictly greater offset).
                let mut r = r;
                while r + 1 < offsets.len() && offsets[r + 1] <= id {
                    r += 1;
                }
                r
            }
            Err(ins) => ins - 1,
        }
    };
    let p = comm.size();
    let mut sends: Vec<Vec<(u64, u32)>> = vec![Vec::new(); p];
    for (t, &b) in sorted.iter().zip(blocks) {
        sends[owner_of(t.id)].push((t.id, b));
    }
    let received = comm.alltoallv(sends);
    let mut assignment = vec![u32::MAX; my_input_len];
    for (id, b) in received.into_iter().flatten() {
        let local = (id - my_id_offset) as usize;
        assignment[local] = b;
    }
    assert!(
        assignment.iter().all(|&b| b != u32::MAX),
        "every input point must receive its block"
    );
    assignment
}

/// Shared-memory convenience wrapper: partition a whole weighted point set
/// with Geographer in one call (single rank; enable `cfg.parallel_local`
/// to use rayon for the assignment loops).
pub fn partition<const D: usize>(
    pts: &WeightedPoints<D>,
    k: usize,
    cfg: &Config,
) -> PipelineResult<D> {
    partition_spmd(&SelfComm, &pts.points, &pts.weights, k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::run_spmd;

    fn uniform(n: usize, seed: u64) -> WeightedPoints<2> {
        let mut rng = SplitMix64::new(seed);
        WeightedPoints::unweighted(
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect(),
        )
    }

    #[test]
    fn shared_memory_pipeline_balances() {
        let wp = uniform(3000, 1);
        let k = 8;
        let cfg = Config::default();
        let res = partition(&wp, k, &cfg);
        assert_eq!(res.assignment.len(), 3000);
        let mut sizes = vec![0.0; k];
        for &b in &res.assignment {
            sizes[b as usize] += 1.0;
        }
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / (3000.0 / k as f64) - 1.0 <= cfg.epsilon + 1e-9, "{sizes:?}");
        assert_eq!(res.centers.len(), k);
        assert!(res.timings.total() > 0.0);
    }

    #[test]
    fn spmd_assignment_is_aligned_with_input() {
        // Each rank keeps its own input slice; the returned assignment must
        // be positionally aligned (verified through block geometric
        // coherence: a point and its block's center must be reasonably
        // close, which fails immediately under misalignment).
        let wp = uniform(2000, 2);
        let k = 4;
        let p = 4;
        let chunk = wp.len() / p;
        let pts = wp.points.clone();
        let results = run_spmd(p, |c| {
            let lo = c.rank() * chunk;
            let hi = lo + chunk;
            let w = vec![1.0; hi - lo];
            partition_spmd(&c, &pts[lo..hi], &w, k, &Config::default())
        });
        for (r, res) in results.iter().enumerate() {
            assert_eq!(res.assignment.len(), chunk);
            for (i, &b) in res.assignment.iter().enumerate() {
                let pnt = pts[r * chunk + i];
                let center = res.centers[b as usize];
                assert!(
                    pnt.dist(&center) < 0.9,
                    "rank {r} point {i} absurdly far from its center"
                );
            }
        }
        // All ranks must agree on centers.
        for res in &results[1..] {
            assert_eq!(res.centers.len(), results[0].centers.len());
        }
    }

    #[test]
    fn spmd_and_serial_agree_globally() {
        // The pipeline is rank-count invariant by construction (global
        // sort, identical center seeds, collective-driven iterations) as
        // long as sampling init is off (its permutation is rank-local).
        let wp = uniform(1200, 3);
        let k = 5;
        let cfg = Config { sampling_init: false, ..Config::default() };
        let serial = partition(&wp, k, &cfg);
        let pts = wp.points.clone();
        let results = run_spmd(3, |c| {
            let chunk = pts.len() / 3;
            let lo = c.rank() * chunk;
            let hi = lo + chunk;
            let w = vec![1.0; hi - lo];
            partition_spmd(&c, &pts[lo..hi], &w, k, &cfg)
        });
        let distributed: Vec<u32> =
            results.into_iter().flat_map(|r| r.assignment).collect();
        assert_eq!(distributed, serial.assignment);
    }

    #[test]
    fn weighted_pipeline_balances_weight_not_count() {
        let mut rng = SplitMix64::new(4);
        let n = 2000;
        let points: Vec<Point<2>> =
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        // Left half heavy.
        let weights: Vec<f64> =
            points.iter().map(|p| if p[0] < 0.5 { 10.0 } else { 1.0 }).collect();
        let wp = WeightedPoints::new(points, weights.clone());
        let k = 4;
        let cfg = Config::default();
        let res = partition(&wp, k, &cfg);
        let mut bw = vec![0.0; k];
        for (&b, &w) in res.assignment.iter().zip(&weights) {
            bw[b as usize] += w;
        }
        let total: f64 = weights.iter().sum();
        let max = bw.iter().cloned().fold(0.0, f64::max);
        assert!(max / (total / k as f64) - 1.0 <= cfg.epsilon + 1e-9, "{bw:?}");
    }

    #[test]
    fn three_d_pipeline() {
        let mut rng = SplitMix64::new(5);
        let pts: Vec<Point<3>> = (0..1500)
            .map(|_| Point::new([rng.next_f64(), rng.next_f64(), rng.next_f64()]))
            .collect();
        let wp = WeightedPoints::unweighted(pts);
        let res = partition(&wp, 6, &Config::default());
        let mut sizes = vec![0usize; 6];
        for &b in &res.assignment {
            sizes[b as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0));
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / (1500.0 / 6.0) - 1.0 <= 0.03 + 1e-9, "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "geographer config: k = 13 exceeds global point count n = 12")]
    fn k_above_n_panics_with_the_canonical_message() {
        let wp = uniform(12, 6);
        let _ = partition(&wp, 13, &Config::default());
    }

    #[test]
    fn k_equal_n_every_point_its_own_block() {
        let wp = uniform(12, 6);
        let res = partition(&wp, 12, &Config { max_iterations: 5, ..Config::default() });
        let mut seen = vec![0usize; 12];
        for &b in &res.assignment {
            seen[b as usize] += 1;
        }
        // ε = 3 % with unit weights and k = n means every block has exactly
        // one point.
        assert_eq!(seen, vec![1; 12], "{seen:?}");
    }
}
