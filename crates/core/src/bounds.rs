//! Hamerly-style distance bounds, adapted to effective distances
//! (Sec. 4.3 of the paper, with corrected relaxation formulas).
//!
//! For each point `p` with assigned cluster `c = A(p)` we keep
//!
//! * `ub(p)` — an upper bound on `effdist(p, c) = dist(p, center(c))/I(c)`;
//! * `lb(p)` — a lower bound on the smallest effective distance from `p`
//!   to any *other* cluster.
//!
//! If `ub(p) < lb(p)`, no other cluster can beat the current assignment and
//! the whole inner loop over centers is skipped (Algorithm 1, line 9).
//!
//! When center `c` moves by `δ(c)` and its influence changes from `I` to
//! `I'`, the true effective distances change; the bounds must be *relaxed*
//! to remain valid:
//!
//! * new own distance: `dist'/I' ≤ (dist + δ)/I' = (dist/I)·(I/I') + δ/I'`,
//!   so `ub' = ub·(I/I') + δ/I'`;
//! * for every other cluster `c'`:
//!   `dist'/I' ≥ (dist − δ(c'))/I'(c') ≥ lb·min_ratio − max_shift`
//!   with `min_ratio = min_{c'} I(c')/I'(c')` and
//!   `max_shift = max_{c'} δ(c')/I'(c')`, so
//!   `lb' = max(0, lb·min_ratio − max_shift)`.
//!
//! The paper's Eqs. (4)–(5) print the opposite signs (they would *tighten*
//! the bounds on movement, making the skip unsound); see DESIGN.md,
//! errata 2–3. The property tests in `tests/bound_soundness.rs` verify the
//! versions here against brute force.

/// Per-cluster relaxation inputs for one update step.
#[derive(Debug, Clone)]
pub struct Relaxation {
    /// Per-cluster `I_old/I_new` (1.0 when influence unchanged).
    pub ratio: Vec<f64>,
    /// Per-cluster `δ/I_new` (0.0 when the center did not move).
    pub shift: Vec<f64>,
}

impl Relaxation {
    /// Empty relaxation scratch with room for `k` clusters, to be refilled
    /// in place by [`Relaxation::set_influence_only`] /
    /// [`Relaxation::set_movement`] every iteration — the solver owns one
    /// and the update loops allocate nothing.
    pub fn with_capacity(k: usize) -> Self {
        Relaxation { ratio: Vec::with_capacity(k), shift: Vec::with_capacity(k) }
    }

    /// Relaxation for an influence-only change (no center movement).
    pub fn influence_only(old_influence: &[f64], new_influence: &[f64]) -> Self {
        let mut r = Relaxation::with_capacity(old_influence.len());
        r.set_influence_only(old_influence, new_influence);
        r
    }

    /// Refill as an influence-only relaxation, reusing the buffers.
    pub fn set_influence_only(&mut self, old_influence: &[f64], new_influence: &[f64]) {
        debug_assert_eq!(old_influence.len(), new_influence.len());
        self.ratio.clear();
        self.ratio.extend(old_influence.iter().zip(new_influence).map(|(o, n)| o / n));
        self.shift.clear();
        self.shift.resize(old_influence.len(), 0.0);
    }

    /// Relaxation for center movement `delta[c]` combined with an influence
    /// change.
    pub fn movement(
        delta: &[f64],
        old_influence: &[f64],
        new_influence: &[f64],
    ) -> Self {
        let mut r = Relaxation::with_capacity(delta.len());
        r.set_movement(delta, old_influence, new_influence);
        r
    }

    /// Refill as a movement relaxation, reusing the buffers.
    pub fn set_movement(
        &mut self,
        delta: &[f64],
        old_influence: &[f64],
        new_influence: &[f64],
    ) {
        debug_assert_eq!(delta.len(), old_influence.len());
        debug_assert_eq!(delta.len(), new_influence.len());
        self.ratio.clear();
        self.ratio.extend(old_influence.iter().zip(new_influence).map(|(o, n)| o / n));
        self.shift.clear();
        self.shift.extend(delta.iter().zip(new_influence).map(|(d, n)| d / n));
    }

    /// The scalar pair used for the lower bound: worst-case ratio and shift
    /// over all clusters.
    pub fn lb_scalars(&self) -> (f64, f64) {
        let min_ratio = self.ratio.iter().copied().fold(f64::INFINITY, f64::min);
        let max_shift = self.shift.iter().copied().fold(0.0, f64::max);
        (min_ratio, max_shift)
    }

    /// Relax the bound arrays in place. `assignment[p]` selects the own
    /// cluster of point `p`. Only the first `active` points are touched
    /// (the sampling initialization keeps trailing points inactive).
    pub fn apply(&self, ub: &mut [f64], lb: &mut [f64], assignment: &[u32], active: usize) {
        let (min_ratio, max_shift) = self.lb_scalars();
        for p in 0..active {
            let c = assignment[p] as usize;
            ub[p] = ub[p] * self.ratio[c] + self.shift[c];
            lb[p] = (lb[p] * min_ratio - max_shift).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influence_only_has_zero_shift() {
        let r = Relaxation::influence_only(&[1.0, 2.0], &[2.0, 1.0]);
        assert_eq!(r.ratio, vec![0.5, 2.0]);
        assert_eq!(r.shift, vec![0.0, 0.0]);
        let (mr, ms) = r.lb_scalars();
        assert_eq!(mr, 0.5);
        assert_eq!(ms, 0.0);
    }

    #[test]
    fn movement_combines_delta_and_influence() {
        let r = Relaxation::movement(&[0.5, 0.0], &[1.0, 1.0], &[2.0, 1.0]);
        assert_eq!(r.ratio, vec![0.5, 1.0]);
        assert_eq!(r.shift, vec![0.25, 0.0]);
    }

    #[test]
    fn apply_respects_assignment_and_active_window() {
        let r = Relaxation::movement(&[1.0, 0.0], &[1.0, 1.0], &[1.0, 1.0]);
        let mut ub = vec![2.0, 2.0, 2.0];
        let mut lb = vec![3.0, 3.0, 3.0];
        let assignment = vec![0, 1, 0];
        r.apply(&mut ub, &mut lb, &assignment, 2);
        // Point 0 in cluster 0 (moved by 1): ub grows.
        assert_eq!(ub[0], 3.0);
        // Point 1 in cluster 1 (stationary): ub unchanged.
        assert_eq!(ub[1], 2.0);
        // lb shrinks by the max shift for everyone active.
        assert_eq!(lb[0], 2.0);
        assert_eq!(lb[1], 2.0);
        // Inactive point untouched.
        assert_eq!(ub[2], 2.0);
        assert_eq!(lb[2], 3.0);
    }

    #[test]
    fn lb_never_negative() {
        let r = Relaxation::movement(&[100.0], &[1.0], &[1.0]);
        let mut ub = vec![1.0];
        let mut lb = vec![0.5];
        r.apply(&mut ub, &mut lb, &[0], 1);
        assert_eq!(lb[0], 0.0);
    }

    /// Brute-force soundness on random perturbations: after relaxing, the
    /// bounds still bracket the true effective distances.
    #[test]
    fn bounds_stay_sound_under_random_updates() {
        use geographer_geometry::{Point, SplitMix64};
        let mut rng = SplitMix64::new(42);
        let k = 5usize;
        let n = 60usize;
        let points: Vec<Point<2>> =
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let mut centers: Vec<Point<2>> =
            (0..k).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let mut infl = vec![1.0f64; k];

        // Exact initial bounds.
        let eff = |p: &Point<2>, c: &Point<2>, i: f64| p.dist(c) / i;
        let mut assignment = vec![0u32; n];
        let mut ub = vec![0.0f64; n];
        let mut lb = vec![0.0f64; n];
        for p in 0..n {
            let mut best = (f64::INFINITY, 0usize);
            let mut second = f64::INFINITY;
            for c in 0..k {
                let e = eff(&points[p], &centers[c], infl[c]);
                if e < best.0 {
                    second = best.0;
                    best = (e, c);
                } else if e < second {
                    second = e;
                }
            }
            assignment[p] = best.1 as u32;
            ub[p] = best.0;
            lb[p] = second;
        }

        for _round in 0..30 {
            // Random center movement + influence perturbation.
            let old_infl = infl.clone();
            let mut delta = vec![0.0f64; k];
            for c in 0..k {
                let dx = (rng.next_f64() - 0.5) * 0.1;
                let dy = (rng.next_f64() - 0.5) * 0.1;
                let moved = Point::new([centers[c][0] + dx, centers[c][1] + dy]);
                delta[c] = centers[c].dist(&moved);
                centers[c] = moved;
                infl[c] *= 1.0 + (rng.next_f64() - 0.5) * 0.1;
            }
            let relax = Relaxation::movement(&delta, &old_infl, &infl);
            relax.apply(&mut ub, &mut lb, &assignment, n);

            for p in 0..n {
                let own = assignment[p] as usize;
                let true_own = eff(&points[p], &centers[own], infl[own]);
                assert!(
                    ub[p] >= true_own - 1e-9,
                    "ub violated: {} < {true_own}",
                    ub[p]
                );
                let true_second = (0..k)
                    .filter(|&c| c != own)
                    .map(|c| eff(&points[p], &centers[c], infl[c]))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    lb[p] <= true_second + 1e-9,
                    "lb violated: {} > {true_second}",
                    lb[p]
                );
            }
        }
    }
}
