//! Cluster influence values: the balancing mechanism of Sec. 4.2.
//!
//! Each cluster `c` carries an influence `I(c) > 0`; points are assigned by
//! minimizing the *effective distance* `dist(p, center(c)) / I(c)`, which
//! turns the assignment into a multiplicatively weighted Voronoi diagram.
//! Growing `I(c)` grows the cluster, shrinking it starves it.
//!
//! # Adaptation (paper Eq. 1, sign corrected)
//!
//! Under roughly uniform density a cluster's weight scales like `I(c)^d`
//! (its Voronoi cell radius scales linearly with `I`, volume with the d-th
//! power). To move a cluster of current weight `s` to target weight `t`,
//! set `γ = t/s` and update `I ← I · γ^(1/d)`. The paper's Eq. (1) prints a
//! division, but its own follow-up algebra (`new size = γ · size_old`) and
//! the hypersphere argument require the multiplication implemented here
//! (see DESIGN.md, erratum 1). The per-step change is clamped to
//! `[1/(1+cap), 1+cap]` (cap = 5 %) to prevent oscillation.
//!
//! # Erosion (paper Eqs. 2–3)
//!
//! After a center moves distance δ, its influence regresses toward 1 by the
//! sigmoid factor `α = 2/(1+exp(−δ/β)) − 1`, i.e.
//! `I ← exp((1−α)·ln I)` — an influence tuned for one neighbourhood is not
//! appropriate for another.

/// Multiplicative update factor for a cluster with weight ratio
/// `gamma = target/current`, clamped to a `cap` relative change.
/// `dim` is the geometric dimension d.
pub fn adapt_factor(gamma: f64, dim: usize, cap: f64) -> f64 {
    debug_assert!(cap > 0.0 && cap < 1.0);
    if !gamma.is_finite() || gamma <= 0.0 {
        // Empty cluster (current weight 0 → γ = ∞): grow at the cap.
        return 1.0 + cap;
    }
    gamma.powf(1.0 / dim as f64).clamp(1.0 / (1.0 + cap), 1.0 + cap)
}

/// Adapt a whole influence vector toward its targets in place (Eq. 1 over
/// every cluster): `influence[c] *= adapt_factor(target_c/sizes[c], dim,
/// cap)` with `target_c = total · fractions[c]`. Allocation-free — the
/// solver calls this once per balance iteration, keeping the previous
/// values in its own scratch for the bound relaxation that follows.
pub fn adapt_influences(
    influence: &mut [f64],
    sizes: &[f64],
    fractions: &[f64],
    total: f64,
    dim: usize,
    cap: f64,
) {
    debug_assert_eq!(influence.len(), sizes.len());
    debug_assert_eq!(influence.len(), fractions.len());
    for c in 0..influence.len() {
        let target = total * fractions[c];
        let gamma = if sizes[c] > 0.0 { target / sizes[c] } else { f64::INFINITY };
        influence[c] *= adapt_factor(gamma, dim, cap);
    }
}

/// Erosion factor α(c) ∈ [0, 1) for a center that moved distance `delta`,
/// with neighbourhood scale `beta` (paper's β(C), the average cluster
/// diameter; we use a deterministic proxy, see [`crate::kmeans`]).
pub fn erosion_alpha(delta: f64, beta: f64) -> f64 {
    if beta <= 0.0 || delta <= 0.0 {
        return 0.0;
    }
    // Eq. (2): α = 2/(1+exp(min(−δ/β, 0))) − 1. δ, β > 0 so the min is
    // always −δ/β.
    2.0 / (1.0 + (-delta / beta).exp()) - 1.0
}

/// Apply erosion (Eq. 3): regress `influence` toward 1 by `alpha`.
pub fn erode(influence: f64, alpha: f64) -> f64 {
    debug_assert!(influence > 0.0);
    debug_assert!((0.0..=1.0).contains(&alpha));
    ((1.0 - alpha) * influence.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_cluster_shrinks_influence() {
        // Current weight twice the target: γ = 0.5 < 1 ⇒ factor < 1.
        let f = adapt_factor(0.5, 2, 0.5);
        assert!(f < 1.0, "oversized cluster must lose influence, got {f}");
        assert!((f - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn undersized_cluster_grows_influence() {
        let f = adapt_factor(2.0, 2, 0.5);
        assert!((f - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cap_limits_change() {
        assert_eq!(adapt_factor(1e9, 2, 0.05), 1.05);
        assert_eq!(adapt_factor(1e-9, 2, 0.05), 1.0 / 1.05);
    }

    #[test]
    fn empty_cluster_grows_at_cap() {
        assert_eq!(adapt_factor(f64::INFINITY, 3, 0.05), 1.05);
        assert_eq!(adapt_factor(f64::NAN, 3, 0.05), 1.05);
    }

    #[test]
    fn dimension_scales_exponent() {
        // In 3D the same γ produces a smaller correction than in 2D.
        let f2 = adapt_factor(0.5, 2, 0.9);
        let f3 = adapt_factor(0.5, 3, 0.9);
        assert!(f3 > f2);
        assert!((f3 - 0.5f64.powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn model_consistency_size_converges() {
        // The model: size' = size · factor^d. One uncapped update must land
        // exactly on the target.
        let (size, target, d) = (300.0, 100.0, 2usize);
        let f = adapt_factor(target / size, d, 0.99);
        let new_size = size * f.powi(d as i32);
        assert!((new_size - target).abs() < 1e-9);
    }

    #[test]
    fn adapt_influences_matches_scalar_loop() {
        let sizes = [300.0, 100.0, 0.0];
        let fractions = [0.5, 0.25, 0.25];
        let total: f64 = sizes.iter().sum();
        let mut infl = [1.0, 2.0, 0.5];
        adapt_influences(&mut infl, &sizes, &fractions, total, 2, 0.05);
        for (c, (&s, &f)) in sizes.iter().zip(&fractions).enumerate() {
            let gamma = if s > 0.0 { total * f / s } else { f64::INFINITY };
            let expect = [1.0, 2.0, 0.5][c] * adapt_factor(gamma, 2, 0.05);
            assert_eq!(infl[c], expect, "cluster {c}");
        }
        // The empty cluster grew at the cap.
        assert_eq!(infl[2], 0.5 * 1.05);
    }

    #[test]
    fn alpha_zero_for_stationary_center() {
        assert_eq!(erosion_alpha(0.0, 1.0), 0.0);
        assert_eq!(erosion_alpha(1.0, 0.0), 0.0);
    }

    #[test]
    fn alpha_monotone_and_bounded() {
        let beta = 1.0;
        let mut last = 0.0;
        for i in 1..100 {
            let a = erosion_alpha(i as f64 * 0.2, beta);
            assert!(a > last, "α must increase with δ");
            assert!(a < 1.0, "α must stay below 1");
            last = a;
        }
        // Large movement ⇒ nearly full erosion.
        assert!(erosion_alpha(50.0, beta) > 0.999);
    }

    #[test]
    fn erode_moves_influence_toward_one() {
        assert!((erode(4.0, 0.0) - 4.0).abs() < 1e-12, "α=0 is a no-op");
        assert!((erode(4.0, 1.0) - 1.0).abs() < 1e-12, "α=1 resets to 1");
        let half = erode(4.0, 0.5);
        assert!((half - 2.0).abs() < 1e-12, "α=0.5 halves the log: {half}");
        // Works from below 1 as well.
        assert!((erode(0.25, 0.5) - 0.5).abs() < 1e-12);
    }
}
