//! Hierarchical processor-aware partitioning.
//!
//! The paper's tool targets *hierarchical* machines: blocks are mapped onto
//! a processor hierarchy (nodes × sockets × cores), so the expensive cut
//! should land on the cheap links — most boundary traffic between blocks
//! that share a node, little between nodes. [`HierarchySpec`] describes
//! such a hierarchy (e.g. `[4, 2]` = 4 nodes × 2 cores each, optionally
//! with per-level capacity fractions and a per-level ε), and
//! [`partition_hierarchical_spmd`] solves it recursively: partition into
//! the level-0 groups with the existing pipeline, then recurse *inside*
//! each group, flattening leaf paths to flat block ids in mixed-radix
//! (path-lexicographic) order. Because the flattening is lexicographic,
//! sibling leaves get *contiguous* flat ids, so the contiguous
//! block-to-rank mapping of `geographer_spmv` keeps subtrees together on
//! a node for free.
//!
//! Every node solve records its `(centers, influence)` pair, so a later
//! [`repartition_hierarchical_spmd`] warm-starts each node the same way
//! flat repartitioning does. See DESIGN.md §6 for the contract (per-level
//! ε semantics, warm-state reuse, per-level metric definitions).

use geographer_geometry::{Point, WeightedPoints};
use geographer_parcomm::{Comm, SelfComm};

use crate::config::Config;
use crate::kmeans::KMeansStats;
use crate::pipeline::partition_spmd;
use crate::repartition::{repartition_spmd, PreviousPartition};

/// One level of a processor hierarchy.
#[derive(Debug, Clone)]
pub struct LevelSpec {
    /// Children per node at this level (4 nodes, 2 sockets, …).
    pub arity: usize,
    /// Per-level imbalance bound; `None` inherits the solve's
    /// `cfg.epsilon`. The bound is *relative to the parent group's
    /// weight*: every level-`l` group must weigh at most
    /// `max((1+ε_l)·target, target + w_max)` where `target` is its share
    /// of its parent's weight (see DESIGN.md §6 on how bounds compound
    /// across levels).
    pub epsilon: Option<f64>,
    /// Per-child capacity fractions (length = `arity`, positive, need not
    /// sum to 1 — they are normalized); `None` = uniform `1/arity`. Every
    /// node at this level uses the same fractions — the hierarchy is
    /// homogeneous per level, like the machines it models.
    pub fractions: Option<Vec<f64>>,
}

impl LevelSpec {
    /// Uniform level: equal capacity children, inherited ε.
    pub fn uniform(arity: usize) -> Self {
        LevelSpec { arity, epsilon: None, fractions: None }
    }
}

/// A processor hierarchy: one [`LevelSpec`] per level, outermost (most
/// expensive links) first. `HierarchySpec::uniform(&[4, 2])` is 4 nodes of
/// 2 cores; the flat block count is the product of the arities.
#[derive(Debug, Clone)]
pub struct HierarchySpec {
    /// The levels, outermost first.
    pub levels: Vec<LevelSpec>,
}

impl HierarchySpec {
    /// Uniform hierarchy from arities alone (no per-level ε/fractions).
    pub fn uniform(arities: &[usize]) -> Self {
        HierarchySpec { levels: arities.iter().map(|&a| LevelSpec::uniform(a)).collect() }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The arities alone, outermost first.
    pub fn arities(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.arity).collect()
    }

    /// Total number of leaf blocks: the product of the arities.
    pub fn total_blocks(&self) -> usize {
        self.levels.iter().map(|l| l.arity).product()
    }

    /// Number of groups at `level` (level 0 = outermost): the product of
    /// the arities up to and including that level.
    pub fn groups_at(&self, level: usize) -> usize {
        self.levels[..=level].iter().map(|l| l.arity).product()
    }

    /// Sanity-check the spec.
    ///
    /// # Panics
    /// With a `geographer config:`-prefixed message on an empty spec, a
    /// zero arity, a negative per-level ε, or fractions that are empty,
    /// non-positive, or of the wrong length.
    pub fn validate(&self) {
        assert!(!self.levels.is_empty(), "geographer config: hierarchy must have at least one level");
        for (l, lv) in self.levels.iter().enumerate() {
            assert!(lv.arity >= 1, "geographer config: hierarchy level {l} arity must be at least 1");
            if let Some(e) = lv.epsilon {
                assert!(e >= 0.0, "geographer config: hierarchy level {l} epsilon must be non-negative");
            }
            if let Some(f) = &lv.fractions {
                assert!(
                    f.len() == lv.arity,
                    "geographer config: hierarchy level {l} fractions length must equal arity \
                     (got {}, arity = {})",
                    f.len(),
                    lv.arity
                );
                assert!(
                    f.iter().all(|x| x.is_finite() && *x > 0.0),
                    "geographer config: hierarchy level {l} fractions must be positive"
                );
            }
        }
    }

    /// Hierarchy path of flat leaf block `b`: the child index taken at
    /// every level, outermost first (mixed-radix digits of `b`).
    pub fn path_of_block(&self, b: u32) -> Vec<u32> {
        assert!((b as usize) < self.total_blocks(), "block id {b} out of range");
        let mut rem = b as usize;
        let mut path = vec![0u32; self.depth()];
        for (l, lv) in self.levels.iter().enumerate().rev() {
            path[l] = (rem % lv.arity) as u32;
            rem /= lv.arity;
        }
        path
    }

    /// Flat leaf block id of a full hierarchy path (inverse of
    /// [`Self::path_of_block`]). Leaf paths in lexicographic order map to
    /// increasing flat ids.
    pub fn block_of_path(&self, path: &[u32]) -> u32 {
        assert_eq!(path.len(), self.depth(), "path length must equal hierarchy depth");
        let mut b = 0usize;
        for (lv, &c) in self.levels.iter().zip(path) {
            assert!((c as usize) < lv.arity, "path digit {c} out of range");
            b = b * lv.arity + c as usize;
        }
        b as u32
    }

    /// For every level `l`, the map from flat leaf block id to its level-`l`
    /// ancestor group (groups numbered in path-lexicographic order,
    /// `0..groups_at(l)`). This is the coarsening `geographer_graph`'s
    /// per-level metrics consume.
    pub fn level_groups(&self) -> Vec<Vec<u32>> {
        let total = self.total_blocks();
        (0..self.depth())
            .map(|l| {
                let below: usize =
                    self.levels[l + 1..].iter().map(|lv| lv.arity).product();
                (0..total).map(|b| (b / below) as u32).collect()
            })
            .collect()
    }
}

/// The replicated solver state of one internal node of a hierarchical
/// solve: the node's path prefix plus the `(centers, influence)` pair of
/// its child split.
#[derive(Debug, Clone)]
pub struct NodeState<const D: usize> {
    /// Path from the root to this node (empty = root).
    pub path: Vec<u32>,
    /// Warm-start state of the node's child solve.
    pub state: PreviousPartition<D>,
}

/// The reusable state of a whole hierarchical solve: one
/// [`PreviousPartition`] per internal node, in depth-first pre-order (the
/// order the recursion visits them — fixed by the spec, so a warm re-solve
/// can consume them sequentially).
#[derive(Debug, Clone)]
pub struct PreviousHierarchy<const D: usize> {
    /// Arities of the spec this state was produced under.
    pub arities: Vec<usize>,
    /// Per-node warm state in pre-order.
    pub nodes: Vec<NodeState<D>>,
}

/// Result of a hierarchical solve on one rank.
#[derive(Debug, Clone)]
pub struct HierarchicalResult<const D: usize> {
    /// Flat leaf block id of every rank-local input point, in input order.
    pub assignment: Vec<u32>,
    /// Hierarchy path of every flat block id (`paths[b] =
    /// spec.path_of_block(b)` — the block→hierarchy-path map).
    pub paths: Vec<Vec<u32>>,
    /// Reusable per-node warm state for [`repartition_hierarchical_spmd`].
    pub previous: PreviousHierarchy<D>,
    /// Work counters aggregated over all node solves (iterations and
    /// per-point counters summed; `converged`/`balance_achieved` are the
    /// conjunction; `final_imbalance` the worst node-local value).
    pub stats: KMeansStats,
    /// Worst node-local imbalance per level (each node's imbalance is
    /// relative to its own per-child targets).
    pub level_imbalance: Vec<f64>,
    /// Sum of the paper-comparable per-node pipeline times.
    pub seconds: f64,
}

/// Walk state threaded through the recursion.
struct Walk<'a, const D: usize> {
    points: &'a [Point<D>],
    weights: &'a [f64],
    spec: &'a HierarchySpec,
    cfg: &'a Config,
    /// Warm state to consume (pre-order), if any.
    prev: Option<&'a [NodeState<D>]>,
    /// Next pre-order node to consume from `prev`.
    cursor: usize,
    nodes: Vec<NodeState<D>>,
    stats: KMeansStats,
    level_imbalance: Vec<f64>,
    seconds: f64,
}

impl<const D: usize> Walk<'_, D> {
    fn merge_stats(&mut self, s: &KMeansStats, level: usize) {
        let t = &mut self.stats;
        t.movement_iterations += s.movement_iterations;
        t.balance_iterations += s.balance_iterations;
        t.distance_evals += s.distance_evals;
        t.hamerly_skips += s.hamerly_skips;
        t.bbox_breaks += s.bbox_breaks;
        t.points_visited += s.points_visited;
        t.assignment_seconds += s.assignment_seconds;
        t.converged &= s.converged;
        t.balance_achieved &= s.balance_achieved;
        t.final_imbalance = t.final_imbalance.max(s.final_imbalance);
        self.level_imbalance[level] = self.level_imbalance[level].max(s.final_imbalance);
    }
}

/// Solve the subtree rooted at `path` (at `level`) over the local member
/// points `idx`, writing flat leaf ids into `assignment`. `base` is the
/// flat id of the subtree's first leaf. Collective: every rank recurses
/// through the same tree in the same order.
fn solve_node<const D: usize, C: Comm>(
    comm: &C,
    idx: &[u32],
    level: usize,
    path: &mut Vec<u32>,
    base: u32,
    assignment: &mut [u32],
    walk: &mut Walk<'_, D>,
) {
    let lv = &walk.spec.levels[level];
    let level_cfg = walk.cfg.for_level(lv.epsilon, lv.fractions.clone());
    let sub_points: Vec<Point<D>> =
        idx.iter().map(|&i| walk.points[i as usize]).collect();
    let sub_weights: Vec<f64> = idx.iter().map(|&i| walk.weights[i as usize]).collect();

    let res = match walk.prev {
        Some(nodes) => {
            let node = &nodes[walk.cursor];
            assert_eq!(
                node.path, *path,
                "previous hierarchy state out of order (corrupted pre-order)"
            );
            repartition_spmd(comm, &sub_points, &sub_weights, &node.state, lv.arity, &level_cfg)
        }
        None => partition_spmd(comm, &sub_points, &sub_weights, lv.arity, &level_cfg),
    };
    walk.cursor += 1;
    walk.merge_stats(&res.stats, level);
    walk.seconds += res.timings.total();
    walk.nodes.push(NodeState { path: path.clone(), state: res.previous() });

    // Stride between consecutive children's first leaves.
    let below: usize = walk.spec.levels[level + 1..].iter().map(|l| l.arity).product();
    if level + 1 == walk.spec.depth() {
        for (&i, &c) in idx.iter().zip(&res.assignment) {
            assignment[i as usize] = base + c;
        }
        return;
    }
    for c in 0..lv.arity as u32 {
        let child_idx: Vec<u32> = idx
            .iter()
            .zip(&res.assignment)
            .filter(|&(_, &a)| a == c)
            .map(|(&i, _)| i)
            .collect();
        path.push(c);
        solve_node(comm, &child_idx, level + 1, path, base + c * below as u32, assignment, walk);
        path.pop();
    }
}

fn run_hierarchical<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    spec: &HierarchySpec,
    cfg: &Config,
    prev: Option<&PreviousHierarchy<D>>,
) -> HierarchicalResult<D> {
    spec.validate();
    cfg.validate();
    assert!(
        cfg.target_fractions.is_none(),
        "geographer config: hierarchical solves take capacity fractions from the \
         HierarchySpec's levels; Config::target_fractions must be None"
    );
    assert_eq!(points.len(), weights.len());
    if let Some(p) = prev {
        assert_eq!(
            p.arities,
            spec.arities(),
            "previous hierarchy state must match the spec's arities"
        );
        // One node per internal tree node: Σ_l Π_{i<l} arity_i.
        let want: usize = (0..spec.depth())
            .map(|l| if l == 0 { 1 } else { spec.groups_at(l - 1) })
            .sum();
        assert_eq!(p.nodes.len(), want, "previous hierarchy state has wrong node count");
    }

    let mut walk = Walk {
        points,
        weights,
        spec,
        cfg,
        prev: prev.map(|p| p.nodes.as_slice()),
        cursor: 0,
        nodes: Vec::new(),
        stats: KMeansStats { converged: true, balance_achieved: true, ..KMeansStats::default() },
        level_imbalance: vec![0.0; spec.depth()],
        seconds: 0.0,
    };
    let mut assignment = vec![0u32; points.len()];
    let all: Vec<u32> = (0..points.len() as u32).collect();
    let mut path = Vec::new();
    solve_node(comm, &all, 0, &mut path, 0, &mut assignment, &mut walk);

    let total = spec.total_blocks() as u32;
    HierarchicalResult {
        assignment,
        paths: (0..total).map(|b| spec.path_of_block(b)).collect(),
        previous: PreviousHierarchy { arities: spec.arities(), nodes: walk.nodes },
        stats: walk.stats,
        level_imbalance: walk.level_imbalance,
        seconds: walk.seconds,
    }
}

/// Partition a distributed point set for a processor hierarchy (SPMD
/// collective call): solve level 0 with the full Geographer pipeline, then
/// recurse inside each group with per-level ε/fractions from `spec`.
///
/// The returned assignment is input-aligned and carries flat leaf block
/// ids (`0..spec.total_blocks()`, path-lexicographic).
///
/// # Panics
/// On an invalid `spec`/`cfg`, on inconsistent input lengths, if
/// `cfg.target_fractions` is set (per-level capacity fractions live in
/// the spec's [`LevelSpec::fractions`], and silently ignoring the flat
/// field would discard a requested balance), or — via the canonical
/// [`crate::validate_k`] message — if any node's global member count
/// drops below its arity.
pub fn partition_hierarchical_spmd<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    spec: &HierarchySpec,
    cfg: &Config,
) -> HierarchicalResult<D> {
    run_hierarchical(comm, points, weights, spec, cfg, None)
}

/// Warm-started hierarchical repartitioning: every node solve resumes from
/// the `(centers, influence)` pair the previous hierarchical solve stored
/// for that node, so an unchanged point set reproduces its assignment and
/// a drifting one re-balances with low migration at *every* level —
/// the flat warm-start contract of DESIGN.md §5, applied per node.
///
/// `prev` must come from a solve with the same arities (per-level ε and
/// fractions may differ). Same collective contract as
/// [`partition_hierarchical_spmd`].
pub fn repartition_hierarchical_spmd<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    prev: &PreviousHierarchy<D>,
    spec: &HierarchySpec,
    cfg: &Config,
) -> HierarchicalResult<D> {
    run_hierarchical(comm, points, weights, spec, cfg, Some(prev))
}

/// Shared-memory convenience wrapper around
/// [`partition_hierarchical_spmd`] (single rank), mirroring
/// [`crate::partition`].
pub fn partition_hierarchical<const D: usize>(
    pts: &WeightedPoints<D>,
    spec: &HierarchySpec,
    cfg: &Config,
) -> HierarchicalResult<D> {
    partition_hierarchical_spmd(&SelfComm, &pts.points, &pts.weights, spec, cfg)
}

/// Shared-memory convenience wrapper around
/// [`repartition_hierarchical_spmd`] (single rank), mirroring
/// [`crate::repartition`].
pub fn repartition_hierarchical<const D: usize>(
    pts: &WeightedPoints<D>,
    prev: &PreviousHierarchy<D>,
    spec: &HierarchySpec,
    cfg: &Config,
) -> HierarchicalResult<D> {
    repartition_hierarchical_spmd(&SelfComm, &pts.points, &pts.weights, prev, spec, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::run_spmd;

    fn uniform(n: usize, seed: u64) -> WeightedPoints<2> {
        let mut rng = SplitMix64::new(seed);
        WeightedPoints::unweighted(
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect(),
        )
    }

    /// Per-level balance check straight off the assignment: every level-l
    /// group must be within its bound *relative to its parent's weight*.
    fn assert_levels_balanced(
        asg: &[u32],
        weights: &[f64],
        spec: &HierarchySpec,
        eps_of: impl Fn(usize) -> f64,
    ) {
        let groups = spec.level_groups();
        let w_max = weights.iter().copied().fold(0.0, f64::max);
        // Parent weight at level 0 is the total.
        let mut parent_w = vec![weights.iter().sum::<f64>()];
        for (l, map) in groups.iter().enumerate() {
            let g = spec.groups_at(l);
            let mut gw = vec![0.0f64; g];
            for (&b, &w) in asg.iter().zip(weights) {
                gw[map[b as usize] as usize] += w;
            }
            let arity = spec.levels[l].arity;
            let eps = eps_of(l);
            for (gi, &w) in gw.iter().enumerate() {
                let target = parent_w[gi / arity] / arity as f64;
                let allowed = ((1.0 + eps) * target).max(target + w_max);
                assert!(
                    w <= allowed + 1e-9,
                    "level {l} group {gi}: weight {w} > allowed {allowed}"
                );
            }
            parent_w = gw;
        }
    }

    #[test]
    fn path_block_roundtrip_and_lexicographic_order() {
        for spec in [
            HierarchySpec::uniform(&[4, 2]),
            HierarchySpec::uniform(&[2, 2, 2]),
            HierarchySpec::uniform(&[3, 5]),
            HierarchySpec::uniform(&[1, 4]),
            HierarchySpec::uniform(&[6]),
        ] {
            let total = spec.total_blocks() as u32;
            let mut prev_path: Option<Vec<u32>> = None;
            for b in 0..total {
                let path = spec.path_of_block(b);
                assert_eq!(spec.block_of_path(&path), b);
                if let Some(p) = prev_path {
                    assert!(p < path, "paths must be lexicographically increasing");
                }
                prev_path = Some(path);
            }
        }
    }

    #[test]
    fn level_groups_are_path_prefixes() {
        let spec = HierarchySpec::uniform(&[3, 2, 2]);
        let groups = spec.level_groups();
        for b in 0..spec.total_blocks() as u32 {
            let path = spec.path_of_block(b);
            // Group id at level l is the flat number of the path prefix.
            let mut acc = 0usize;
            for (l, lv) in spec.levels.iter().enumerate() {
                acc = acc * lv.arity + path[l] as usize;
                assert_eq!(groups[l][b as usize], acc as u32, "level {l} block {b}");
            }
        }
        // Leaf level groups are the identity.
        let leaf = groups.last().unwrap();
        assert!(leaf.iter().enumerate().all(|(b, &g)| g == b as u32));
    }

    #[test]
    fn hierarchical_4x2_balances_every_level() {
        let wp = uniform(4000, 51);
        let spec = HierarchySpec::uniform(&[4, 2]);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let res = partition_hierarchical(&wp, &spec, &cfg);
        assert_eq!(res.assignment.len(), 4000);
        assert!(res.assignment.iter().all(|&b| b < 8));
        assert!(res.stats.balance_achieved, "every node solve must balance");
        assert_levels_balanced(&res.assignment, &wp.weights, &spec, |_| cfg.epsilon);
        assert_eq!(res.paths.len(), 8);
        assert_eq!(res.paths[5], vec![2, 1]);
        // 1 root + 4 level-0 nodes were solved.
        assert_eq!(res.previous.nodes.len(), 5);
        assert_eq!(res.level_imbalance.len(), 2);
    }

    #[test]
    fn per_level_epsilon_and_fractions_are_honored() {
        let wp = uniform(6000, 52);
        // Tight ε at the node level, loose inside; node capacities 2:1:1.
        let spec = HierarchySpec {
            levels: vec![
                LevelSpec {
                    arity: 3,
                    epsilon: Some(0.01),
                    fractions: Some(vec![2.0, 1.0, 1.0]),
                },
                LevelSpec { arity: 2, epsilon: Some(0.10), fractions: None },
            ],
        };
        let cfg = Config { sampling_init: false, max_iterations: 200, ..Config::default() };
        let res = partition_hierarchical(&wp, &spec, &cfg);
        assert!(res.stats.balance_achieved);
        // Level-0 group weights follow the 2:1:1 capacities within ε=1%.
        let groups = spec.level_groups();
        let mut gw = [0.0f64; 3];
        for (&b, &w) in res.assignment.iter().zip(&wp.weights) {
            gw[groups[0][b as usize] as usize] += w;
        }
        let total: f64 = wp.weights.iter().sum();
        for (gi, frac) in [0.5, 0.25, 0.25].into_iter().enumerate() {
            let target = total * frac;
            assert!(
                gw[gi] <= ((1.01) * target).max(target + 1.0) + 1e-9,
                "group {gi}: {} vs target {target}",
                gw[gi]
            );
        }
        assert!(gw[0] > 1.8 * gw[1], "big node really is about twice the small ones");
    }

    #[test]
    fn warm_restart_of_unchanged_input_is_a_fixed_point() {
        let wp = uniform(2400, 53);
        let spec = HierarchySpec::uniform(&[2, 2]);
        let cfg = Config { sampling_init: false, max_iterations: 200, ..Config::default() };
        let cold = partition_hierarchical(&wp, &spec, &cfg);
        assert!(cold.stats.converged, "cold solve must converge for the fixed-point contract");
        let warm = repartition_hierarchical(&wp, &cold.previous, &spec, &cfg);
        assert_eq!(warm.assignment, cold.assignment, "unchanged input must not migrate");
        // One movement iteration per node: 1 root + 2 children.
        assert_eq!(warm.stats.movement_iterations, 3);
    }

    #[test]
    fn warm_restart_tracks_drift_within_balance() {
        let wp = uniform(3000, 54);
        let spec = HierarchySpec::uniform(&[2, 2]);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let cold = partition_hierarchical(&wp, &spec, &cfg);
        let drifted = WeightedPoints::unweighted(
            wp.points.iter().map(|p| Point::new([p[0] + 0.008, p[1] - 0.004])).collect(),
        );
        let warm = repartition_hierarchical(&drifted, &cold.previous, &spec, &cfg);
        assert!(warm.stats.balance_achieved);
        assert_levels_balanced(&warm.assignment, &drifted.weights, &spec, |_| cfg.epsilon);
        let kept = warm
            .assignment
            .iter()
            .zip(&cold.assignment)
            .filter(|(a, b)| a == b)
            .count();
        assert!(kept as f64 / 3000.0 > 0.9, "rigid drift migrated {} points", 3000 - kept);
    }

    #[test]
    fn spmd_and_serial_hierarchical_agree() {
        let wp = uniform(1600, 55);
        let spec = HierarchySpec::uniform(&[2, 2]);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let serial = partition_hierarchical(&wp, &spec, &cfg);
        let pts = wp.points.clone();
        let spec2 = spec.clone();
        let results = run_spmd(4, move |c| {
            let chunk = pts.len() / 4;
            let lo = c.rank() * chunk;
            let hi = lo + chunk;
            let w = vec![1.0; hi - lo];
            partition_hierarchical_spmd(&c, &pts[lo..hi], &w, &spec2, &cfg).assignment
        });
        let distributed: Vec<u32> = results.into_iter().flatten().collect();
        assert_eq!(distributed, serial.assignment);
    }

    #[test]
    fn depth_one_matches_flat_partition() {
        let wp = uniform(1500, 56);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let spec = HierarchySpec::uniform(&[5]);
        let hier = partition_hierarchical(&wp, &spec, &cfg);
        let flat = crate::pipeline::partition(&wp, 5, &cfg);
        assert_eq!(hier.assignment, flat.assignment);
    }

    #[test]
    #[should_panic(expected = "hierarchy level 1 fractions length must equal arity")]
    fn wrong_fraction_length_rejected() {
        let spec = HierarchySpec {
            levels: vec![
                LevelSpec::uniform(2),
                LevelSpec { arity: 3, epsilon: None, fractions: Some(vec![1.0, 1.0]) },
            ],
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "hierarchy must have at least one level")]
    fn empty_spec_rejected() {
        HierarchySpec { levels: vec![] }.validate();
    }

    #[test]
    #[should_panic(expected = "Config::target_fractions must be None")]
    fn flat_target_fractions_rejected_not_silently_dropped() {
        // Heterogeneous targets go through LevelSpec::fractions; a flat
        // Config::target_fractions would otherwise be discarded without a
        // trace by the per-level config derivation.
        let wp = uniform(400, 58);
        let cfg = Config {
            target_fractions: Some(vec![0.5, 0.25, 0.25]),
            ..Config::default()
        };
        let _ = partition_hierarchical(&wp, &HierarchySpec::uniform(&[2, 2]), &cfg);
    }

    #[test]
    #[should_panic(expected = "previous hierarchy state must match the spec's arities")]
    fn mismatched_previous_hierarchy_rejected() {
        let wp = uniform(400, 57);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let cold = partition_hierarchical(&wp, &HierarchySpec::uniform(&[2, 2]), &cfg);
        let _ = repartition_hierarchical(
            &wp,
            &cold.previous,
            &HierarchySpec::uniform(&[4, 2]),
            &cfg,
        );
    }
}
