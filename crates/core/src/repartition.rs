//! Warm-start repartitioning: the paper's reuse argument made executable.
//!
//! The case for balanced k-means over one-shot geometric partitioners is
//! that its output is *reusable*: a time-stepped simulation whose points
//! drift between steps can feed the previous solve's centers and influence
//! values back in, skip the SFC/sort bootstrap entirely, and converge in a
//! few warm iterations — with most points keeping their block, so little
//! data migrates. [`repartition_spmd`] is that path; see DESIGN.md §5 for
//! the warm-start contract and `geographer_graph`'s migration metrics for
//! how the stability gain is measured.

use std::time::Instant;

use geographer_geometry::{Point, WeightedPoints};
use geographer_parcomm::{Comm, SelfComm};

use crate::config::{validate_k, Config};
use crate::kmeans::balanced_kmeans_warm;
use crate::pipeline::{phase_snapshot, PhaseComm, PipelineResult, PipelineTimings};

/// The reusable state of a previous partitioning solve: the replicated
/// cluster centers and influence values. Obtain one from
/// [`PipelineResult::previous`] (any rank's copy works — the state is
/// replicated) and pass it to [`repartition_spmd`] when the point set has
/// changed.
///
/// On a *converged* previous solve the pair exactly reproduces the previous
/// assignment (see [`balanced_kmeans_warm`]), which is what makes the
/// zero-migration-on-unchanged-input contract hold.
#[derive(Debug, Clone)]
pub struct PreviousPartition<const D: usize> {
    /// Cluster centers of the previous solve (replicated, length `k`).
    pub centers: Vec<Point<D>>,
    /// Influence values of the previous solve (replicated, length `k`).
    pub influence: Vec<f64>,
}

impl<const D: usize> PreviousPartition<D> {
    /// Number of blocks this state describes.
    pub fn k(&self) -> usize {
        debug_assert_eq!(self.centers.len(), self.influence.len());
        self.centers.len()
    }
}

/// Repartition a (typically drifted) distributed point set by warm-starting
/// balanced k-means from `prev` instead of re-running the cold pipeline.
///
/// Differences from [`crate::partition_spmd`]:
///
/// * **No SFC bootstrap.** The Hilbert indexing, global sort, and
///   redistribution phases are skipped — the previous centers already
///   encode a good spatial decomposition. Points stay in their caller-side
///   distribution, and the returned assignment is directly aligned with
///   the input (no write-back routing either).
/// * **No sampling initialization.** `cfg.sampling_init` is forced off:
///   its only purpose is to cheapen the cold start, and its rank-local
///   permutation would break the unchanged-input ⇒ zero-migration
///   contract.
///
/// All ranks must call this collectively with identical `prev`, `k`, and
/// `cfg`. `prev` must carry exactly `k` centers/influences.
///
/// # Panics
/// If `k` is zero or exceeds the global point count (the canonical
/// [`validate_k`] message), on inconsistent input lengths, or if `prev`
/// does not match `k`.
pub fn repartition_spmd<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    prev: &PreviousPartition<D>,
    k: usize,
    cfg: &Config,
) -> PipelineResult<D> {
    assert_eq!(points.len(), weights.len());
    assert_eq!(prev.centers.len(), k, "previous partition must carry exactly k centers");
    assert_eq!(prev.influence.len(), k, "previous partition must carry exactly k influences");
    cfg.validate();

    let warm_cfg = Config { sampling_init: false, ..cfg.clone() };
    // Snapshot before the first collective so comm_stats covers the whole
    // call (the cold pipeline counts its global-n allreduce the same way).
    let comm_before = phase_snapshot(comm);
    let t0 = Instant::now();
    let global_n = comm.allreduce(points.len() as u64, |a, b| a + b);
    validate_k(k, global_n);
    let out = balanced_kmeans_warm(
        comm,
        points,
        weights,
        k,
        prev.centers.clone(),
        prev.influence.clone(),
        &warm_cfg,
    );
    let kmeans = t0.elapsed().as_secs_f64();
    let comm_after = phase_snapshot(comm);
    let comm_stats = comm_after.since(&comm_before);

    PipelineResult {
        assignment: out.assignment,
        centers: out.centers,
        influence: out.influence,
        timings: PipelineTimings { kmeans, ..PipelineTimings::default() },
        stats: out.stats,
        comm_stats,
        phase_comm: PhaseComm { kmeans: comm_stats, ..PhaseComm::default() },
    }
}

/// Shared-memory convenience wrapper around [`repartition_spmd`]
/// (single rank), mirroring [`crate::partition`].
pub fn repartition<const D: usize>(
    pts: &WeightedPoints<D>,
    prev: &PreviousPartition<D>,
    k: usize,
    cfg: &Config,
) -> PipelineResult<D> {
    repartition_spmd(&SelfComm, &pts.points, &pts.weights, prev, k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::partition;
    use geographer_geometry::SplitMix64;
    use geographer_parcomm::run_spmd;

    fn uniform(n: usize, seed: u64) -> WeightedPoints<2> {
        let mut rng = SplitMix64::new(seed);
        WeightedPoints::unweighted(
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect(),
        )
    }

    #[test]
    fn unmoved_points_migrate_nothing() {
        let wp = uniform(2000, 40);
        let k = 6;
        let cfg = Config { sampling_init: false, max_iterations: 200, ..Config::default() };
        let cold = partition(&wp, k, &cfg);
        assert!(cold.stats.converged, "cold run must converge for the fixed-point contract");
        let warm = repartition(&wp, &cold.previous(), k, &cfg);
        assert_eq!(warm.assignment, cold.assignment, "unmoved input must not migrate");
        assert_eq!(warm.stats.movement_iterations, 1);
        // The warm path spends no time in the skipped phases.
        assert_eq!(warm.timings.sfc_index, 0.0);
        assert_eq!(warm.timings.redistribute, 0.0);
    }

    #[test]
    fn warm_repartition_tracks_a_small_drift_within_balance() {
        let wp = uniform(2500, 41);
        let k = 5;
        let cfg = Config { sampling_init: false, ..Config::default() };
        let cold = partition(&wp, k, &cfg);
        // Translate every point slightly (rigid drift).
        let drifted: Vec<Point<2>> =
            wp.points.iter().map(|p| Point::new([p[0] + 0.01, p[1] - 0.005])).collect();
        let drifted = WeightedPoints::unweighted(drifted);
        let warm = repartition(&drifted, &cold.previous(), k, &cfg);
        assert_eq!(warm.assignment.len(), 2500);
        assert!(warm.stats.balance_achieved, "warm solve must restore balance");
        // A rigid translation moves all clusters equally: almost every
        // point keeps its block.
        let same = warm
            .assignment
            .iter()
            .zip(&cold.assignment)
            .filter(|(a, b)| a == b)
            .count();
        assert!(same as f64 / 2500.0 > 0.95, "rigid drift migrated {} points", 2500 - same);
    }

    #[test]
    fn spmd_and_serial_repartition_agree() {
        let wp = uniform(1200, 42);
        let k = 4;
        let cfg = Config { sampling_init: false, ..Config::default() };
        let prev = partition(&wp, k, &cfg).previous();
        let serial = repartition(&wp, &prev, k, &cfg);
        let pts = wp.points.clone();
        let prev_c = prev.clone();
        let results = run_spmd(3, move |c| {
            let chunk = pts.len() / 3;
            let lo = c.rank() * chunk;
            let hi = lo + chunk;
            let w = vec![1.0; hi - lo];
            repartition_spmd(&c, &pts[lo..hi], &w, &prev_c, k, &cfg).assignment
        });
        let distributed: Vec<u32> = results.into_iter().flatten().collect();
        assert_eq!(distributed, serial.assignment);
    }

    #[test]
    fn spmd_repartition_assignment_is_input_aligned() {
        // The warm path performs no redistribution, so each rank's
        // assignment must line up with its own input slice.
        let wp = uniform(1600, 43);
        let k = 4;
        let cfg = Config { sampling_init: false, ..Config::default() };
        let prev = partition(&wp, k, &cfg).previous();
        let pts = wp.points.clone();
        let results = run_spmd(4, move |c| {
            let chunk = pts.len() / 4;
            let lo = c.rank() * chunk;
            let hi = lo + chunk;
            let w = vec![1.0; hi - lo];
            let res = repartition_spmd(&c, &pts[lo..hi], &w, &prev, k, &cfg);
            (res.assignment, res.centers, lo)
        });
        let pts = wp.points;
        for (asg, centers, lo) in &results {
            assert_eq!(asg.len(), pts.len() / 4);
            for (i, &b) in asg.iter().enumerate() {
                let d = pts[lo + i].dist(&centers[b as usize]);
                assert!(d < 0.9, "point {i} absurdly far from its center");
            }
        }
    }

    #[test]
    #[should_panic(expected = "geographer config: k = 9 exceeds global point count n = 8")]
    fn repartition_k_check_uses_the_canonical_message() {
        let wp = uniform(8, 44);
        let prev =
            PreviousPartition { centers: vec![wp.points[0]; 9], influence: vec![1.0; 9] };
        let _ = repartition(&wp, &prev, 9, &Config::default());
    }

    #[test]
    #[should_panic(expected = "previous partition must carry exactly k centers")]
    fn mismatched_previous_state_rejected() {
        let wp = uniform(100, 45);
        let prev =
            PreviousPartition { centers: vec![wp.points[0]; 3], influence: vec![1.0; 3] };
        let _ = repartition(&wp, &prev, 4, &Config::default());
    }
}
