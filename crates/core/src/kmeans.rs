//! Balanced k-means: Algorithms 1 (AssignAndBalance) and 2 (BalancedKMeans)
//! of the paper, written SPMD over [`Comm`].
//!
//! Each rank holds a shard of the points; cluster centers and influence
//! values are replicated. The only communication inside the balance loop is
//! one `globalSumVector` per balance iteration (block weights), and the
//! only communication in the movement phase is one vector sum for the new
//! weighted centroids — matching the blue-marked lines of the paper's
//! pseudocode.

use geographer_geometry::{Aabb, Point, SplitMix64};
use geographer_parcomm::Comm;
use rayon::prelude::*;

use crate::bounds::Relaxation;
use crate::config::Config;
use crate::influence::{adapt_influences, erode, erosion_alpha};

/// Work counters, kept per rank. These feed the ablation experiments
/// (Hamerly skip rate, Sec. 4.3's "about 80 % of the cases") and the
/// modeled scaling times.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KMeansStats {
    /// Center-movement iterations executed (Algorithm 2 main loop).
    pub movement_iterations: u64,
    /// Total balance iterations across all movement iterations.
    pub balance_iterations: u64,
    /// Point–center effective-distance evaluations.
    pub distance_evals: u64,
    /// Points whose inner loop was skipped by the Hamerly bound test.
    pub hamerly_skips: u64,
    /// Inner loops cut short by the bounding-box sort (Algorithm 1 line 16).
    pub bbox_breaks: u64,
    /// Point visits in assignment passes (skipped or not).
    pub points_visited: u64,
    /// Wall seconds this rank spent inside assignment passes (the kernel
    /// plus the block-weight accumulation) — the figure the scaling
    /// benchmark's per-point assignment cost and its perf gate read.
    pub assignment_seconds: f64,
    /// Whether the center-movement loop converged before `max_iterations`.
    pub converged: bool,
    /// Imbalance of the final assignment (max block weight / average − 1).
    pub final_imbalance: f64,
    /// Whether the final assignment satisfies the balance constraint
    /// `max ≤ max((1+ε)·avg, avg + w_max)` — the weighted form of the
    /// paper's `|Vi| ≤ (1+ε)·⌈|V|/k⌉` (the `avg + w_max` term is the
    /// feasibility floor imposed by weight granularity, exactly what the
    /// ceiling provides in the unweighted case).
    pub balance_achieved: bool,
}

impl KMeansStats {
    /// Fraction of point visits resolved by the Hamerly skip.
    pub fn skip_rate(&self) -> f64 {
        if self.points_visited == 0 {
            0.0
        } else {
            self.hamerly_skips as f64 / self.points_visited as f64
        }
    }

    /// Sum counters across ranks (call from every rank).
    pub fn reduce<C: Comm>(&self, comm: &C) -> KMeansStats {
        let mut buf = [
            self.movement_iterations, // identical on all ranks; max below
            self.balance_iterations,
            self.distance_evals,
            self.hamerly_skips,
            self.bbox_breaks,
            self.points_visited,
        ];
        // movement/balance iterations are replicated — take them from this
        // rank; sum the per-point counters.
        let mut sums = [buf[2], buf[3], buf[4], buf[5]];
        comm.allreduce_sum_u64(&mut sums);
        buf[2] = sums[0];
        buf[3] = sums[1];
        buf[4] = sums[2];
        buf[5] = sums[3];
        KMeansStats {
            movement_iterations: buf[0],
            balance_iterations: buf[1],
            distance_evals: buf[2],
            hamerly_skips: buf[3],
            bbox_breaks: buf[4],
            points_visited: buf[5],
            // The slowest rank bounds the phase: max, not sum.
            assignment_seconds: comm.allreduce(self.assignment_seconds, f64::max),
            converged: self.converged,
            final_imbalance: self.final_imbalance,
            balance_achieved: self.balance_achieved,
        }
    }
}

/// Result of [`balanced_kmeans`] on one rank.
#[derive(Debug, Clone)]
pub struct KMeansOutput<const D: usize> {
    /// Block id of every rank-local point, in input order.
    pub assignment: Vec<u32>,
    /// Final cluster centers (replicated).
    pub centers: Vec<Point<D>>,
    /// Final influence values (replicated).
    pub influence: Vec<f64>,
    /// This rank's work counters.
    pub stats: KMeansStats,
}

/// Outcome of one point's assignment evaluation.
#[derive(Debug, Clone, Copy)]
struct Eval {
    assignment: u32,
    ub: f64,
    lb: f64,
    evals: u32,
    skipped: bool,
    bbox_break: bool,
}

/// Block width of the SoA kernel: points are processed in fixed-size runs
/// whose coordinate lanes, bounds, and center shortlist fit in L1/L2.
/// After the Hilbert redistribution consecutive points are spatial
/// neighbours, so a block's bounding box is tiny and its per-center
/// pruning bound eliminates most of the shortlist.
const SOA_BLOCK: usize = 256;

/// The center shortlist laid out for the SoA kernel, in bbox-sorted order.
#[derive(Default)]
struct CenterScratch {
    /// `(min effective distance to the active bbox, center id)`, ascending
    /// when pruning is enabled — the shared scan order of both kernels.
    order: Vec<(f64, u32)>,
    /// Sorted-center coordinates, dimension-major: lane `d` occupies
    /// `coords[d*k..(d+1)*k]`.
    coords: Vec<f64>,
    /// Influence values in sorted order.
    influence: Vec<f64>,
    /// Original center ids in sorted order.
    ids: Vec<u32>,
}

impl CenterScratch {
    /// Rebuild the sorted coordinate lanes from `order` (already filled and
    /// sorted by the caller). Allocation-free after the first call.
    fn fill_sorted<const D: usize>(&mut self, centers: &[Point<D>], influence: &[f64]) {
        let k = centers.len();
        self.coords.clear();
        self.coords.resize(D * k, 0.0);
        self.influence.clear();
        self.ids.clear();
        for (j, &(_, c)) in self.order.iter().enumerate() {
            let ci = c as usize;
            for d in 0..D {
                self.coords[d * k + j] = centers[ci][d];
            }
            self.influence.push(influence[ci]);
            self.ids.push(c);
        }
    }
}

/// Per-worker scratch of the SoA kernel.
struct KernelScratch {
    /// Effective distances for the branch-free batch sweep — two slabs of
    /// `k`, one per point of the pair the batch path evaluates together.
    ebuf: Vec<f64>,
    /// Per-center lower bound against the current block's bounding box.
    cbound: Vec<f64>,
    /// Survivor indices of the current block (points not Hamerly-skipped).
    sidx: Vec<u32>,
}

impl KernelScratch {
    fn new(k: usize) -> Self {
        KernelScratch {
            ebuf: vec![0.0; 2 * k],
            cbound: vec![0.0; k],
            sidx: Vec::with_capacity(SOA_BLOCK),
        }
    }
}

/// Largest center count for which the kernel computes every effective
/// distance branch-free (then scans the batch with the pruning skips).
/// Beyond this the skipped `sqrt`/`div` work outweighs the vectorization
/// win and the kernel falls back to the branching scan.
const SOA_BATCH_K: usize = 24;

/// Per-span work counters returned by the SoA kernel workers.
#[derive(Debug, Default, Clone, Copy)]
struct SpanStats {
    evals: u64,
    skips: u64,
    pruned_points: u64,
}

impl SpanStats {
    fn add(&mut self, o: SpanStats) {
        self.evals += o.evals;
        self.skips += o.skips;
        self.pruned_points += o.pruned_points;
    }
}

/// The SPMD solver state for one `balanced_kmeans` call.
struct Solver<'a, const D: usize> {
    points: &'a [Point<D>],
    weights: &'a [f64],
    k: usize,
    cfg: &'a Config,
    centers: Vec<Point<D>>,
    influence: Vec<f64>,
    assignment: Vec<u32>,
    ub: Vec<f64>,
    lb: Vec<f64>,
    /// Global maximum point weight (balance-feasibility granularity).
    w_max: f64,
    /// Normalized per-block target weight fractions (uniform = 1/k each).
    fractions: Vec<f64>,
    /// Reusable output buffer of the AoS assignment pass, pre-sized to the
    /// local point count: the hot loop writes evaluations into it in place
    /// (via `collect_into_vec` on the parallel path) instead of allocating
    /// a fresh result vector every balance iteration.
    evals: Vec<Eval>,
    /// Structure-of-arrays copy of the coordinates (`soa[d][i]` ==
    /// `points[i][d]`), built once per solve when the SoA kernel is on.
    soa: Vec<Vec<f64>>,
    /// Per-block `(lo, hi)` bounding boxes over the identity blocks
    /// (`[b·SOA_BLOCK, (b+1)·SOA_BLOCK)`), built once per solve —
    /// coordinates never move, so no assignment pass recomputes them.
    block_boxes: Vec<([f64; D], [f64; D])>,
    /// Center shortlist scratch (bbox-sorted order/coords/influence/ids).
    cscratch: CenterScratch,
    /// One kernel scratch per worker thread, grown on demand.
    kscratch: Vec<KernelScratch>,
    /// Balance/movement scratch reused across iterations — the hot loops
    /// allocate nothing after the first iteration.
    old_influence: Vec<f64>,
    delta: Vec<f64>,
    center_sums: Vec<f64>,
    new_centers_buf: Vec<Point<D>>,
    relax: Relaxation,
    local_sizes: Vec<f64>,
    global_sizes: Vec<f64>,
    stats: KMeansStats,
}

/// Reduce one point's batch of effective distances to
/// `(best, second, best_c, evals, pruned)` — the select-based equivalent
/// of the strict-comparison chain in [`Solver::evaluate_point`]. Under
/// the invariant `second >= best`, on `e < best` the old best demotes to
/// second and on ties nothing moves, exactly as `else if e < second`
/// would. (Selects, not full arithmetic masking: the comparison branches
/// predict well once best/second stabilize, and speculation past them
/// beats a serialized min/max chain.)
#[inline(always)]
fn scan_batch(
    pruning: bool,
    cbound: &[f64],
    ebuf: &[f64],
    ids: &[u32],
    init_c: u32,
) -> (f64, f64, u32, u64, bool) {
    let mut best = f64::INFINITY;
    let mut second = f64::INFINITY;
    let mut best_c = init_c;
    let mut evals = 0u64;
    let mut pruned = false;
    // geo-analyze: hot-loop
    for j in 0..ebuf.len() {
        if pruning && cbound[j] > second {
            pruned = true;
            continue;
        }
        let e = ebuf[j];
        evals += 1;
        let lt = e < best;
        best_c = if lt { ids[j] } else { best_c };
        second = if lt { best } else { second.min(e) };
        best = if lt { e } else { best };
    }
    (best, second, best_c, evals, pruned)
}

/// One block of the SoA kernel: derive a per-center pruning bound from
/// the block's precomputed bounding box (`bbox`, built once per solve —
/// coordinates never move between balance iterations), then scan every
/// non-skipped point of the block against the (globally bbox-sorted)
/// center shortlist. `assign`/`ub`/`lb` hold the current values on entry
/// and the updated values on exit.
///
/// Bitwise-identical to [`Solver::evaluate_point`]: effective distances
/// use the same accumulation order, the best/second updates resolve the
/// same strict comparisons, and a center is only skipped when its block
/// bound exceeds the current `second` — in which case evaluating it could
/// not have changed `best`/`second`/`best_c` (the block bound is a lower
/// bound on every effective distance within the block). The block box is
/// contained in the active box, so its bound dominates the one the AoS
/// path breaks on: this prunes a superset of the centers at zero cost to
/// the result. `soa_matches_aos_across_dims_ranks_and_families` pins the
/// equivalence.
#[allow(clippy::too_many_arguments)]
// Outlined on purpose: one call per 256-point block amortizes the call,
// and the measured kernel numbers were taken in this shape.
#[inline(never)]
fn process_block<const D: usize>(
    hamerly: bool,
    pruning: bool,
    k: usize,
    lanes: &[&[f64]; D],
    bbox: &([f64; D], [f64; D]),
    cs: &CenterScratch,
    sc: &mut KernelScratch,
    assign: &mut [u32],
    ub: &mut [f64],
    lb: &mut [f64],
    stats: &mut SpanStats,
) {
    let blen = assign.len();
    let KernelScratch { ebuf, cbound, sidx } = sc;
    let (ebuf, cbound) = (&mut ebuf[..2 * k], &mut cbound[..k]);
    // Center coordinate lanes: `clanes[d][j]` is center j's d-coordinate,
    // contiguous in j for the vectorizable batch loop below.
    let clanes: [&[f64]; D] = std::array::from_fn(|d| &cs.coords[d * k..(d + 1) * k]);
    let infl = &cs.influence[..k];
    // Compact the points that survive the Hamerly skip; only they are
    // scanned against the shortlist. Branchless: always write the
    // candidate index, advance the cursor only for survivors — the
    // skip pattern is data-dependent and would mispredict as a branch.
    sidx.clear();
    sidx.resize(blen, 0);
    let mut slen = 0usize;
    // geo-analyze: hot-loop
    for i in 0..blen {
        let survives = !(hamerly && ub[i] < lb[i]);
        sidx[slen] = i as u32;
        slen += usize::from(survives);
    }
    stats.skips += (blen - slen) as u64;
    sidx.truncate(slen);
    if slen == 0 {
        return;
    }
    let (lo, hi) = bbox;
    if pruning {
        // Same arithmetic as `Aabb::min_dist` over the (precomputed) block
        // box. The box covers every block point, hence every survivor, so
        // `cbound[j]` lower-bounds center j's effective distance to any
        // scanned point: skipping on `cbound[j] > second` is sound.
        // geo-analyze: hot-loop
        for j in 0..k {
            let mut acc = 0.0;
            for d in 0..D {
                let c = clanes[d][j];
                let diff = if c < lo[d] {
                    lo[d] - c
                } else if c > hi[d] {
                    c - hi[d]
                } else {
                    0.0
                };
                acc += diff * diff;
            }
            cbound[j] = acc.sqrt() / infl[j];
        }
    }
    if k <= SOA_BATCH_K {
        // Branch-free batch sweep, two survivors at a time: every
        // effective distance of the pair in one vectorizable loop over
        // the contiguous center lanes (the same per-center op order as
        // `Point::dist` — sqrt and division are exact per lane, so the
        // values are identical), center coordinates loaded once for both
        // points and the two sqrt/div dependency chains overlapping in
        // the divider. A scalar reduction scan with the pruning skips
        // then resolves each point (`scan_batch`). At small k the
        // skipped work is cheaper than the branches.
        let (e0, e1) = ebuf.split_at_mut(k);
        let slen = sidx.len();
        let mut t = 0;
        // geo-analyze: hot-loop
        while t + 1 < slen {
            let i0 = sidx[t] as usize;
            let i1 = sidx[t + 1] as usize;
            let pv0: [f64; D] = std::array::from_fn(|d| lanes[d][i0]);
            let pv1: [f64; D] = std::array::from_fn(|d| lanes[d][i1]);
            for j in 0..k {
                let mut a0 = 0.0;
                let mut a1 = 0.0;
                for d in 0..D {
                    let c = clanes[d][j];
                    let d0 = pv0[d] - c;
                    a0 += d0 * d0;
                    let d1 = pv1[d] - c;
                    a1 += d1 * d1;
                }
                let f = infl[j];
                e0[j] = a0.sqrt() / f;
                e1[j] = a1.sqrt() / f;
            }
            for (i, eb) in [(i0, &*e0), (i1, &*e1)] {
                let (best, second, best_c, evals, pruned) =
                    scan_batch(pruning, cbound, eb, &cs.ids, assign[i]);
                assign[i] = best_c;
                ub[i] = best;
                lb[i] = second;
                stats.evals += evals;
                stats.pruned_points += u64::from(pruned);
            }
            t += 2;
        }
        if t < slen {
            let i = sidx[t] as usize;
            let pv: [f64; D] = std::array::from_fn(|d| lanes[d][i]);
            for j in 0..k {
                let mut acc = 0.0;
                for d in 0..D {
                    let diff = pv[d] - clanes[d][j];
                    acc += diff * diff;
                }
                e0[j] = acc.sqrt() / infl[j];
            }
            let (best, second, best_c, evals, pruned) =
                scan_batch(pruning, cbound, e0, &cs.ids, assign[i]);
            assign[i] = best_c;
            ub[i] = best;
            lb[i] = second;
            stats.evals += evals;
            stats.pruned_points += u64::from(pruned);
        }
    } else {
        // Large shortlists: branching skip-scan — the batch would spend
        // sqrt/div on centers the evolving `second` bound rules out.
        // geo-analyze: hot-loop
        for &i in sidx.iter() {
            let i = i as usize;
            let mut best = f64::INFINITY;
            let mut second = f64::INFINITY;
            let mut best_c = assign[i];
            let mut evals = 0u64;
            let mut pruned = false;
            for j in 0..k {
                if pruning && cbound[j] > second {
                    pruned = true;
                    continue;
                }
                // Explicit distance-squared over the contiguous lanes, same
                // accumulation order as `Point::dist_sq`.
                let mut acc = 0.0;
                for d in 0..D {
                    let diff = lanes[d][i] - clanes[d][j];
                    acc += diff * diff;
                }
                let e = acc.sqrt() / infl[j];
                evals += 1;
                if e < best {
                    second = best;
                    best = e;
                    best_c = cs.ids[j];
                } else if e < second {
                    second = e;
                }
            }
            assign[i] = best_c;
            ub[i] = best;
            lb[i] = second;
            stats.evals += evals;
            stats.pruned_points += u64::from(pruned);
        }
    }
}

/// Run the blocked SoA kernel over one contiguous identity span starting
/// at point `off`, updating the `assign`/`ub`/`lb` sub-slices in place —
/// the steady-state path gathers and scatters nothing. `off` must be a
/// multiple of [`SOA_BLOCK`] so the span's blocks line up with the
/// precomputed per-block boxes in `boxes`.
#[allow(clippy::too_many_arguments)]
fn soa_span_identity<const D: usize>(
    hamerly: bool,
    pruning: bool,
    k: usize,
    soa: &[Vec<f64>],
    boxes: &[([f64; D], [f64; D])],
    cs: &CenterScratch,
    off: usize,
    assign: &mut [u32],
    ub: &mut [f64],
    lb: &mut [f64],
    sc: &mut KernelScratch,
) -> SpanStats {
    debug_assert_eq!(off % SOA_BLOCK, 0, "span offset must be block-aligned");
    let mut stats = SpanStats::default();
    let len = assign.len();
    let mut b = 0;
    // geo-analyze: hot-loop
    while b < len {
        let blen = SOA_BLOCK.min(len - b);
        let lanes: [&[f64]; D] =
            std::array::from_fn(|d| &soa[d][off + b..off + b + blen]);
        process_block::<D>(
            hamerly,
            pruning,
            k,
            &lanes,
            &boxes[(off + b) / SOA_BLOCK],
            cs,
            sc,
            &mut assign[b..b + blen],
            &mut ub[b..b + blen],
            &mut lb[b..b + blen],
            &mut stats,
        );
        b += blen;
    }
    stats
}

impl<const D: usize> Solver<'_, D> {
    /// Evaluate one point against the (bbox-sorted) centers.
    /// `sorted`: `(effective distance to local bbox, center id)` ascending.
    #[inline]
    fn evaluate_point(&self, p: usize, sorted: &[(f64, u32)]) -> Eval {
        let hamerly = self.cfg.hamerly_bounds;
        if hamerly && self.ub[p] < self.lb[p] {
            return Eval {
                assignment: self.assignment[p],
                ub: self.ub[p],
                lb: self.lb[p],
                evals: 0,
                skipped: true,
                bbox_break: false,
            };
        }
        let pt = &self.points[p];
        let mut best = f64::INFINITY;
        let mut second = f64::INFINITY;
        let mut best_c = self.assignment[p];
        let mut evals = 0u32;
        let mut bbox_break = false;
        // geo-analyze: hot-loop
        for &(dist_to_bb, c) in sorted {
            if self.cfg.bbox_pruning && dist_to_bb > second {
                bbox_break = true;
                break;
            }
            let e = pt.dist(&self.centers[c as usize]) / self.influence[c as usize];
            evals += 1;
            if e < best {
                second = best;
                best = e;
                best_c = c;
            } else if e < second {
                second = e;
            }
        }
        Eval { assignment: best_c, ub: best, lb: second, evals, skipped: false, bbox_break }
    }

    /// One assignment pass through the blocked SoA kernel, updating
    /// `assignment`/`ub`/`lb` for every point. Only called when the active
    /// list is exactly `0..n_local` (the steady state once sampling has
    /// grown to the full set): coordinate lanes and output arrays are
    /// sliced directly with no gather/scatter — shuffled sampling rounds
    /// take the AoS path instead, whose random-access loads are cheaper
    /// than gathering dimension-major lanes and scattering results back.
    fn soa_assignment_pass(&mut self, active: &[u32]) {
        let len = active.len();
        if len == 0 {
            return;
        }
        let k = self.k;
        let hamerly = self.cfg.hamerly_bounds;
        let pruning = self.cfg.bbox_pruning;
        let nt = if self.cfg.parallel_local && len >= 4096 {
            rayon::current_num_threads().clamp(1, len.div_ceil(SOA_BLOCK))
        } else {
            1
        };
        if self.kscratch.len() < nt {
            let kk = k;
            self.kscratch.resize_with(nt, || KernelScratch::new(kk));
        }
        // Block-aligned spans: every worker's blocks then coincide with
        // the solve-wide blocks whose boxes were precomputed up front.
        let span = len.div_ceil(nt).next_multiple_of(SOA_BLOCK);
        let soa = &self.soa;
        let boxes = &self.block_boxes[..];
        let cs = &self.cscratch;
        let mut total = SpanStats::default();
        debug_assert!(active.first().is_none_or(|&p| p == 0));
        debug_assert_eq!(len, self.assignment.len());
        let assign = &mut self.assignment[..len];
        let ub = &mut self.ub[..len];
        let lb = &mut self.lb[..len];
        if nt == 1 {
            total = soa_span_identity::<D>(
                hamerly,
                pruning,
                k,
                soa,
                boxes,
                cs,
                0,
                assign,
                ub,
                lb,
                &mut self.kscratch[0],
            );
        } else {
            // Scoped workers over disjoint contiguous spans — the same
            // disjoint-chunk discipline the rayon shim's
            // `collect_into_vec` uses, without staging an Eval per
            // point. Span boundaries (hence block boundaries and the
            // pruning counters) depend on `nt`, the results do not.
            std::thread::scope(|s| {
                let mut joins = Vec::new();
                let mut rest = (assign, ub, lb);
                let mut scratch = self.kscratch.iter_mut();
                let mut off = 0;
                while off < len {
                    let take = span.min(len - off);
                    let (a, ra) = rest.0.split_at_mut(take);
                    let (u, ru) = rest.1.split_at_mut(take);
                    let (l, rl) = rest.2.split_at_mut(take);
                    rest = (ra, ru, rl);
                    let sc = scratch.next().expect("one scratch per span");
                    joins.push(s.spawn(move || {
                        soa_span_identity::<D>(
                            hamerly, pruning, k, soa, boxes, cs, off, a, u, l, sc,
                        )
                    }));
                    off += take;
                }
                for j in joins {
                    total.add(j.join().expect("soa kernel worker panicked"));
                }
            });
        }
        self.stats.points_visited += len as u64;
        self.stats.distance_evals += total.evals;
        self.stats.hamerly_skips += total.skips;
        self.stats.bbox_breaks += total.pruned_points;
    }

    /// Algorithm 1: assign points, rebalance influences until the partition
    /// is balanced or `max_balance_iterations` is hit. The final global
    /// block weights are left in `self.global_sizes`.
    fn assign_and_balance<C: Comm>(&mut self, comm: &C, active: &[u32], identity: bool) {
        let k = self.k;
        self.global_sizes.clear();
        self.global_sizes.resize(k, 0.0);
        self.local_sizes.clear();
        self.local_sizes.resize(k, 0.0);
        for balance_iter in 0..self.cfg.max_balance_iterations {
            self.stats.balance_iterations += 1;

            // Bounding box around the active local points (Alg. 1 line 1);
            // centers sorted by their *minimum* effective distance to it
            // (see DESIGN.md erratum 4 — the paper prints maxDist, which
            // would make the early break unsound).
            let bb = Aabb::from_points_indexed(self.points, active);
            let (centers, influence) = (&self.centers, &self.influence);
            self.cscratch.order.clear();
            self.cscratch.order.extend((0..k as u32).map(|c| {
                let d = match &bb {
                    Some(bb) => {
                        bb.min_dist(&centers[c as usize]) / influence[c as usize]
                    }
                    None => 0.0,
                };
                (d, c)
            }));
            if self.cfg.bbox_pruning {
                self.cscratch
                    .order
                    .sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            }

            // geo-analyze: allow(kernel-entropy): this clock IS the assignment-phase measurement; it never influences control flow or output.
            let assign_t0 = std::time::Instant::now();
            if self.cfg.soa_kernel && identity {
                self.cscratch.fill_sorted::<D>(&self.centers, &self.influence);
                self.soa_assignment_pass(active);
                // Block-weight accumulation stays a single serial pass in
                // active order so the sums are bitwise-independent of the
                // worker count (and identical to the AoS path's).
                self.local_sizes.iter_mut().for_each(|s| *s = 0.0);
                for &p in active {
                    let p = p as usize;
                    self.local_sizes[self.assignment[p] as usize] += self.weights[p];
                }
            } else {
                // AoS path: per-point Evals through the solver's reusable
                // buffer — no per-point allocation. Also serves shuffled
                // sampling rounds when the SoA kernel is on: random-access
                // point loads beat gathering lanes + scattering results.
                let use_rayon = self.cfg.parallel_local && active.len() >= 4096;
                let mut evals = std::mem::take(&mut self.evals);
                {
                    let this: &Solver<'_, D> = self;
                    let sorted = &this.cscratch.order;
                    if use_rayon {
                        active
                            .par_iter()
                            .map(|&p| this.evaluate_point(p as usize, sorted))
                            .collect_into_vec(&mut evals);
                    } else {
                        evals.clear();
                        evals.extend(
                            active.iter().map(|&p| this.evaluate_point(p as usize, sorted)),
                        );
                    }
                }

                self.local_sizes.iter_mut().for_each(|s| *s = 0.0);
                for (&p, ev) in active.iter().zip(&evals) {
                    let p = p as usize;
                    self.assignment[p] = ev.assignment;
                    self.ub[p] = ev.ub;
                    self.lb[p] = ev.lb;
                    self.stats.points_visited += 1;
                    self.stats.distance_evals += ev.evals as u64;
                    self.stats.hamerly_skips += u64::from(ev.skipped);
                    self.stats.bbox_breaks += u64::from(ev.bbox_break);
                    self.local_sizes[ev.assignment as usize] += self.weights[p];
                }
                self.evals = evals;
            }
            self.stats.assignment_seconds += assign_t0.elapsed().as_secs_f64();

            // The only communication of the balance loop (Alg. 1 line 31).
            self.global_sizes.copy_from_slice(&self.local_sizes);
            comm.allreduce_sum_f64(&mut self.global_sizes);

            let total: f64 = self.global_sizes.iter().sum();
            // Per-block targets: uniform total/k, or the configured
            // heterogeneous fractions (paper footnote 1).
            let mut worst_ratio = 0.0f64;
            let mut all_within = true;
            for c in 0..k {
                let target = total * self.fractions[c];
                if target <= 0.0 {
                    continue;
                }
                worst_ratio = worst_ratio.max(self.global_sizes[c] / target);
                // Weighted form of the paper's Lmax = (1+ε)·⌈w(V)/k⌉: the
                // `target + w_max` floor is what makes the constraint
                // feasible when single point weights exceed ε·target.
                let allowed =
                    ((1.0 + self.cfg.epsilon) * target).max(target + self.w_max);
                if self.global_sizes[c] > allowed + 1e-12 {
                    all_within = false;
                }
            }
            self.stats.final_imbalance = (worst_ratio - 1.0).max(0.0);
            self.stats.balance_achieved = all_within;
            if all_within {
                return;
            }
            if balance_iter + 1 == self.cfg.max_balance_iterations {
                return;
            }

            // Adapt influences (Eq. 1, corrected) and relax bounds — all
            // through solver-owned scratch.
            self.old_influence.clear();
            self.old_influence.extend_from_slice(&self.influence);
            adapt_influences(
                &mut self.influence,
                &self.global_sizes,
                &self.fractions,
                total,
                D,
                self.cfg.influence_change_cap,
            );
            if self.cfg.hamerly_bounds {
                self.relax.set_influence_only(&self.old_influence, &self.influence);
                let n = self.ub.len();
                self.relax.apply(&mut self.ub, &mut self.lb, &self.assignment, n);
            }
        }
    }

    /// New centers = weighted mean of the active points of each cluster
    /// (Algorithm 2 lines 12–13: local sums + one global vector sum).
    /// Clusters with zero active weight keep their old center. The result
    /// lands in `self.new_centers_buf` and the per-center movement in
    /// `self.delta`; returns the maximum movement.
    fn compute_new_centers<C: Comm>(&mut self, comm: &C, active: &[u32]) -> f64 {
        let k = self.k;
        let stride = D + 1;
        self.center_sums.clear();
        self.center_sums.resize(k * stride, 0.0);
        for &p in active {
            let p = p as usize;
            let c = self.assignment[p] as usize;
            let w = self.weights[p];
            for d in 0..D {
                self.center_sums[c * stride + d] += w * self.points[p][d];
            }
            self.center_sums[c * stride + D] += w;
        }
        comm.allreduce_sum_f64(&mut self.center_sums);
        let (sums, centers, buf) =
            (&self.center_sums, &self.centers, &mut self.new_centers_buf);
        buf.clear();
        for c in 0..k {
            let w = sums[c * stride + D];
            buf.push(if w > 0.0 {
                let mut coords = [0.0; D];
                for d in 0..D {
                    coords[d] = sums[c * stride + d] / w;
                }
                Point::new(coords)
            } else {
                centers[c]
            });
        }
        self.delta.clear();
        let (delta, buf) = (&mut self.delta, &self.new_centers_buf);
        delta.extend(centers.iter().zip(buf).map(|(a, b)| a.dist(b)));
        delta.iter().copied().fold(0.0, f64::max)
    }
}

/// Extension used by the solver: bounding box over an index subset.
trait AabbIndexed<const D: usize> {
    fn from_points_indexed(points: &[Point<D>], idx: &[u32]) -> Option<Aabb<D>>;
}

impl<const D: usize> AabbIndexed<D> for Aabb<D> {
    fn from_points_indexed(points: &[Point<D>], idx: &[u32]) -> Option<Aabb<D>> {
        let first = *idx.first()?;
        let p0 = points[first as usize];
        let mut bb = Aabb { min: p0, max: p0 };
        for &i in &idx[1..] {
            bb.grow(&points[i as usize]);
        }
        Some(bb)
    }
}

/// Run balanced k-means (Algorithm 2) on the rank-local `points` with the
/// given replicated `initial_centers`.
///
/// All ranks must call this collectively with identical `k`, `cfg`, and
/// `initial_centers`. Returns the local assignment plus final replicated
/// centers/influences and this rank's work counters.
pub fn balanced_kmeans<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
    initial_centers: Vec<Point<D>>,
    cfg: &Config,
) -> KMeansOutput<D> {
    balanced_kmeans_warm(comm, points, weights, k, initial_centers, vec![1.0; k], cfg)
}

/// Warm-started balanced k-means: resume from the centers *and* influence
/// values of a previous solve instead of the neutral `I(c) = 1` start.
///
/// This is the solver behind [`crate::repartition_spmd`] (DESIGN.md §5):
/// on a converged previous solution, `(centers, influence)` exactly
/// reproduce the previous assignment, so an unchanged point set re-balances
/// in one assignment pass with zero migration, and a slightly drifted one
/// converges in a handful of iterations instead of re-running the whole
/// SFC bootstrap.
///
/// Same collective contract as [`balanced_kmeans`]; `initial_influence`
/// must be replicated, length `k`, and strictly positive.
pub fn balanced_kmeans_warm<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
    initial_centers: Vec<Point<D>>,
    initial_influence: Vec<f64>,
    cfg: &Config,
) -> KMeansOutput<D> {
    assert_eq!(points.len(), weights.len());
    assert_eq!(initial_centers.len(), k, "need exactly k initial centers");
    assert_eq!(initial_influence.len(), k, "need exactly k initial influences");
    assert!(
        initial_influence.iter().all(|i| i.is_finite() && *i > 0.0),
        "initial influences must be positive and finite"
    );
    assert!(k >= 1, "geographer config: k must be at least 1");
    cfg.validate();
    let n_local = points.len();

    // Neighbourhood scale β(C) for the erosion sigmoid: the expected
    // cluster cell size, 2·diag/k^(1/D). A deterministic proxy for the
    // paper's "average cluster diameter" (DESIGN.md §2).
    let bb = crate::pipeline::global_bbox(comm, points);
    let local_w_max = weights.iter().copied().fold(0.0, f64::max);
    let w_max = comm.allreduce(local_w_max, f64::max);
    let diag = bb.diagonal();
    let beta = 2.0 * diag / (k as f64).powf(1.0 / D as f64);
    let delta_threshold = cfg.delta_threshold * diag;

    // Structure-of-arrays coordinate lanes for the blocked kernel, built
    // once per solve (DESIGN.md §9).
    let soa: Vec<Vec<f64>> = if cfg.soa_kernel {
        (0..D).map(|d| points.iter().map(|p| p[d]).collect()).collect()
    } else {
        Vec::new()
    };
    let block_boxes: Vec<([f64; D], [f64; D])> = if cfg.soa_kernel {
        points
            .chunks(SOA_BLOCK)
            .map(|blk| {
                let mut lo = [f64::INFINITY; D];
                let mut hi = [f64::NEG_INFINITY; D];
                for p in blk {
                    for d in 0..D {
                        lo[d] = lo[d].min(p[d]);
                        hi[d] = hi[d].max(p[d]);
                    }
                }
                (lo, hi)
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut solver = Solver {
        points,
        weights,
        k,
        cfg,
        centers: initial_centers,
        influence: initial_influence,
        assignment: vec![0u32; n_local],
        ub: vec![f64::INFINITY; n_local],
        lb: vec![0.0; n_local],
        w_max,
        fractions: cfg.fractions(k),
        // Shuffled sampling rounds go through the AoS path even when the
        // SoA kernel is on, so the Eval buffer is always pre-sized.
        evals: Vec::with_capacity(n_local),
        soa,
        block_boxes,
        cscratch: CenterScratch::default(),
        kscratch: Vec::new(),
        old_influence: Vec::with_capacity(k),
        delta: Vec::with_capacity(k),
        center_sums: Vec::with_capacity(k * (D + 1)),
        new_centers_buf: Vec::with_capacity(k),
        relax: Relaxation::with_capacity(k),
        local_sizes: Vec::with_capacity(k),
        global_sizes: Vec::with_capacity(k),
        stats: KMeansStats::default(),
    };

    // Sampling initialization (Sec. 4.5): a random local permutation whose
    // prefix is the active sample, doubling every movement round. Once the
    // sample covers every local point the order is restored to the
    // identity (sorting a permutation yields 0..n): the steady-state
    // passes then run gather-free over contiguous lanes. Both kernels see
    // the same active order, so the (order-sensitive) weight and centroid
    // sums stay bitwise-identical between them.
    let mut perm: Vec<u32> = (0..n_local as u32).collect();
    let mut shuffled = false;
    let mut sample_len = if cfg.sampling_init {
        let mut rng = SplitMix64::new(cfg.seed ^ (comm.rank() as u64).wrapping_mul(0xA24B_AED4));
        rng.shuffle(&mut perm);
        shuffled = true;
        cfg.initial_sample.min(n_local)
    } else {
        n_local
    };

    let mut iterations_left = cfg.max_iterations;
    while iterations_left > 0 {
        iterations_left -= 1;
        solver.stats.movement_iterations += 1;
        if shuffled && sample_len >= n_local {
            perm.sort_unstable();
            shuffled = false;
        }
        let active = &perm[..sample_len];

        // Everyone must agree whether this is still a sampling round.
        let local_full = u64::from(sample_len >= n_local);
        let all_full = comm.allreduce(local_full, u64::min) == 1;

        solver.assign_and_balance(comm, active, !shuffled);

        let max_delta = solver.compute_new_centers(comm, active);

        // Converged = centers stationary AND the balance constraint met.
        // (A stationary-but-imbalanced state keeps iterating: the influence
        // adaptation inside assign_and_balance continues to shift block
        // boundaries even with fixed centers; cf. the paper's Sec. 4.5
        // "balance was always achieved when allowing a sufficient number of
        // balance and movement iterations".)
        if all_full && max_delta < delta_threshold && solver.stats.balance_achieved {
            solver.stats.converged = true;
            break;
        }

        // Move centers; erode influences (Eqs. 2–3); relax bounds (Eqs.
        // 4–5, corrected) — all through solver-owned scratch.
        solver.old_influence.clear();
        solver.old_influence.extend_from_slice(&solver.influence);
        std::mem::swap(&mut solver.centers, &mut solver.new_centers_buf);
        if cfg.influence_erosion {
            for (inf, &d) in solver.influence.iter_mut().zip(&solver.delta) {
                *inf = erode(*inf, erosion_alpha(d, beta));
            }
        }
        if cfg.hamerly_bounds {
            solver.relax.set_movement(
                &solver.delta,
                &solver.old_influence,
                &solver.influence,
            );
            let n = solver.ub.len();
            solver.relax.apply(&mut solver.ub, &mut solver.lb, &solver.assignment, n);
        }

        if !all_full {
            sample_len = (sample_len * 2).min(n_local);
        }
    }

    // If the iteration budget ran out mid-sampling, points outside the
    // sample have never been assigned: finish with one full pass (in
    // identity order — the pass covers everything, so the sample
    // permutation no longer matters). The decision must be global so the
    // collectives stay matched.
    let local_full = u64::from(sample_len >= n_local);
    let all_full = comm.allreduce(local_full, u64::min) == 1;
    if !all_full {
        perm.sort_unstable();
        solver.assign_and_balance(comm, &perm, true);
    }

    KMeansOutput {
        assignment: solver.assignment,
        centers: solver.centers,
        influence: solver.influence,
        stats: solver.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_parcomm::SelfComm;

    fn uniform_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect()
    }

    fn sfc_like_centers(points: &[Point<2>], k: usize) -> Vec<Point<2>> {
        // Deterministic spread-out centers for tests: every (n/k)-th point.
        let n = points.len();
        (0..k).map(|i| points[(i * n / k + n / (2 * k)).min(n - 1)]).collect()
    }

    #[test]
    fn k1_assigns_all_to_zero() {
        let pts = uniform_points(200, 1);
        let w = vec![1.0; 200];
        let out = balanced_kmeans(&SelfComm, &pts, &w, 1, vec![pts[0]], &Config::default());
        assert!(out.assignment.iter().all(|&b| b == 0));
        assert_eq!(out.stats.final_imbalance, 0.0);
    }

    #[test]
    fn balance_constraint_met_on_uniform_data() {
        let n = 3000;
        let pts = uniform_points(n, 2);
        let w = vec![1.0; n];
        let k = 8;
        let cfg = Config::default();
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        let mut sizes = vec![0.0; k];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let avg = n as f64 / k as f64;
        assert!(
            max / avg - 1.0 <= cfg.epsilon + 1e-9,
            "imbalance {} > ε, sizes {sizes:?}",
            max / avg - 1.0
        );
    }

    #[test]
    fn balance_constraint_met_on_skewed_density() {
        // Heavy cluster of points in a corner plus sparse rest: influence
        // balancing must still achieve ε.
        let mut rng = SplitMix64::new(3);
        let mut pts = Vec::new();
        for _ in 0..2000 {
            pts.push(Point::new([rng.next_f64() * 0.1, rng.next_f64() * 0.1]));
        }
        for _ in 0..1000 {
            pts.push(Point::new([rng.next_f64(), rng.next_f64()]));
        }
        let w = vec![1.0; pts.len()];
        let k = 6;
        let cfg = Config { max_iterations: 80, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        let mut sizes = vec![0.0; k];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let avg = pts.len() as f64 / k as f64;
        assert!(
            max / avg - 1.0 <= cfg.epsilon + 1e-9,
            "imbalance {} sizes {sizes:?}",
            max / avg - 1.0
        );
    }

    #[test]
    fn weighted_balance() {
        let n = 2000;
        let pts = uniform_points(n, 4);
        let mut rng = SplitMix64::new(5);
        let w: Vec<f64> = (0..n).map(|_| 1.0 + 9.0 * rng.next_f64()).collect();
        let k = 5;
        let cfg = Config::default();
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        let mut sizes = vec![0.0; k];
        for (&b, &wi) in out.assignment.iter().zip(&w) {
            sizes[b as usize] += wi;
        }
        let total: f64 = w.iter().sum();
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / (total / k as f64) - 1.0 <= cfg.epsilon + 1e-9, "{sizes:?}");
    }

    #[test]
    fn optimizations_do_not_change_result() {
        // With bounds/pruning on or off, the algorithm must produce the
        // *identical* assignment (they are exact optimizations).
        let n = 1500;
        let pts = uniform_points(n, 6);
        let w = vec![1.0; n];
        let k = 7;
        let centers = sfc_like_centers(&pts, k);
        let base_cfg =
            Config { sampling_init: false, ..Config::default() };
        let on = balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &base_cfg);
        let off = balanced_kmeans(
            &SelfComm,
            &pts,
            &w,
            k,
            centers,
            &Config { hamerly_bounds: false, bbox_pruning: false, ..base_cfg },
        );
        assert_eq!(on.assignment, off.assignment);
        assert!(
            on.stats.distance_evals < off.stats.distance_evals,
            "optimizations must save distance evaluations ({} vs {})",
            on.stats.distance_evals,
            off.stats.distance_evals
        );
    }

    #[test]
    fn hamerly_skip_rate_is_high_in_late_iterations() {
        // Sec. 4.3: "the innermost loop can be skipped in about 80 % of the
        // cases". On uniform data with enough iterations the aggregate skip
        // rate must be substantial.
        let n = 4000;
        let pts = uniform_points(n, 7);
        let w = vec![1.0; n];
        let k = 10;
        let cfg = Config { sampling_init: false, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        assert!(
            out.stats.skip_rate() > 0.4,
            "skip rate unexpectedly low: {}",
            out.stats.skip_rate()
        );
    }

    #[test]
    fn converges_and_reports_it() {
        let pts = uniform_points(1000, 8);
        let w = vec![1.0; 1000];
        let cfg = Config { max_iterations: 200, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, 4, sfc_like_centers(&pts, 4), &cfg);
        assert!(out.stats.converged, "should converge within 200 iterations");
        assert!(out.stats.movement_iterations < 200);
    }

    #[test]
    fn rayon_path_matches_serial() {
        let n = 6000; // above the rayon threshold
        let pts = uniform_points(n, 9);
        let w = vec![1.0; n];
        let k = 6;
        let centers = sfc_like_centers(&pts, k);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let serial = balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &cfg);
        let parallel = balanced_kmeans(
            &SelfComm,
            &pts,
            &w,
            k,
            centers,
            &Config { parallel_local: true, ..cfg },
        );
        assert_eq!(serial.assignment, parallel.assignment);
    }

    #[test]
    fn soa_kernel_matches_aos_bitwise() {
        // The blocked SoA kernel is an exact restructuring of the AoS
        // reference scan: assignments, centers, and influences must agree
        // bitwise across sampling and local-parallel modes, while the
        // per-block pruning bound must never *increase* the eval count.
        let n = 5000;
        let pts = uniform_points(n, 12);
        let mut rng = SplitMix64::new(13);
        let w: Vec<f64> = (0..n).map(|_| 1.0 + rng.next_f64()).collect();
        let k = 7;
        let centers = sfc_like_centers(&pts, k);
        for sampling in [true, false] {
            for par in [false, true] {
                let cfg = Config {
                    sampling_init: sampling,
                    parallel_local: par,
                    max_iterations: 40,
                    ..Config::default()
                };
                let soa = balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &cfg);
                let aos = balanced_kmeans(
                    &SelfComm,
                    &pts,
                    &w,
                    k,
                    centers.clone(),
                    &Config { soa_kernel: false, ..cfg },
                );
                assert_eq!(soa.assignment, aos.assignment, "sampling={sampling} par={par}");
                assert_eq!(soa.centers, aos.centers);
                assert_eq!(soa.influence, aos.influence);
                assert_eq!(soa.stats.movement_iterations, aos.stats.movement_iterations);
                assert!(
                    soa.stats.distance_evals <= aos.stats.distance_evals,
                    "block pruning must not evaluate more: {} vs {}",
                    soa.stats.distance_evals,
                    aos.stats.distance_evals
                );
            }
        }
    }

    #[test]
    fn sampling_init_assigns_every_point() {
        let pts = uniform_points(3000, 10);
        let w = vec![1.0; 3000];
        // Few iterations: the run ends while sampling is still growing; the
        // final full pass must still assign everything within balance.
        let cfg = Config { max_iterations: 2, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, 5, sfc_like_centers(&pts, 5), &cfg);
        let mut sizes = vec![0usize; 5];
        for &b in &out.assignment {
            sizes[b as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "every block populated: {sizes:?}");
    }

    #[test]
    fn heterogeneous_target_fractions() {
        // Paper footnote 1: non-uniform block sizes for heterogeneous
        // architectures. Ask for a 1/2 : 1/4 : 1/4 split.
        let n = 4000;
        let pts = uniform_points(n, 21);
        let w = vec![1.0; n];
        let fractions = vec![0.5, 0.25, 0.25];
        let cfg = Config {
            target_fractions: Some(fractions.clone()),
            max_iterations: 150,
            ..Config::default()
        };
        let out = balanced_kmeans(&SelfComm, &pts, &w, 3, sfc_like_centers(&pts, 3), &cfg);
        let mut sizes = [0.0; 3];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        for (c, &frac) in fractions.iter().enumerate() {
            let target = n as f64 * frac;
            assert!(
                sizes[c] <= (1.0 + cfg.epsilon) * target + 1e-9,
                "block {c}: {} > (1+ε)·{target}",
                sizes[c]
            );
        }
        assert!(out.stats.balance_achieved);
        // The big block really is about twice the small ones.
        assert!(sizes[0] > 1.8 * sizes[1]);
    }

    #[test]
    #[should_panic(expected = "length must equal k")]
    fn wrong_fraction_count_panics() {
        let pts = uniform_points(100, 22);
        let w = vec![1.0; 100];
        let cfg = Config { target_fractions: Some(vec![0.5, 0.5]), ..Config::default() };
        let _ = balanced_kmeans(&SelfComm, &pts, &w, 3, sfc_like_centers(&pts, 3), &cfg);
    }

    #[test]
    fn warm_restart_of_converged_state_is_a_fixed_point() {
        // Re-running the solver from a converged (centers, influence) pair
        // on the same points must reproduce the assignment exactly and stop
        // after a single movement iteration — the contract the whole
        // repartitioning subsystem rests on (DESIGN.md §5).
        let pts = uniform_points(1500, 30);
        let w = vec![1.0; 1500];
        let k = 6;
        let cfg = Config { sampling_init: false, max_iterations: 200, ..Config::default() };
        let cold = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        assert!(cold.stats.converged);
        let warm = balanced_kmeans_warm(
            &SelfComm,
            &pts,
            &w,
            k,
            cold.centers.clone(),
            cold.influence.clone(),
            &cfg,
        );
        assert_eq!(warm.assignment, cold.assignment);
        assert_eq!(warm.stats.movement_iterations, 1);
        assert!(warm.stats.converged);
    }

    #[test]
    #[should_panic(expected = "initial influences must be positive")]
    fn warm_restart_rejects_non_positive_influence() {
        let pts = uniform_points(100, 31);
        let w = vec![1.0; 100];
        let _ = balanced_kmeans_warm(
            &SelfComm,
            &pts,
            &w,
            2,
            sfc_like_centers(&pts, 2),
            vec![1.0, 0.0],
            &Config::default(),
        );
    }

    /// Seeded instance from one of the two test mesh families: `uniform`
    /// fills the unit cube, `clustered` packs two thirds of the points
    /// into a dense corner blob (the skewed-density regime that drives
    /// influence balancing hardest).
    fn family_points<const D: usize>(n: usize, seed: u64, clustered: bool) -> Vec<Point<D>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let scale = if clustered && i % 3 != 0 { 0.12 } else { 1.0 };
                Point::new(std::array::from_fn(|_| rng.next_f64() * scale))
            })
            .collect()
    }

    fn spread_centers<const D: usize>(points: &[Point<D>], k: usize) -> Vec<Point<D>> {
        let n = points.len();
        (0..k).map(|i| points[(i * n / k + n / (2 * k)).min(n - 1)]).collect()
    }

    /// One property-sweep case: solve the same distributed instance with
    /// the SoA kernel on and off; every rank must agree bitwise.
    fn assert_soa_matches_aos<const D: usize>(p: usize, seed: u64, clustered: bool) {
        let n = 1200;
        let pts = family_points::<D>(n, seed, clustered);
        let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9);
        let w: Vec<f64> = (0..n).map(|_| 1.0 + rng.next_f64()).collect();
        let k = 5;
        let centers = spread_centers(&pts, k);
        let cfg = Config { max_iterations: 15, ..Config::default() };
        let aos_cfg = Config { soa_kernel: false, ..cfg.clone() };
        let chunk = n.div_ceil(p);
        let results = geographer_parcomm::run_spmd(p, |c| {
            let lo = (c.rank() * chunk).min(n);
            let hi = ((c.rank() + 1) * chunk).min(n);
            let soa = balanced_kmeans(&c, &pts[lo..hi], &w[lo..hi], k, centers.clone(), &cfg);
            let aos =
                balanced_kmeans(&c, &pts[lo..hi], &w[lo..hi], k, centers.clone(), &aos_cfg);
            (soa, aos)
        });
        for (r, (soa, aos)) in results.iter().enumerate() {
            let tag = format!("D={D} p={p} rank={r} seed={seed} clustered={clustered}");
            assert_eq!(soa.assignment, aos.assignment, "{tag}");
            assert_eq!(soa.centers, aos.centers, "{tag}");
            assert_eq!(soa.influence, aos.influence, "{tag}");
            assert!(
                soa.stats.distance_evals <= aos.stats.distance_evals,
                "{tag}: block pruning must not evaluate more"
            );
        }
    }

    #[test]
    fn soa_matches_aos_across_dims_ranks_and_families() {
        // Hand-rolled property sweep (the workspace carries no proptest
        // dependency): seeded random instances across D ∈ {2, 3},
        // p ∈ {1, 4}, and both mesh families. The SoA kernel claims to be
        // an exact restructuring of the AoS scan, so every combination
        // must agree bitwise on every rank.
        for seed in [41, 42, 43] {
            for p in [1usize, 4] {
                for clustered in [false, true] {
                    assert_soa_matches_aos::<2>(p, seed, clustered);
                    assert_soa_matches_aos::<3>(p, seed, clustered);
                }
            }
        }
    }

    /// Warm fixed-point property: converge cold, restart warm from the
    /// converged (centers, influence) pair — the assignment must
    /// reproduce exactly in one movement iteration.
    fn assert_warm_fixed_point<const D: usize>(soa: bool, seed: u64, clustered: bool) {
        let n = 1000;
        let pts = family_points::<D>(n, seed, clustered);
        let w = vec![1.0; n];
        let k = 5;
        let cfg = Config {
            soa_kernel: soa,
            sampling_init: false,
            max_iterations: 200,
            ..Config::default()
        };
        let cold = balanced_kmeans(&SelfComm, &pts, &w, k, spread_centers(&pts, k), &cfg);
        assert!(cold.stats.converged, "D={D} soa={soa} seed={seed}");
        let warm = balanced_kmeans_warm(
            &SelfComm,
            &pts,
            &w,
            k,
            cold.centers.clone(),
            cold.influence.clone(),
            &cfg,
        );
        let tag = format!("D={D} soa={soa} seed={seed} clustered={clustered}");
        assert_eq!(warm.assignment, cold.assignment, "{tag}");
        assert_eq!(warm.stats.movement_iterations, 1, "{tag}");
        assert!(warm.stats.converged, "{tag}");
    }

    #[test]
    fn warm_fixed_point_holds_across_kernels_and_dims() {
        // The SoA restructuring must not disturb the warm-start contract
        // (DESIGN.md §5): sweep it across kernels, dimensions, and both
        // mesh families.
        for seed in [51, 52] {
            for soa in [true, false] {
                for clustered in [false, true] {
                    assert_warm_fixed_point::<2>(soa, seed, clustered);
                    assert_warm_fixed_point::<3>(soa, seed, clustered);
                }
            }
        }
    }

    #[test]
    fn influences_stay_positive_and_finite() {
        let pts = uniform_points(2000, 11);
        let w = vec![1.0; 2000];
        let out =
            balanced_kmeans(&SelfComm, &pts, &w, 9, sfc_like_centers(&pts, 9), &Config::default());
        for &i in &out.influence {
            assert!(i.is_finite() && i > 0.0, "influence degenerated: {i}");
        }
    }
}
