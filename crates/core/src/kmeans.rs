//! Balanced k-means: Algorithms 1 (AssignAndBalance) and 2 (BalancedKMeans)
//! of the paper, written SPMD over [`Comm`].
//!
//! Each rank holds a shard of the points; cluster centers and influence
//! values are replicated. The only communication inside the balance loop is
//! one `globalSumVector` per balance iteration (block weights), and the
//! only communication in the movement phase is one vector sum for the new
//! weighted centroids — matching the blue-marked lines of the paper's
//! pseudocode.

use geographer_geometry::{Aabb, Point, SplitMix64};
use geographer_parcomm::Comm;
use rayon::prelude::*;

use crate::bounds::Relaxation;
use crate::config::Config;
use crate::influence::{adapt_factor, erode, erosion_alpha};

/// Work counters, kept per rank. These feed the ablation experiments
/// (Hamerly skip rate, Sec. 4.3's "about 80 % of the cases") and the
/// modeled scaling times.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KMeansStats {
    /// Center-movement iterations executed (Algorithm 2 main loop).
    pub movement_iterations: u64,
    /// Total balance iterations across all movement iterations.
    pub balance_iterations: u64,
    /// Point–center effective-distance evaluations.
    pub distance_evals: u64,
    /// Points whose inner loop was skipped by the Hamerly bound test.
    pub hamerly_skips: u64,
    /// Inner loops cut short by the bounding-box sort (Algorithm 1 line 16).
    pub bbox_breaks: u64,
    /// Point visits in assignment passes (skipped or not).
    pub points_visited: u64,
    /// Whether the center-movement loop converged before `max_iterations`.
    pub converged: bool,
    /// Imbalance of the final assignment (max block weight / average − 1).
    pub final_imbalance: f64,
    /// Whether the final assignment satisfies the balance constraint
    /// `max ≤ max((1+ε)·avg, avg + w_max)` — the weighted form of the
    /// paper's `|Vi| ≤ (1+ε)·⌈|V|/k⌉` (the `avg + w_max` term is the
    /// feasibility floor imposed by weight granularity, exactly what the
    /// ceiling provides in the unweighted case).
    pub balance_achieved: bool,
}

impl KMeansStats {
    /// Fraction of point visits resolved by the Hamerly skip.
    pub fn skip_rate(&self) -> f64 {
        if self.points_visited == 0 {
            0.0
        } else {
            self.hamerly_skips as f64 / self.points_visited as f64
        }
    }

    /// Sum counters across ranks (call from every rank).
    pub fn reduce<C: Comm>(&self, comm: &C) -> KMeansStats {
        let mut buf = [
            self.movement_iterations, // identical on all ranks; max below
            self.balance_iterations,
            self.distance_evals,
            self.hamerly_skips,
            self.bbox_breaks,
            self.points_visited,
        ];
        // movement/balance iterations are replicated — take them from this
        // rank; sum the per-point counters.
        let mut sums = [buf[2], buf[3], buf[4], buf[5]];
        comm.allreduce_sum_u64(&mut sums);
        buf[2] = sums[0];
        buf[3] = sums[1];
        buf[4] = sums[2];
        buf[5] = sums[3];
        KMeansStats {
            movement_iterations: buf[0],
            balance_iterations: buf[1],
            distance_evals: buf[2],
            hamerly_skips: buf[3],
            bbox_breaks: buf[4],
            points_visited: buf[5],
            converged: self.converged,
            final_imbalance: self.final_imbalance,
            balance_achieved: self.balance_achieved,
        }
    }
}

/// Result of [`balanced_kmeans`] on one rank.
#[derive(Debug, Clone)]
pub struct KMeansOutput<const D: usize> {
    /// Block id of every rank-local point, in input order.
    pub assignment: Vec<u32>,
    /// Final cluster centers (replicated).
    pub centers: Vec<Point<D>>,
    /// Final influence values (replicated).
    pub influence: Vec<f64>,
    /// This rank's work counters.
    pub stats: KMeansStats,
}

/// Outcome of one point's assignment evaluation.
#[derive(Debug, Clone, Copy)]
struct Eval {
    assignment: u32,
    ub: f64,
    lb: f64,
    evals: u32,
    skipped: bool,
    bbox_break: bool,
}

/// The SPMD solver state for one `balanced_kmeans` call.
struct Solver<'a, const D: usize> {
    points: &'a [Point<D>],
    weights: &'a [f64],
    k: usize,
    cfg: &'a Config,
    centers: Vec<Point<D>>,
    influence: Vec<f64>,
    assignment: Vec<u32>,
    ub: Vec<f64>,
    lb: Vec<f64>,
    /// Global maximum point weight (balance-feasibility granularity).
    w_max: f64,
    /// Normalized per-block target weight fractions (uniform = 1/k each).
    fractions: Vec<f64>,
    /// Reusable output buffer of the assignment pass, pre-sized to the
    /// local point count: the hot loop writes evaluations into it in place
    /// (via `collect_into_vec` on the parallel path) instead of allocating
    /// a fresh result vector every balance iteration.
    evals: Vec<Eval>,
    stats: KMeansStats,
}

impl<const D: usize> Solver<'_, D> {
    /// Evaluate one point against the (bbox-sorted) centers.
    /// `sorted`: `(effective distance to local bbox, center id)` ascending.
    #[inline]
    fn evaluate_point(&self, p: usize, sorted: &[(f64, u32)]) -> Eval {
        let hamerly = self.cfg.hamerly_bounds;
        if hamerly && self.ub[p] < self.lb[p] {
            return Eval {
                assignment: self.assignment[p],
                ub: self.ub[p],
                lb: self.lb[p],
                evals: 0,
                skipped: true,
                bbox_break: false,
            };
        }
        let pt = &self.points[p];
        let mut best = f64::INFINITY;
        let mut second = f64::INFINITY;
        let mut best_c = self.assignment[p];
        let mut evals = 0u32;
        let mut bbox_break = false;
        for &(dist_to_bb, c) in sorted {
            if self.cfg.bbox_pruning && dist_to_bb > second {
                bbox_break = true;
                break;
            }
            let e = pt.dist(&self.centers[c as usize]) / self.influence[c as usize];
            evals += 1;
            if e < best {
                second = best;
                best = e;
                best_c = c;
            } else if e < second {
                second = e;
            }
        }
        Eval { assignment: best_c, ub: best, lb: second, evals, skipped: false, bbox_break }
    }

    /// Algorithm 1: assign points, rebalance influences until the partition
    /// is balanced or `max_balance_iterations` is hit. Returns the global
    /// block weights of the final assignment.
    fn assign_and_balance<C: Comm>(&mut self, comm: &C, active: &[u32]) -> Vec<f64> {
        let k = self.k;
        let mut global_sizes = vec![0.0f64; k];
        let mut local_sizes = vec![0.0f64; k];
        let mut sorted: Vec<(f64, u32)> = Vec::with_capacity(k);
        for balance_iter in 0..self.cfg.max_balance_iterations {
            self.stats.balance_iterations += 1;

            // Bounding box around the active local points (Alg. 1 line 1);
            // centers sorted by their *minimum* effective distance to it
            // (see DESIGN.md erratum 4 — the paper prints maxDist, which
            // would make the early break unsound).
            let bb = Aabb::from_points_indexed(self.points, active);
            sorted.clear();
            sorted.extend((0..k as u32).map(|c| {
                let d = match &bb {
                    Some(bb) => {
                        bb.min_dist(&self.centers[c as usize])
                            / self.influence[c as usize]
                    }
                    None => 0.0,
                };
                (d, c)
            }));
            if self.cfg.bbox_pruning {
                sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            }

            // Assignment pass over the active points, written into the
            // solver's reusable buffer — no per-point allocation.
            let use_rayon = self.cfg.parallel_local && active.len() >= 4096;
            let mut evals = std::mem::take(&mut self.evals);
            {
                let this: &Solver<'_, D> = self;
                if use_rayon {
                    active
                        .par_iter()
                        .map(|&p| this.evaluate_point(p as usize, &sorted))
                        .collect_into_vec(&mut evals);
                } else {
                    evals.clear();
                    evals.extend(
                        active.iter().map(|&p| this.evaluate_point(p as usize, &sorted)),
                    );
                }
            }

            local_sizes.iter_mut().for_each(|s| *s = 0.0);
            for (&p, ev) in active.iter().zip(&evals) {
                let p = p as usize;
                self.assignment[p] = ev.assignment;
                self.ub[p] = ev.ub;
                self.lb[p] = ev.lb;
                self.stats.points_visited += 1;
                self.stats.distance_evals += ev.evals as u64;
                self.stats.hamerly_skips += u64::from(ev.skipped);
                self.stats.bbox_breaks += u64::from(ev.bbox_break);
                local_sizes[ev.assignment as usize] += self.weights[p];
            }
            self.evals = evals;

            // The only communication of the balance loop (Alg. 1 line 31).
            global_sizes.copy_from_slice(&local_sizes);
            comm.allreduce_sum_f64(&mut global_sizes);

            let total: f64 = global_sizes.iter().sum();
            // Per-block targets: uniform total/k, or the configured
            // heterogeneous fractions (paper footnote 1).
            let mut worst_ratio = 0.0f64;
            let mut all_within = true;
            for c in 0..k {
                let target = total * self.fractions[c];
                if target <= 0.0 {
                    continue;
                }
                worst_ratio = worst_ratio.max(global_sizes[c] / target);
                // Weighted form of the paper's Lmax = (1+ε)·⌈w(V)/k⌉: the
                // `target + w_max` floor is what makes the constraint
                // feasible when single point weights exceed ε·target.
                let allowed =
                    ((1.0 + self.cfg.epsilon) * target).max(target + self.w_max);
                if global_sizes[c] > allowed + 1e-12 {
                    all_within = false;
                }
            }
            self.stats.final_imbalance = (worst_ratio - 1.0).max(0.0);
            self.stats.balance_achieved = all_within;
            if all_within {
                return global_sizes;
            }
            if balance_iter + 1 == self.cfg.max_balance_iterations {
                return global_sizes;
            }

            // Adapt influences (Eq. 1, corrected) and relax bounds.
            let old_influence = self.influence.clone();
            for c in 0..k {
                let target = total * self.fractions[c];
                let gamma = if global_sizes[c] > 0.0 {
                    target / global_sizes[c]
                } else {
                    f64::INFINITY
                };
                self.influence[c] *=
                    adapt_factor(gamma, D, self.cfg.influence_change_cap);
            }
            if self.cfg.hamerly_bounds {
                let relax = Relaxation::influence_only(&old_influence, &self.influence);
                let n = self.ub.len();
                relax.apply(&mut self.ub, &mut self.lb, &self.assignment, n);
            }
        }
        global_sizes
    }

    /// New centers = weighted mean of the active points of each cluster
    /// (Algorithm 2 lines 12–13: local sums + one global vector sum).
    /// Clusters with zero active weight keep their old center.
    fn new_centers<C: Comm>(&self, comm: &C, active: &[u32]) -> Vec<Point<D>> {
        let k = self.k;
        let stride = D + 1;
        let mut sums = vec![0.0f64; k * stride];
        for &p in active {
            let p = p as usize;
            let c = self.assignment[p] as usize;
            let w = self.weights[p];
            for d in 0..D {
                sums[c * stride + d] += w * self.points[p][d];
            }
            sums[c * stride + D] += w;
        }
        comm.allreduce_sum_f64(&mut sums);
        (0..k)
            .map(|c| {
                let w = sums[c * stride + D];
                if w > 0.0 {
                    let mut coords = [0.0; D];
                    for d in 0..D {
                        coords[d] = sums[c * stride + d] / w;
                    }
                    Point::new(coords)
                } else {
                    self.centers[c]
                }
            })
            .collect()
    }
}

/// Extension used by the solver: bounding box over an index subset.
trait AabbIndexed<const D: usize> {
    fn from_points_indexed(points: &[Point<D>], idx: &[u32]) -> Option<Aabb<D>>;
}

impl<const D: usize> AabbIndexed<D> for Aabb<D> {
    fn from_points_indexed(points: &[Point<D>], idx: &[u32]) -> Option<Aabb<D>> {
        let first = *idx.first()?;
        let p0 = points[first as usize];
        let mut bb = Aabb { min: p0, max: p0 };
        for &i in &idx[1..] {
            bb.grow(&points[i as usize]);
        }
        Some(bb)
    }
}

/// Run balanced k-means (Algorithm 2) on the rank-local `points` with the
/// given replicated `initial_centers`.
///
/// All ranks must call this collectively with identical `k`, `cfg`, and
/// `initial_centers`. Returns the local assignment plus final replicated
/// centers/influences and this rank's work counters.
pub fn balanced_kmeans<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
    initial_centers: Vec<Point<D>>,
    cfg: &Config,
) -> KMeansOutput<D> {
    balanced_kmeans_warm(comm, points, weights, k, initial_centers, vec![1.0; k], cfg)
}

/// Warm-started balanced k-means: resume from the centers *and* influence
/// values of a previous solve instead of the neutral `I(c) = 1` start.
///
/// This is the solver behind [`crate::repartition_spmd`] (DESIGN.md §5):
/// on a converged previous solution, `(centers, influence)` exactly
/// reproduce the previous assignment, so an unchanged point set re-balances
/// in one assignment pass with zero migration, and a slightly drifted one
/// converges in a handful of iterations instead of re-running the whole
/// SFC bootstrap.
///
/// Same collective contract as [`balanced_kmeans`]; `initial_influence`
/// must be replicated, length `k`, and strictly positive.
pub fn balanced_kmeans_warm<const D: usize, C: Comm>(
    comm: &C,
    points: &[Point<D>],
    weights: &[f64],
    k: usize,
    initial_centers: Vec<Point<D>>,
    initial_influence: Vec<f64>,
    cfg: &Config,
) -> KMeansOutput<D> {
    assert_eq!(points.len(), weights.len());
    assert_eq!(initial_centers.len(), k, "need exactly k initial centers");
    assert_eq!(initial_influence.len(), k, "need exactly k initial influences");
    assert!(
        initial_influence.iter().all(|i| i.is_finite() && *i > 0.0),
        "initial influences must be positive and finite"
    );
    assert!(k >= 1, "geographer config: k must be at least 1");
    cfg.validate();
    let n_local = points.len();

    // Neighbourhood scale β(C) for the erosion sigmoid: the expected
    // cluster cell size, 2·diag/k^(1/D). A deterministic proxy for the
    // paper's "average cluster diameter" (DESIGN.md §2).
    let bb = crate::pipeline::global_bbox(comm, points);
    let local_w_max = weights.iter().copied().fold(0.0, f64::max);
    let w_max = comm.allreduce(local_w_max, f64::max);
    let diag = bb.diagonal();
    let beta = 2.0 * diag / (k as f64).powf(1.0 / D as f64);
    let delta_threshold = cfg.delta_threshold * diag;

    let mut solver = Solver {
        points,
        weights,
        k,
        cfg,
        centers: initial_centers,
        influence: initial_influence,
        assignment: vec![0u32; n_local],
        ub: vec![f64::INFINITY; n_local],
        lb: vec![0.0; n_local],
        w_max,
        fractions: cfg.fractions(k),
        evals: Vec::with_capacity(n_local),
        stats: KMeansStats::default(),
    };

    // Sampling initialization (Sec. 4.5): a random local permutation whose
    // prefix is the active sample, doubling every movement round.
    let mut perm: Vec<u32> = (0..n_local as u32).collect();
    let mut sample_len = if cfg.sampling_init {
        let mut rng = SplitMix64::new(cfg.seed ^ (comm.rank() as u64).wrapping_mul(0xA24B_AED4));
        rng.shuffle(&mut perm);
        cfg.initial_sample.min(n_local)
    } else {
        n_local
    };

    let mut iterations_left = cfg.max_iterations;
    while iterations_left > 0 {
        iterations_left -= 1;
        solver.stats.movement_iterations += 1;
        let active = &perm[..sample_len];

        // Everyone must agree whether this is still a sampling round.
        let local_full = u64::from(sample_len >= n_local);
        let all_full = comm.allreduce(local_full, u64::min) == 1;

        solver.assign_and_balance(comm, active);

        let new_centers = solver.new_centers(comm, active);
        let delta: Vec<f64> =
            solver.centers.iter().zip(&new_centers).map(|(a, b)| a.dist(b)).collect();
        let max_delta = delta.iter().copied().fold(0.0, f64::max);

        // Converged = centers stationary AND the balance constraint met.
        // (A stationary-but-imbalanced state keeps iterating: the influence
        // adaptation inside assign_and_balance continues to shift block
        // boundaries even with fixed centers; cf. the paper's Sec. 4.5
        // "balance was always achieved when allowing a sufficient number of
        // balance and movement iterations".)
        if all_full && max_delta < delta_threshold && solver.stats.balance_achieved {
            solver.stats.converged = true;
            break;
        }

        // Move centers; erode influences (Eqs. 2–3); relax bounds (Eqs.
        // 4–5, corrected).
        let old_influence = solver.influence.clone();
        solver.centers = new_centers;
        if cfg.influence_erosion {
            for (inf, &d) in solver.influence.iter_mut().zip(&delta) {
                *inf = erode(*inf, erosion_alpha(d, beta));
            }
        }
        if cfg.hamerly_bounds {
            let relax = Relaxation::movement(&delta, &old_influence, &solver.influence);
            let n = solver.ub.len();
            relax.apply(&mut solver.ub, &mut solver.lb, &solver.assignment, n);
        }

        if !all_full {
            sample_len = (sample_len * 2).min(n_local);
        }
    }

    // If the iteration budget ran out mid-sampling, points outside the
    // sample have never been assigned: finish with one full pass. The
    // decision must be global so the collectives stay matched.
    let local_full = u64::from(sample_len >= n_local);
    let all_full = comm.allreduce(local_full, u64::min) == 1;
    if !all_full {
        solver.assign_and_balance(comm, &perm);
    }

    KMeansOutput {
        assignment: solver.assignment,
        centers: solver.centers,
        influence: solver.influence,
        stats: solver.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_parcomm::SelfComm;

    fn uniform_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect()
    }

    fn sfc_like_centers(points: &[Point<2>], k: usize) -> Vec<Point<2>> {
        // Deterministic spread-out centers for tests: every (n/k)-th point.
        let n = points.len();
        (0..k).map(|i| points[(i * n / k + n / (2 * k)).min(n - 1)]).collect()
    }

    #[test]
    fn k1_assigns_all_to_zero() {
        let pts = uniform_points(200, 1);
        let w = vec![1.0; 200];
        let out = balanced_kmeans(&SelfComm, &pts, &w, 1, vec![pts[0]], &Config::default());
        assert!(out.assignment.iter().all(|&b| b == 0));
        assert_eq!(out.stats.final_imbalance, 0.0);
    }

    #[test]
    fn balance_constraint_met_on_uniform_data() {
        let n = 3000;
        let pts = uniform_points(n, 2);
        let w = vec![1.0; n];
        let k = 8;
        let cfg = Config::default();
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        let mut sizes = vec![0.0; k];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let avg = n as f64 / k as f64;
        assert!(
            max / avg - 1.0 <= cfg.epsilon + 1e-9,
            "imbalance {} > ε, sizes {sizes:?}",
            max / avg - 1.0
        );
    }

    #[test]
    fn balance_constraint_met_on_skewed_density() {
        // Heavy cluster of points in a corner plus sparse rest: influence
        // balancing must still achieve ε.
        let mut rng = SplitMix64::new(3);
        let mut pts = Vec::new();
        for _ in 0..2000 {
            pts.push(Point::new([rng.next_f64() * 0.1, rng.next_f64() * 0.1]));
        }
        for _ in 0..1000 {
            pts.push(Point::new([rng.next_f64(), rng.next_f64()]));
        }
        let w = vec![1.0; pts.len()];
        let k = 6;
        let cfg = Config { max_iterations: 80, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        let mut sizes = vec![0.0; k];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let avg = pts.len() as f64 / k as f64;
        assert!(
            max / avg - 1.0 <= cfg.epsilon + 1e-9,
            "imbalance {} sizes {sizes:?}",
            max / avg - 1.0
        );
    }

    #[test]
    fn weighted_balance() {
        let n = 2000;
        let pts = uniform_points(n, 4);
        let mut rng = SplitMix64::new(5);
        let w: Vec<f64> = (0..n).map(|_| 1.0 + 9.0 * rng.next_f64()).collect();
        let k = 5;
        let cfg = Config::default();
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        let mut sizes = vec![0.0; k];
        for (&b, &wi) in out.assignment.iter().zip(&w) {
            sizes[b as usize] += wi;
        }
        let total: f64 = w.iter().sum();
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        assert!(max / (total / k as f64) - 1.0 <= cfg.epsilon + 1e-9, "{sizes:?}");
    }

    #[test]
    fn optimizations_do_not_change_result() {
        // With bounds/pruning on or off, the algorithm must produce the
        // *identical* assignment (they are exact optimizations).
        let n = 1500;
        let pts = uniform_points(n, 6);
        let w = vec![1.0; n];
        let k = 7;
        let centers = sfc_like_centers(&pts, k);
        let base_cfg =
            Config { sampling_init: false, ..Config::default() };
        let on = balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &base_cfg);
        let off = balanced_kmeans(
            &SelfComm,
            &pts,
            &w,
            k,
            centers,
            &Config { hamerly_bounds: false, bbox_pruning: false, ..base_cfg },
        );
        assert_eq!(on.assignment, off.assignment);
        assert!(
            on.stats.distance_evals < off.stats.distance_evals,
            "optimizations must save distance evaluations ({} vs {})",
            on.stats.distance_evals,
            off.stats.distance_evals
        );
    }

    #[test]
    fn hamerly_skip_rate_is_high_in_late_iterations() {
        // Sec. 4.3: "the innermost loop can be skipped in about 80 % of the
        // cases". On uniform data with enough iterations the aggregate skip
        // rate must be substantial.
        let n = 4000;
        let pts = uniform_points(n, 7);
        let w = vec![1.0; n];
        let k = 10;
        let cfg = Config { sampling_init: false, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        assert!(
            out.stats.skip_rate() > 0.4,
            "skip rate unexpectedly low: {}",
            out.stats.skip_rate()
        );
    }

    #[test]
    fn converges_and_reports_it() {
        let pts = uniform_points(1000, 8);
        let w = vec![1.0; 1000];
        let cfg = Config { max_iterations: 200, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, 4, sfc_like_centers(&pts, 4), &cfg);
        assert!(out.stats.converged, "should converge within 200 iterations");
        assert!(out.stats.movement_iterations < 200);
    }

    #[test]
    fn rayon_path_matches_serial() {
        let n = 6000; // above the rayon threshold
        let pts = uniform_points(n, 9);
        let w = vec![1.0; n];
        let k = 6;
        let centers = sfc_like_centers(&pts, k);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let serial = balanced_kmeans(&SelfComm, &pts, &w, k, centers.clone(), &cfg);
        let parallel = balanced_kmeans(
            &SelfComm,
            &pts,
            &w,
            k,
            centers,
            &Config { parallel_local: true, ..cfg },
        );
        assert_eq!(serial.assignment, parallel.assignment);
    }

    #[test]
    fn sampling_init_assigns_every_point() {
        let pts = uniform_points(3000, 10);
        let w = vec![1.0; 3000];
        // Few iterations: the run ends while sampling is still growing; the
        // final full pass must still assign everything within balance.
        let cfg = Config { max_iterations: 2, ..Config::default() };
        let out = balanced_kmeans(&SelfComm, &pts, &w, 5, sfc_like_centers(&pts, 5), &cfg);
        let mut sizes = vec![0usize; 5];
        for &b in &out.assignment {
            sizes[b as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "every block populated: {sizes:?}");
    }

    #[test]
    fn heterogeneous_target_fractions() {
        // Paper footnote 1: non-uniform block sizes for heterogeneous
        // architectures. Ask for a 1/2 : 1/4 : 1/4 split.
        let n = 4000;
        let pts = uniform_points(n, 21);
        let w = vec![1.0; n];
        let fractions = vec![0.5, 0.25, 0.25];
        let cfg = Config {
            target_fractions: Some(fractions.clone()),
            max_iterations: 150,
            ..Config::default()
        };
        let out = balanced_kmeans(&SelfComm, &pts, &w, 3, sfc_like_centers(&pts, 3), &cfg);
        let mut sizes = [0.0; 3];
        for &b in &out.assignment {
            sizes[b as usize] += 1.0;
        }
        for (c, &frac) in fractions.iter().enumerate() {
            let target = n as f64 * frac;
            assert!(
                sizes[c] <= (1.0 + cfg.epsilon) * target + 1e-9,
                "block {c}: {} > (1+ε)·{target}",
                sizes[c]
            );
        }
        assert!(out.stats.balance_achieved);
        // The big block really is about twice the small ones.
        assert!(sizes[0] > 1.8 * sizes[1]);
    }

    #[test]
    #[should_panic(expected = "length must equal k")]
    fn wrong_fraction_count_panics() {
        let pts = uniform_points(100, 22);
        let w = vec![1.0; 100];
        let cfg = Config { target_fractions: Some(vec![0.5, 0.5]), ..Config::default() };
        let _ = balanced_kmeans(&SelfComm, &pts, &w, 3, sfc_like_centers(&pts, 3), &cfg);
    }

    #[test]
    fn warm_restart_of_converged_state_is_a_fixed_point() {
        // Re-running the solver from a converged (centers, influence) pair
        // on the same points must reproduce the assignment exactly and stop
        // after a single movement iteration — the contract the whole
        // repartitioning subsystem rests on (DESIGN.md §5).
        let pts = uniform_points(1500, 30);
        let w = vec![1.0; 1500];
        let k = 6;
        let cfg = Config { sampling_init: false, max_iterations: 200, ..Config::default() };
        let cold = balanced_kmeans(&SelfComm, &pts, &w, k, sfc_like_centers(&pts, k), &cfg);
        assert!(cold.stats.converged);
        let warm = balanced_kmeans_warm(
            &SelfComm,
            &pts,
            &w,
            k,
            cold.centers.clone(),
            cold.influence.clone(),
            &cfg,
        );
        assert_eq!(warm.assignment, cold.assignment);
        assert_eq!(warm.stats.movement_iterations, 1);
        assert!(warm.stats.converged);
    }

    #[test]
    #[should_panic(expected = "initial influences must be positive")]
    fn warm_restart_rejects_non_positive_influence() {
        let pts = uniform_points(100, 31);
        let w = vec![1.0; 100];
        let _ = balanced_kmeans_warm(
            &SelfComm,
            &pts,
            &w,
            2,
            sfc_like_centers(&pts, 2),
            vec![1.0, 0.0],
            &Config::default(),
        );
    }

    #[test]
    fn influences_stay_positive_and_finite() {
        let pts = uniform_points(2000, 11);
        let w = vec![1.0; 2000];
        let out =
            balanced_kmeans(&SelfComm, &pts, &w, 9, sfc_like_centers(&pts, 9), &Config::default());
        for &i in &out.influence {
            assert!(i.is_finite() && i > 0.0, "influence degenerated: {i}");
        }
    }
}
