//! A kd-tree over cluster centers for effective-distance nearest-center
//! queries — the alternative the paper dismisses (Sec. 4.3: "Nearest-
//! neighbor data structures like kd-trees are outperformed by simpler
//! distance bounds in most published experiments"). We implement it so the
//! claim can be measured rather than assumed (`ablation_kdtree`).
//!
//! The twist relative to a plain NN tree: the metric is the *effective*
//! distance `dist(p, center(c)) / influence(c)`. A subtree can only be
//! pruned when even its most favourable combination — closest possible
//! center position and largest influence in the subtree — cannot beat the
//! current best: `minDist(p, subtree_bbox) / max_influence ≥ best`.

use geographer_geometry::{Aabb, Point};

/// One node of the center tree (stored in a flat arena).
#[derive(Debug)]
struct Node<const D: usize> {
    /// Bounding box of the centers below this node.
    bbox: Aabb<D>,
    /// Largest influence value below this node.
    max_influence: f64,
    /// Children indices, or the leaf's center range.
    kind: NodeKind,
}

#[derive(Debug)]
enum NodeKind {
    /// Inner node: arena indices of the two children.
    Inner(usize, usize),
    /// Leaf: range into the permuted center index array.
    Leaf(usize, usize),
}

/// Centers are kept in a permutation array so the input order is preserved
/// for the caller.
#[derive(Debug)]
pub struct CenterTree<const D: usize> {
    nodes: Vec<Node<D>>,
    /// Permuted center ids; leaves reference contiguous ranges.
    perm: Vec<u32>,
    centers: Vec<Point<D>>,
    influence: Vec<f64>,
    root: usize,
}

/// Query result: the best center and the number of exact effective-distance
/// evaluations spent (for the ablation's accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestCenter {
    /// Center index with the smallest effective distance.
    pub center: u32,
    /// Its effective distance.
    pub eff_dist: f64,
    /// Exact distance evaluations performed during the query.
    pub evals: u32,
}

const LEAF_SIZE: usize = 4;

/// Reusable explicit traversal stack for batched queries: one amortized
/// allocation across any number of [`CenterTree::nearest_with`] calls
/// instead of per-query recursion frames. Part of the cache-blocked query
/// path — a block of points walks the tree through one warm cursor.
#[derive(Debug, Default)]
pub struct TreeCursor {
    stack: Vec<usize>,
}

impl<const D: usize> CenterTree<D> {
    /// Build a tree over `centers` with the given `influence` values.
    ///
    /// # Panics
    /// On empty input or length mismatch.
    pub fn build(centers: &[Point<D>], influence: &[f64]) -> Self {
        assert!(!centers.is_empty(), "need at least one center");
        assert_eq!(centers.len(), influence.len());
        let mut tree = CenterTree {
            nodes: Vec::with_capacity(2 * centers.len() / LEAF_SIZE + 2),
            perm: (0..centers.len() as u32).collect(),
            centers: centers.to_vec(),
            influence: influence.to_vec(),
            root: 0,
        };
        let n = centers.len();
        tree.root = tree.build_node(0, n);
        tree
    }

    fn bbox_and_max_infl(&self, lo: usize, hi: usize) -> (Aabb<D>, f64) {
        let first = self.perm[lo] as usize;
        let mut bbox = Aabb { min: self.centers[first], max: self.centers[first] };
        let mut max_infl = self.influence[first];
        for &c in &self.perm[lo + 1..hi] {
            bbox.grow(&self.centers[c as usize]);
            max_infl = max_infl.max(self.influence[c as usize]);
        }
        (bbox, max_infl)
    }

    fn build_node(&mut self, lo: usize, hi: usize) -> usize {
        let (bbox, max_influence) = self.bbox_and_max_infl(lo, hi);
        if hi - lo <= LEAF_SIZE {
            self.nodes.push(Node { bbox, max_influence, kind: NodeKind::Leaf(lo, hi) });
            return self.nodes.len() - 1;
        }
        // Median split along the widest dimension of the bbox.
        let dim = bbox.widest_dim();
        let mid = lo + (hi - lo) / 2;
        let centers = &self.centers;
        self.perm[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
            centers[a as usize][dim].total_cmp(&centers[b as usize][dim])
        });
        let left = self.build_node(lo, mid);
        let right = self.build_node(mid, hi);
        self.nodes.push(Node { bbox, max_influence, kind: NodeKind::Inner(left, right) });
        self.nodes.len() - 1
    }

    /// Smallest possible effective distance from `p` to any center in node
    /// `n` (the pruning bound).
    #[inline]
    fn lower_bound(&self, n: usize, p: &Point<D>) -> f64 {
        self.nodes[n].bbox.min_dist(p) / self.nodes[n].max_influence
    }

    /// Find the center with minimum effective distance to `p`.
    pub fn nearest(&self, p: &Point<D>) -> NearestCenter {
        let mut best = NearestCenter { center: 0, eff_dist: f64::INFINITY, evals: 0 };
        self.search(self.root, p, &mut best);
        best
    }

    /// [`CenterTree::nearest`] driven through a reusable explicit stack.
    /// The traversal is the exact depth-first order of the recursive
    /// `search` (more promising child first, bound re-checked on entry),
    /// so results *and* eval counts are identical — only the per-query
    /// allocation is gone.
    pub fn nearest_with(&self, p: &Point<D>, cursor: &mut TreeCursor) -> NearestCenter {
        let mut best = NearestCenter { center: 0, eff_dist: f64::INFINITY, evals: 0 };
        cursor.stack.clear();
        cursor.stack.push(self.root);
        while let Some(n) = cursor.stack.pop() {
            if self.lower_bound(n, p) >= best.eff_dist {
                continue;
            }
            match self.nodes[n].kind {
                NodeKind::Leaf(lo, hi) => {
                    for &c in &self.perm[lo..hi] {
                        let e =
                            p.dist(&self.centers[c as usize]) / self.influence[c as usize];
                        best.evals += 1;
                        if e < best.eff_dist || (e == best.eff_dist && c < best.center) {
                            best.eff_dist = e;
                            best.center = c;
                        }
                    }
                }
                NodeKind::Inner(l, r) => {
                    let (first, second) = if self.lower_bound(l, p) <= self.lower_bound(r, p)
                    {
                        (l, r)
                    } else {
                        (r, l)
                    };
                    // Second below first: the whole first subtree is
                    // processed before the second is even bound-checked,
                    // matching the recursion.
                    cursor.stack.push(second);
                    cursor.stack.push(first);
                }
            }
        }
        best
    }

    /// Nearest center for every point of a block, appended to `out`: the
    /// batch entry point of the ablation. One cursor (and one output
    /// buffer) serves the whole batch, so a block of spatially adjacent
    /// points reuses the same hot tree nodes with zero allocation.
    pub fn nearest_batch(
        &self,
        points: &[Point<D>],
        cursor: &mut TreeCursor,
        out: &mut Vec<NearestCenter>,
    ) {
        out.clear();
        out.reserve(points.len());
        out.extend(points.iter().map(|p| self.nearest_with(p, cursor)));
    }

    fn search(&self, n: usize, p: &Point<D>, best: &mut NearestCenter) {
        if self.lower_bound(n, p) >= best.eff_dist {
            return;
        }
        match self.nodes[n].kind {
            NodeKind::Leaf(lo, hi) => {
                for &c in &self.perm[lo..hi] {
                    let e = p.dist(&self.centers[c as usize]) / self.influence[c as usize];
                    best.evals += 1;
                    if e < best.eff_dist
                        || (e == best.eff_dist && c < best.center)
                    {
                        best.eff_dist = e;
                        best.center = c;
                    }
                }
            }
            NodeKind::Inner(l, r) => {
                // Visit the more promising child first.
                let (first, second) = if self.lower_bound(l, p) <= self.lower_bound(r, p) {
                    (l, r)
                } else {
                    (r, l)
                };
                self.search(first, p, best);
                self.search(second, p, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;

    fn brute_force<const D: usize>(
        p: &Point<D>,
        centers: &[Point<D>],
        infl: &[f64],
    ) -> (u32, f64) {
        let mut best = (0u32, f64::INFINITY);
        for (c, (ctr, i)) in centers.iter().zip(infl).enumerate() {
            let e = p.dist(ctr) / i;
            if e < best.1 {
                best = (c as u32, e);
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_uniform_influence() {
        let mut rng = SplitMix64::new(1);
        let centers: Vec<Point<2>> =
            (0..40).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let infl = vec![1.0; 40];
        let tree = CenterTree::build(&centers, &infl);
        for _ in 0..500 {
            let p = Point::new([rng.next_f64(), rng.next_f64()]);
            let got = tree.nearest(&p);
            let want = brute_force(&p, &centers, &infl);
            assert_eq!(got.center, want.0);
            assert!((got.eff_dist - want.1).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_brute_force_warped_metric() {
        // The influence warp is where naive kd-tree pruning would go wrong.
        let mut rng = SplitMix64::new(2);
        let centers: Vec<Point<3>> = (0..60)
            .map(|_| Point::new([rng.next_f64(), rng.next_f64(), rng.next_f64()]))
            .collect();
        let infl: Vec<f64> = (0..60).map(|_| 0.2 + 2.0 * rng.next_f64()).collect();
        let tree = CenterTree::build(&centers, &infl);
        for _ in 0..500 {
            let p =
                Point::new([rng.next_f64() * 2.0 - 0.5, rng.next_f64(), rng.next_f64()]);
            let got = tree.nearest(&p);
            let want = brute_force(&p, &centers, &infl);
            assert!(
                (got.eff_dist - want.1).abs() < 1e-12,
                "eff dist mismatch: {} vs {}",
                got.eff_dist,
                want.1
            );
        }
    }

    #[test]
    fn prunes_most_of_the_tree() {
        let mut rng = SplitMix64::new(3);
        let k = 256;
        let centers: Vec<Point<2>> =
            (0..k).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let infl = vec![1.0; k];
        let tree = CenterTree::build(&centers, &infl);
        let mut total_evals = 0u32;
        let queries = 200;
        for _ in 0..queries {
            let p = Point::new([rng.next_f64(), rng.next_f64()]);
            total_evals += tree.nearest(&p).evals;
        }
        let avg = total_evals as f64 / queries as f64;
        assert!(avg < k as f64 / 4.0, "kd-tree should prune hard: {avg} evals/query");
    }

    #[test]
    fn cursor_traversal_matches_recursive_search() {
        let mut rng = SplitMix64::new(9);
        let centers: Vec<Point<2>> =
            (0..80).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let infl: Vec<f64> = (0..80).map(|_| 0.5 + rng.next_f64()).collect();
        let tree = CenterTree::build(&centers, &infl);
        let queries: Vec<Point<2>> =
            (0..300).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let mut cursor = TreeCursor::default();
        let mut batch = Vec::new();
        tree.nearest_batch(&queries, &mut cursor, &mut batch);
        for (p, got) in queries.iter().zip(&batch) {
            let want = tree.nearest(p);
            // Same center, same distance, same eval count: the iterative
            // walk is the recursive walk.
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn single_center() {
        let tree = CenterTree::build(&[Point::new([0.5, 0.5])], &[2.0]);
        let r = tree.nearest(&Point::new([1.5, 0.5]));
        assert_eq!(r.center, 0);
        assert!((r.eff_dist - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical centers: the smaller id must win.
        let c = Point::new([0.3, 0.3]);
        let tree = CenterTree::build(&[c, c], &[1.0, 1.0]);
        assert_eq!(tree.nearest(&Point::new([0.9, 0.1])).center, 0);
    }
}
