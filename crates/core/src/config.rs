//! Tuning parameters of balanced k-means and the Geographer pipeline.

/// Configuration of [`crate::balanced_kmeans`] / the full pipeline.
///
/// Defaults follow the paper: ε = 3 % imbalance (Sec. 5.2.5), influence
/// change capped at 5 % per balance step (Sec. 4.2), sampling
/// initialization starting from 100 points per process (Sec. 4.5), and the
/// geometric optimizations (Hamerly bounds, bounding-box pruning) enabled.
/// The feature switches exist for the ablation experiments.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum allowed imbalance ε: every block weight must end up at most
    /// `(1+ε)·(total/k)`.
    pub epsilon: f64,
    /// Maximum number of center-movement iterations (Algorithm 2's
    /// `maxIter`).
    pub max_iterations: usize,
    /// Maximum balancing iterations between center movements (Algorithm 1's
    /// `maxBalanceIter`, a tuning parameter per Sec. 4.2).
    pub max_balance_iterations: usize,
    /// Convergence threshold for the maximum center movement, relative to
    /// the diagonal of the global bounding box (Algorithm 2's
    /// `deltaThreshold`).
    pub delta_threshold: f64,
    /// Cap on the per-step influence change ("we restrict the maximum
    /// influence change in one step to 5 %").
    pub influence_change_cap: f64,
    /// Enable the sigmoid influence-erosion scheme (Eqs. 2–3).
    pub influence_erosion: bool,
    /// Enable the adapted Hamerly distance bounds (Sec. 4.3).
    pub hamerly_bounds: bool,
    /// Enable center-to-bounding-box pruning (Sec. 4.4).
    pub bbox_pruning: bool,
    /// Enable the geometric-progression sampling initialization: start with
    /// `initial_sample` random local points, double after every movement
    /// round (Sec. 4.5). Disabled = every round uses the full point set.
    pub sampling_init: bool,
    /// Sample size of the first sampling round.
    pub initial_sample: usize,
    /// Seed for the local permutation used by the sampling initialization.
    pub seed: u64,
    /// Parallelize the rank-local assignment loop with rayon. Use in
    /// single-rank (shared-memory) mode; leave off under `ThreadComm`,
    /// where ranks already occupy the cores.
    pub parallel_local: bool,
    /// Run the assignment pass through the blocked structure-of-arrays
    /// kernel (per-dimension coordinate lanes, per-block center pruning;
    /// DESIGN.md §9). Bitwise-identical to the array-of-structs reference
    /// path — the switch exists so the equivalence stays property-testable
    /// and the perf delta measurable, not as an accuracy trade-off.
    pub soa_kernel: bool,
    /// Per-block target weight fractions for non-uniform block sizes (the
    /// paper's footnote 1: "When non-uniform block sizes are desired, for
    /// example when partitioning for heterogeneous architectures, this can
    /// easily be adapted"). `None` = uniform `1/k` targets. When `Some`,
    /// the vector must have length `k`, positive entries; it is normalized
    /// to sum to 1.
    pub target_fractions: Option<Vec<f64>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            epsilon: 0.03,
            max_iterations: 120,
            max_balance_iterations: 50,
            delta_threshold: 2e-3,
            influence_change_cap: 0.05,
            influence_erosion: true,
            hamerly_bounds: true,
            bbox_pruning: true,
            sampling_init: true,
            initial_sample: 100,
            seed: 0x9e0_97e5,
            parallel_local: false,
            soa_kernel: true,
            target_fractions: None,
        }
    }
}

impl Config {
    /// Preset with every geometric optimization disabled — the naive
    /// balanced Lloyd baseline the ablation benchmarks compare against.
    pub fn unoptimized() -> Self {
        Config {
            hamerly_bounds: false,
            bbox_pruning: false,
            sampling_init: false,
            ..Config::default()
        }
    }

    /// Sanity-check parameter ranges.
    ///
    /// # Panics
    /// On out-of-range parameters, with a `geographer config:`-prefixed
    /// message. Every parameter/argument panic of the stack goes through
    /// this module so the texts stay consistent (and message-tested, see
    /// the `error_messages_are_pinned` test below).
    pub fn validate(&self) {
        assert!(self.epsilon >= 0.0, "geographer config: epsilon must be non-negative");
        assert!(self.max_iterations >= 1, "geographer config: max_iterations must be at least 1");
        assert!(
            self.max_balance_iterations >= 1,
            "geographer config: max_balance_iterations must be at least 1"
        );
        assert!(
            self.delta_threshold >= 0.0,
            "geographer config: delta_threshold must be non-negative"
        );
        assert!(
            self.influence_change_cap > 0.0 && self.influence_change_cap < 1.0,
            "geographer config: influence_change_cap must be in (0,1)"
        );
        assert!(self.initial_sample >= 1, "geographer config: initial_sample must be at least 1");
        if let Some(f) = &self.target_fractions {
            assert!(!f.is_empty(), "geographer config: target_fractions must not be empty");
            assert!(
                f.iter().all(|x| x.is_finite() && *x > 0.0),
                "geographer config: target_fractions must be positive"
            );
        }
    }

    /// Derive the solver configuration of one hierarchy level: identical
    /// tuning knobs, but the level's balance bound and capacity fractions
    /// (`None` inherits this config's ε / uniform targets). Used by
    /// [`crate::hierarchy`]'s recursive solve so that per-level ε
    /// semantics live in exactly one place.
    pub fn for_level(&self, epsilon: Option<f64>, fractions: Option<Vec<f64>>) -> Config {
        Config {
            epsilon: epsilon.unwrap_or(self.epsilon),
            target_fractions: fractions,
            ..self.clone()
        }
    }

    /// The normalized per-block weight fractions for `k` blocks.
    ///
    /// # Panics
    /// If explicit fractions were supplied with a length other than `k`.
    pub fn fractions(&self, k: usize) -> Vec<f64> {
        match &self.target_fractions {
            None => vec![1.0 / k as f64; k],
            Some(f) => {
                assert!(
                    f.len() == k,
                    "geographer config: target_fractions length must equal k \
                     (got {}, k = {k})",
                    f.len()
                );
                let sum: f64 = f.iter().sum();
                f.iter().map(|x| x / sum).collect()
            }
        }
    }
}

/// Validate the block count against the global point count — the *one*
/// place this check lives. Every entry point that knows the global `n`
/// (cold pipeline, warm repartitioning, shared-memory wrappers) calls this
/// instead of rolling its own assert, so the panic message is identical no
/// matter which layer catches the bad `k` first.
///
/// `global_n = 0` with `k = 1` is allowed (the degenerate empty input that
/// [`crate::pipeline::global_bbox`] maps to a unit box).
///
/// # Panics
/// If `k` is zero or exceeds the global point count.
pub fn validate_k(k: usize, global_n: u64) {
    assert!(k >= 1, "geographer config: k must be at least 1");
    assert!(
        k as u64 <= global_n.max(1),
        "geographer config: k = {k} exceeds global point count n = {global_n}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::default();
        assert_eq!(c.epsilon, 0.03);
        assert_eq!(c.influence_change_cap, 0.05);
        assert_eq!(c.initial_sample, 100);
        assert!(c.hamerly_bounds && c.bbox_pruning && c.sampling_init);
        assert!(c.soa_kernel, "the SoA kernel is the default assignment path");
        c.validate();
    }

    #[test]
    fn unoptimized_disables_optimizations() {
        let c = Config::unoptimized();
        assert!(!c.hamerly_bounds && !c.bbox_pruning && !c.sampling_init);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_rejected() {
        Config { epsilon: -0.1, ..Config::default() }.validate();
    }

    #[test]
    fn validate_k_accepts_sane_inputs() {
        validate_k(1, 0); // empty input, one block: the documented degenerate case
        validate_k(4, 4);
        validate_k(8, 1_000_000);
    }

    /// Extract the panic message of `f` as a string (assert! with a literal
    /// panics with `&'static str`, formatted asserts with `String`).
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("closure must panic");
        err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
            (*err.downcast_ref::<&'static str>().expect("panic payload must be a string"))
                .to_owned()
        })
    }

    /// The satellite contract of PR 3: one consistent, message-tested error
    /// path. Pinning the exact texts here keeps every layer (config
    /// validation, the pipeline's k check, the warm repartitioning path)
    /// from drifting back into three different wordings.
    #[test]
    fn error_messages_are_pinned() {
        assert_eq!(
            panic_message(|| validate_k(0, 10)),
            "geographer config: k must be at least 1"
        );
        assert_eq!(
            panic_message(|| validate_k(11, 10)),
            "geographer config: k = 11 exceeds global point count n = 10"
        );
        assert_eq!(
            panic_message(|| Config { epsilon: -0.1, ..Config::default() }.validate()),
            "geographer config: epsilon must be non-negative"
        );
        assert_eq!(
            panic_message(|| Config { max_iterations: 0, ..Config::default() }.validate()),
            "geographer config: max_iterations must be at least 1"
        );
        assert_eq!(
            panic_message(|| {
                Config { influence_change_cap: 1.5, ..Config::default() }.validate()
            }),
            "geographer config: influence_change_cap must be in (0,1)"
        );
        assert_eq!(
            panic_message(|| {
                let _ = Config { target_fractions: Some(vec![0.5, 0.5]), ..Config::default() }
                    .fractions(3);
            }),
            "geographer config: target_fractions length must equal k (got 2, k = 3)"
        );
    }
}
