//! # Geographer: balanced k-means for parallel geometric partitioning
//!
//! A Rust reproduction of *"Balanced k-means for Parallel Geometric
//! Partitioning"* (von Looz, Tzovas, Meyerhenke — ICPP 2018). Geographer
//! partitions the vertex coordinates of a simulation mesh into `k` blocks
//! of (approximately) equal weight while producing compact, convex-ish
//! block shapes, by combining
//!
//! * a **space-filling-curve bootstrap** — points are globally sorted along
//!   a Hilbert curve, which both redistributes them with spatial locality
//!   and seeds `k` well-spread initial centers; and
//! * **balanced k-means** — Lloyd's algorithm where each cluster carries an
//!   *influence* value dividing its distances; influences are adapted until
//!   every block's weight is within `1+ε` of the average, turning the
//!   assignment into a multiplicatively weighted Voronoi diagram.
//!
//! Geometric optimizations (Hamerly-style distance bounds and center-to-
//! bounding-box pruning, both adapted to effective distances) skip the
//! inner loop for the vast majority of points.
//!
//! ## Quick start (shared memory)
//!
//! ```
//! use geographer::{partition, Config};
//! use geographer_geometry::{Point, WeightedPoints};
//!
//! // A thousand points on a ring.
//! let pts: Vec<Point<2>> = (0..1000)
//!     .map(|i| {
//!         let a = i as f64 * 0.00628;
//!         Point::new([a.cos(), a.sin()])
//!     })
//!     .collect();
//! let result = partition(&WeightedPoints::unweighted(pts), 8, &Config::default());
//! assert_eq!(result.assignment.len(), 1000);
//! assert!(result.stats.final_imbalance <= 0.03 + 1e-9);
//! ```
//!
//! ## SPMD (distributed) mode
//!
//! The same algorithm runs over any [`geographer_parcomm::Comm`]; use
//! [`geographer_parcomm::run_spmd`] to execute it with `p` threads as
//! ranks, each owning a shard of the points — the shape of the paper's MPI
//! deployment:
//!
//! ```
//! use geographer::{partition_spmd, Config};
//! use geographer_geometry::Point;
//! use geographer_parcomm::run_spmd;
//!
//! let results = run_spmd(4, |comm| {
//!     use geographer_parcomm::Comm;
//!     let local: Vec<Point<2>> = (0..250)
//!         .map(|i| Point::new([(comm.rank() * 250 + i) as f64 * 1e-3, 0.5]))
//!         .collect();
//!     let w = vec![1.0; local.len()];
//!     partition_spmd(&comm, &local, &w, 4, &Config::default()).assignment
//! });
//! assert_eq!(results.iter().map(Vec::len).sum::<usize>(), 1000);
//! ```
//!
//! ## Repartitioning a drifting point set (warm start)
//!
//! For time-stepped workloads, feed the previous solve's state back in:
//! [`repartition`] / [`repartition_spmd`] skip the SFC bootstrap and
//! warm-start from the previous centers and influences, so most points keep
//! their block (low migration) and convergence takes a handful of
//! iterations (DESIGN.md §5):
//!
//! ```
//! use geographer::{partition, repartition, Config};
//! use geographer_geometry::{Point, WeightedPoints};
//!
//! let mut rng = geographer_geometry::SplitMix64::new(7);
//! let pts: Vec<Point<2>> =
//!     (0..600).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
//! let cfg = Config { sampling_init: false, ..Config::default() };
//! let first = partition(&WeightedPoints::unweighted(pts.clone()), 4, &cfg);
//!
//! // The points drift a little between time steps…
//! let drifted: Vec<Point<2>> =
//!     pts.iter().map(|p| Point::new([p[0] + 0.01, p[1]])).collect();
//! let next =
//!     repartition(&WeightedPoints::unweighted(drifted), &first.previous(), 4, &cfg);
//! let kept = next.assignment.iter().zip(&first.assignment).filter(|(a, b)| a == b).count();
//! assert!(kept >= 540, "warm repartitioning keeps most points in place");
//! ```
//!
//! ## Hierarchical (processor-aware) partitioning
//!
//! For machines with a communication hierarchy (nodes × sockets × cores),
//! solve recursively so the expensive cut lands on the cheap links:
//! [`partition_hierarchical`] partitions into the outermost groups first
//! and then splits inside each group, flattening leaf paths to contiguous
//! flat block ids (DESIGN.md §6):
//!
//! ```
//! use geographer::{partition_hierarchical, Config, HierarchySpec};
//! use geographer_geometry::{Point, WeightedPoints};
//!
//! let mut rng = geographer_geometry::SplitMix64::new(11);
//! let pts: Vec<Point<2>> =
//!     (0..800).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
//! let spec = HierarchySpec::uniform(&[4, 2]); // 4 nodes × 2 cores = 8 blocks
//! let res = partition_hierarchical(
//!     &WeightedPoints::unweighted(pts),
//!     &spec,
//!     &Config { sampling_init: false, ..Config::default() },
//! );
//! assert!(res.assignment.iter().all(|&b| b < 8));
//! assert_eq!(res.paths[5], vec![2, 1]); // block 5 = node 2, core 1
//! ```

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

pub mod bounds;
pub mod config;
pub mod hierarchy;
pub mod influence;
pub mod kdtree;
pub mod kmeans;
pub mod pipeline;
pub mod repartition;

pub use config::{validate_k, Config};
pub use hierarchy::{
    partition_hierarchical, partition_hierarchical_spmd, repartition_hierarchical,
    repartition_hierarchical_spmd, HierarchicalResult, HierarchySpec, LevelSpec,
    PreviousHierarchy,
};
pub use kmeans::{balanced_kmeans, balanced_kmeans_warm, KMeansOutput, KMeansStats};
pub use pipeline::{
    global_bbox, partition, partition_spmd, PhaseComm, PipelineResult, PipelineTimings,
};
pub use repartition::{repartition, repartition_spmd, PreviousPartition};
