//! The planner's input surface: [`MeshView`], [`PlanSpec`], [`PlanState`],
//! and the typed [`PlanError`] validation path.
//!
//! A [`PlanSpec`] names *what* to solve (mesh view, tool, block count,
//! optional processor hierarchy, refinement mode, solver tuning), a
//! [`PlanState`] carries *what a previous plan learned* (the flat or
//! hierarchical warm-start state), and [`crate::Planner::try_solve`] turns
//! the pair into a [`crate::Plan`]. Illegal spec combinations — a flat
//! state handed to a hierarchical spec, refinement without a graph, a
//! baseline tool given warm state — are rejected with a [`PlanError`]
//! whose `Display` text follows the workspace's canonical
//! `geographer config:` error convention (DESIGN.md §8; exact texts pinned
//! by the unit tests below).

use std::fmt;

use geographer::{Config, HierarchySpec, PreviousHierarchy, PreviousPartition};
use geographer_geometry::Point;
use geographer_graph::CsrGraph;
use geographer_mesh::Mesh;
use geographer_refine::{MultilevelConfig, RefineConfig};

use crate::tool::Tool;

/// Borrowed view of the data a plan is solved over: coordinates, weights,
/// and (optionally) the mesh graph quality is measured and refined on.
/// Refinement modes other than [`RefineMode::None`] require the graph.
#[derive(Debug, Clone, Copy)]
pub struct MeshView<'a, const D: usize> {
    /// Vertex coordinates (the full, replicated point set — the planner
    /// shards it across the communicator's ranks internally).
    pub points: &'a [Point<D>],
    /// Per-vertex weights, same length as `points`.
    pub weights: &'a [f64],
    /// The mesh graph, when available (required for refinement and for the
    /// per-level metrics of hierarchical plans).
    pub graph: Option<&'a CsrGraph>,
}

impl<'a, const D: usize> From<&'a Mesh<D>> for MeshView<'a, D> {
    fn from(mesh: &'a Mesh<D>) -> Self {
        MeshView {
            points: &mesh.points,
            weights: &mesh.weights,
            graph: Some(&mesh.graph),
        }
    }
}

/// Which refinement post-pass the plan runs on the assembled assignment.
#[derive(Debug, Clone, Default)]
pub enum RefineMode {
    /// No refinement.
    #[default]
    None,
    /// One flat FM-style boundary pass ([`geographer_refine::refine_partition`]).
    /// Flat specs only — a single sweep has no per-level semantics.
    Single(RefineConfig),
    /// The multilevel coarsen→refine→project V-cycle. On flat specs this is
    /// [`geographer_refine::refine_multilevel`]; on hierarchical specs the
    /// V-cycle runs *per hierarchy level* under each level's ε and capacity
    /// fractions ([`crate::refine_hierarchy_multilevel`]) — the stacked
    /// combination the legacy entry points could not express.
    Multilevel(MultilevelConfig),
}

impl RefineMode {
    /// Display name for benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            RefineMode::None => "none",
            RefineMode::Single(_) => "single",
            RefineMode::Multilevel(_) => "multilevel",
        }
    }
}

/// The reusable prior state of a plan — the unified warm-start surface
/// subsuming [`PreviousPartition`] (flat solves) and [`PreviousHierarchy`]
/// (hierarchical solves). A finished [`crate::Plan`] returns the refreshed
/// state in the matching variant; feed it back into the next
/// [`crate::Planner::try_solve`] call on the drifted point set.
#[derive(Debug, Clone)]
pub enum PlanState<const D: usize> {
    /// Warm state of a flat solve: replicated centers + influences.
    Flat(PreviousPartition<D>),
    /// Warm state of a hierarchical solve: one `(centers, influence)` pair
    /// per internal tree node, pre-order.
    Hierarchical(PreviousHierarchy<D>),
}

impl<const D: usize> PlanState<D> {
    /// Which spec shape this state warm-starts.
    pub fn kind(&self) -> &'static str {
        match self {
            PlanState::Flat(_) => "flat",
            PlanState::Hierarchical(_) => "hierarchical",
        }
    }

    /// Number of leaf blocks this state describes.
    pub fn k(&self) -> usize {
        match self {
            PlanState::Flat(p) => p.k(),
            PlanState::Hierarchical(h) => h.arities.iter().product(),
        }
    }
}

/// Full description of one partitioning problem: what the legacy entry
/// points (`partition`/`repartition_spmd`, `partition_hierarchical(_spmd)`,
/// `refine_multilevel`) each solved a slice of, as one value. See
/// DESIGN.md §8 for which combinations are legal.
#[derive(Debug, Clone)]
pub struct PlanSpec<'a, const D: usize> {
    /// The data being partitioned.
    pub mesh: MeshView<'a, D>,
    /// Which partitioner runs.
    pub tool: Tool,
    /// Number of leaf blocks. With a hierarchy this must equal the
    /// hierarchy's total leaf count (`spec.total_blocks()`).
    pub k: usize,
    /// Solve for a processor hierarchy instead of a flat k-way split
    /// (Geographer only; per-level ε and capacity fractions live in the
    /// spec's levels).
    pub hierarchy: Option<HierarchySpec>,
    /// Refinement post-pass on the assembled assignment.
    pub refine: RefineMode,
    /// Solver tuning (ε, iteration caps, `target_fractions` for flat
    /// heterogeneous solves, …).
    pub config: Config,
}

impl<'a, const D: usize> PlanSpec<'a, D> {
    /// Flat spec with no refinement — the cold-pipeline shape.
    pub fn flat(mesh: MeshView<'a, D>, tool: Tool, k: usize, config: Config) -> Self {
        PlanSpec { mesh, tool, k, hierarchy: None, refine: RefineMode::None, config }
    }

    /// Hierarchical Geographer spec with no refinement; `k` is derived
    /// from the hierarchy's arities.
    pub fn hierarchical(mesh: MeshView<'a, D>, spec: HierarchySpec, config: Config) -> Self {
        let k = spec.total_blocks();
        PlanSpec {
            mesh,
            tool: Tool::Geographer,
            k,
            hierarchy: Some(spec),
            refine: RefineMode::None,
            config,
        }
    }

    /// Same spec with a refinement mode.
    pub fn with_refine(mut self, refine: RefineMode) -> Self {
        self.refine = refine;
        self
    }

    /// The leaf-level target weight fractions this spec implies: the flat
    /// `config.target_fractions` for flat specs, or the per-level product
    /// of the hierarchy's capacity fractions for hierarchical specs
    /// (`None` = uniform).
    pub fn leaf_fractions(&self) -> Option<Vec<f64>> {
        match &self.hierarchy {
            None => self.config.target_fractions.clone(),
            Some(h) => {
                if h.levels.iter().all(|l| l.fractions.is_none()) {
                    return None;
                }
                let total = h.total_blocks();
                let mut fractions = vec![1.0f64; total];
                for (b, f) in fractions.iter_mut().enumerate() {
                    let path = h.path_of_block(b as u32);
                    for (l, lv) in h.levels.iter().enumerate() {
                        if let Some(lf) = &lv.fractions {
                            let sum: f64 = lf.iter().sum();
                            *f *= lf[path[l] as usize] / sum;
                        }
                    }
                }
                Some(fractions)
            }
        }
    }

    /// Check the spec/state combination, returning the typed error the
    /// `geographer config:` convention documents (DESIGN.md §8).
    ///
    /// Parameter-range errors inside `config` and `hierarchy` keep their
    /// existing canonical panics ([`Config::validate`],
    /// [`HierarchySpec::validate`]); this function owns the *combination*
    /// checks the legacy entry points could not express.
    pub fn validate(&self, state: Option<&PlanState<D>>) -> Result<(), PlanError> {
        let n = self.mesh.points.len();
        if n != self.mesh.weights.len() {
            return Err(PlanError::MeshLengths { points: n, weights: self.mesh.weights.len() });
        }
        if let Some(g) = self.mesh.graph {
            if g.n() != n {
                return Err(PlanError::GraphLength { graph: g.n(), points: n });
            }
        }
        if self.k == 0 {
            return Err(PlanError::KZero);
        }
        if self.k as u64 > (n as u64).max(1) {
            return Err(PlanError::KExceedsN { k: self.k, n: n as u64 });
        }
        if let Some(h) = &self.hierarchy {
            if self.tool != Tool::Geographer {
                return Err(PlanError::HierarchicalTool { tool: self.tool.name() });
            }
            if self.k != h.total_blocks() {
                return Err(PlanError::KHierarchyMismatch {
                    k: self.k,
                    total: h.total_blocks(),
                });
            }
            if self.config.target_fractions.is_some() {
                return Err(PlanError::HierarchicalFlatFractions);
            }
            if matches!(self.refine, RefineMode::Single(_)) {
                return Err(PlanError::HierarchicalSingleRefine);
            }
        }
        if !matches!(self.refine, RefineMode::None) && self.mesh.graph.is_none() {
            return Err(PlanError::MissingGraph);
        }
        if let Some(state) = state {
            if !self.tool.is_stateful() {
                return Err(PlanError::StatelessTool { tool: self.tool.name() });
            }
            let spec_kind = if self.hierarchy.is_some() { "hierarchical" } else { "flat" };
            if state.kind() != spec_kind {
                return Err(PlanError::StateKindMismatch {
                    state: state.kind(),
                    spec: spec_kind,
                });
            }
            match (state, &self.hierarchy) {
                (PlanState::Flat(p), None) => {
                    if p.k() != self.k {
                        return Err(PlanError::StateSizeMismatch { state_k: p.k(), k: self.k });
                    }
                }
                (PlanState::Hierarchical(p), Some(h)) => {
                    if p.arities != h.arities() {
                        return Err(PlanError::StateArityMismatch {
                            state: p.arities.clone(),
                            spec: h.arities(),
                        });
                    }
                }
                _ => unreachable!("kind mismatch is caught above"),
            }
        }
        Ok(())
    }
}

/// Why a [`PlanSpec`]/[`PlanState`] combination is illegal. The `Display`
/// texts follow the workspace's canonical `geographer config:` convention
/// — the `k` texts are *identical* to [`geographer::validate_k`]'s panic
/// messages, so a bad `k` reads the same no matter which layer catches it
/// first (pinned by `error_texts_are_pinned` below).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Mesh view points/weights lengths differ.
    MeshLengths {
        /// Number of points in the view.
        points: usize,
        /// Number of weights in the view.
        weights: usize,
    },
    /// Mesh graph vertex count differs from the point count.
    GraphLength {
        /// Vertices in the graph.
        graph: usize,
        /// Points in the view.
        points: usize,
    },
    /// `k = 0`.
    KZero,
    /// `k` exceeds the point count.
    KExceedsN {
        /// Requested block count.
        k: usize,
        /// Global point count.
        n: u64,
    },
    /// `k` disagrees with the hierarchy's leaf count.
    KHierarchyMismatch {
        /// Requested block count.
        k: usize,
        /// The hierarchy's `total_blocks()`.
        total: usize,
    },
    /// Hierarchical spec with a non-Geographer tool.
    HierarchicalTool {
        /// The offending tool's name.
        tool: &'static str,
    },
    /// Hierarchical spec with flat `Config::target_fractions` set.
    HierarchicalFlatFractions,
    /// Hierarchical spec with [`RefineMode::Single`].
    HierarchicalSingleRefine,
    /// Refinement requested without a mesh graph.
    MissingGraph,
    /// Warm state handed to a stateless (baseline) tool.
    StatelessTool {
        /// The offending tool's name.
        tool: &'static str,
    },
    /// Flat state handed to a hierarchical spec or vice versa.
    StateKindMismatch {
        /// The state's kind.
        state: &'static str,
        /// The spec's kind.
        spec: &'static str,
    },
    /// Flat state block count disagrees with the spec's `k`.
    StateSizeMismatch {
        /// Blocks in the state.
        state_k: usize,
        /// Blocks in the spec.
        k: usize,
    },
    /// Hierarchical state arities disagree with the spec's hierarchy.
    StateArityMismatch {
        /// Arities of the state.
        state: Vec<usize>,
        /// Arities of the spec.
        spec: Vec<usize>,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::MeshLengths { points, weights } => write!(
                f,
                "geographer config: mesh view points and weights lengths differ \
                 ({points} vs {weights})"
            ),
            PlanError::GraphLength { graph, points } => write!(
                f,
                "geographer config: mesh graph has {graph} vertices but the view has \
                 {points} points"
            ),
            PlanError::KZero => write!(f, "geographer config: k must be at least 1"),
            PlanError::KExceedsN { k, n } => {
                write!(f, "geographer config: k = {k} exceeds global point count n = {n}")
            }
            PlanError::KHierarchyMismatch { k, total } => write!(
                f,
                "geographer config: k = {k} does not match the hierarchy's {total} leaf blocks"
            ),
            PlanError::HierarchicalTool { tool } => write!(
                f,
                "geographer config: hierarchical specs require the Geographer tool (got {tool})"
            ),
            PlanError::HierarchicalFlatFractions => write!(
                f,
                "geographer config: hierarchical solves take capacity fractions from the \
                 HierarchySpec's levels; Config::target_fractions must be None"
            ),
            PlanError::HierarchicalSingleRefine => write!(
                f,
                "geographer config: hierarchical specs take RefineMode::None or \
                 RefineMode::Multilevel (a single flat sweep has no per-level semantics)"
            ),
            PlanError::MissingGraph => write!(
                f,
                "geographer config: refinement requires the mesh graph in the plan spec"
            ),
            PlanError::StatelessTool { tool } => write!(
                f,
                "geographer config: tool {tool} is stateless and cannot consume a warm \
                 plan state"
            ),
            PlanError::StateKindMismatch { state, spec } => write!(
                f,
                "geographer config: {state} plan state handed to a {spec} spec"
            ),
            PlanError::StateSizeMismatch { state_k, k } => write!(
                f,
                "geographer config: plan state carries {state_k} blocks but the spec \
                 requests k = {k}"
            ),
            PlanError::StateArityMismatch { state, spec } => write!(
                f,
                "geographer config: plan state arities {state:?} do not match the spec's \
                 {spec:?}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer_geometry::SplitMix64;

    fn points(n: usize, seed: u64) -> (Vec<Point<2>>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let pts: Vec<Point<2>> =
            (0..n).map(|_| Point::new([rng.next_f64(), rng.next_f64()])).collect();
        let w = vec![1.0; n];
        (pts, w)
    }

    fn view<'a>(pts: &'a [Point<2>], w: &'a [f64]) -> MeshView<'a, 2> {
        MeshView { points: pts, weights: w, graph: None }
    }

    #[test]
    fn legal_specs_validate() {
        let (pts, w) = points(64, 1);
        let spec = PlanSpec::flat(view(&pts, &w), Tool::Geographer, 4, Config::default());
        assert!(spec.validate(None).is_ok());
        let spec = PlanSpec::hierarchical(
            view(&pts, &w),
            HierarchySpec::uniform(&[2, 2]),
            Config::default(),
        );
        assert_eq!(spec.k, 4);
        assert!(spec.validate(None).is_ok());
    }

    #[test]
    fn leaf_fractions_multiply_levels() {
        let (pts, w) = points(16, 2);
        let spec = PlanSpec::hierarchical(
            view(&pts, &w),
            HierarchySpec {
                levels: vec![
                    geographer::LevelSpec {
                        arity: 2,
                        epsilon: None,
                        fractions: Some(vec![3.0, 1.0]),
                    },
                    geographer::LevelSpec::uniform(2),
                ],
            },
            Config::default(),
        );
        let f = spec.leaf_fractions().unwrap();
        assert_eq!(f, vec![0.75, 0.75, 0.25, 0.25]);
        // Uniform hierarchy: no explicit fractions.
        let spec = PlanSpec::hierarchical(
            view(&pts, &w),
            HierarchySpec::uniform(&[2, 2]),
            Config::default(),
        );
        assert!(spec.leaf_fractions().is_none());
    }

    /// The satellite contract of ISSUE 6: the planner's validation errors
    /// share the `geographer config:` convention, and the `k` texts are
    /// bitwise identical to `validate_k`'s panics.
    #[test]
    fn error_texts_are_pinned() {
        assert_eq!(
            PlanError::KZero.to_string(),
            "geographer config: k must be at least 1"
        );
        assert_eq!(
            PlanError::KExceedsN { k: 11, n: 10 }.to_string(),
            "geographer config: k = 11 exceeds global point count n = 10"
        );
        assert_eq!(
            PlanError::HierarchicalFlatFractions.to_string(),
            "geographer config: hierarchical solves take capacity fractions from the \
             HierarchySpec's levels; Config::target_fractions must be None"
        );
        assert_eq!(
            PlanError::StateKindMismatch { state: "flat", spec: "hierarchical" }.to_string(),
            "geographer config: flat plan state handed to a hierarchical spec"
        );
        assert_eq!(
            PlanError::StatelessTool { tool: "RCB" }.to_string(),
            "geographer config: tool RCB is stateless and cannot consume a warm plan state"
        );
        assert_eq!(
            PlanError::KHierarchyMismatch { k: 7, total: 8 }.to_string(),
            "geographer config: k = 7 does not match the hierarchy's 8 leaf blocks"
        );
        assert_eq!(
            PlanError::HierarchicalSingleRefine.to_string(),
            "geographer config: hierarchical specs take RefineMode::None or \
             RefineMode::Multilevel (a single flat sweep has no per-level semantics)"
        );
        assert_eq!(
            PlanError::MissingGraph.to_string(),
            "geographer config: refinement requires the mesh graph in the plan spec"
        );
        assert_eq!(
            PlanError::StateSizeMismatch { state_k: 3, k: 4 }.to_string(),
            "geographer config: plan state carries 3 blocks but the spec requests k = 4"
        );
        assert_eq!(
            PlanError::StateArityMismatch { state: vec![2, 2], spec: vec![4, 2] }.to_string(),
            "geographer config: plan state arities [2, 2] do not match the spec's [4, 2]"
        );
        assert_eq!(
            PlanError::HierarchicalTool { tool: "HSFC" }.to_string(),
            "geographer config: hierarchical specs require the Geographer tool (got HSFC)"
        );
        assert_eq!(
            PlanError::MeshLengths { points: 4, weights: 3 }.to_string(),
            "geographer config: mesh view points and weights lengths differ (4 vs 3)"
        );
        assert_eq!(
            PlanError::GraphLength { graph: 5, points: 4 }.to_string(),
            "geographer config: mesh graph has 5 vertices but the view has 4 points"
        );
    }

    /// Same `k` failure, same text, both layers — the unification the
    /// satellite asks for, checked end to end.
    #[test]
    fn k_texts_match_validate_k_panics() {
        for (k, n) in [(0usize, 10u64), (11, 10)] {
            let panic_text = std::panic::catch_unwind(|| geographer::validate_k(k, n))
                .expect_err("validate_k must panic");
            let panic_text = panic_text
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| {
                    panic_text.downcast_ref::<&'static str>().map(|s| (*s).to_owned())
                })
                .expect("panic payload must be a string");
            let typed = if k == 0 {
                PlanError::KZero
            } else {
                PlanError::KExceedsN { k, n }
            };
            assert_eq!(typed.to_string(), panic_text);
        }
    }

    #[test]
    fn illegal_combinations_are_rejected() {
        let (pts, w) = points(64, 3);
        // Flat state → hierarchical spec.
        let spec = PlanSpec::hierarchical(
            view(&pts, &w),
            HierarchySpec::uniform(&[2, 2]),
            Config::default(),
        );
        let state = PlanState::Flat(PreviousPartition {
            centers: vec![pts[0]; 4],
            influence: vec![1.0; 4],
        });
        assert_eq!(
            spec.validate(Some(&state)),
            Err(PlanError::StateKindMismatch { state: "flat", spec: "hierarchical" })
        );
        // Warm state on a stateless tool.
        let spec = PlanSpec::flat(view(&pts, &w), Tool::Rcb, 4, Config::default());
        assert_eq!(
            spec.validate(Some(&state)),
            Err(PlanError::StatelessTool { tool: "RCB" })
        );
        // Hierarchy on a baseline tool.
        let mut spec = PlanSpec::hierarchical(
            view(&pts, &w),
            HierarchySpec::uniform(&[2, 2]),
            Config::default(),
        );
        spec.tool = Tool::Hsfc;
        assert_eq!(
            spec.validate(None),
            Err(PlanError::HierarchicalTool { tool: "HSFC" })
        );
        // k must match the hierarchy.
        let mut spec = PlanSpec::hierarchical(
            view(&pts, &w),
            HierarchySpec::uniform(&[2, 2]),
            Config::default(),
        );
        spec.k = 7;
        assert_eq!(
            spec.validate(None),
            Err(PlanError::KHierarchyMismatch { k: 7, total: 4 })
        );
        // Refinement without a graph.
        let spec = PlanSpec::flat(view(&pts, &w), Tool::Geographer, 4, Config::default())
            .with_refine(RefineMode::Single(RefineConfig::default()));
        assert_eq!(spec.validate(None), Err(PlanError::MissingGraph));
        // k out of range uses the canonical texts.
        let spec = PlanSpec::flat(view(&pts, &w), Tool::Geographer, 65, Config::default());
        assert_eq!(spec.validate(None), Err(PlanError::KExceedsN { k: 65, n: 64 }));
        let spec = PlanSpec::flat(view(&pts, &w), Tool::Geographer, 0, Config::default());
        assert_eq!(spec.validate(None), Err(PlanError::KZero));
    }

    #[test]
    fn mismatched_flat_state_rejected() {
        let (pts, w) = points(32, 4);
        let spec = PlanSpec::flat(view(&pts, &w), Tool::Geographer, 4, Config::default());
        let state = PlanState::Flat(PreviousPartition {
            centers: vec![pts[0]; 3],
            influence: vec![1.0; 3],
        });
        assert_eq!(
            spec.validate(Some(&state)),
            Err(PlanError::StateSizeMismatch { state_k: 3, k: 4 })
        );
    }
}
