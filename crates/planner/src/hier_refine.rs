//! Hierarchy-aware multilevel refinement: the stacked combination the
//! legacy entry points could not express.
//!
//! A hierarchical solve minimizes each level's cut *geometrically*; the
//! multilevel V-cycle of `geographer_refine` minimizes the flat cut
//! *graph-locally* — but running the flat V-cycle on a hierarchical
//! assignment would happily trade an expensive inter-node edge for two
//! cheap intra-node ones and drift blocks across their per-level capacity
//! targets. [`refine_hierarchy_multilevel`] composes the two correctly:
//! it walks the hierarchy **top-down**, and at each level `l` refines the
//! level-`l` *digit* of the flat block id, one parent group at a time, on
//! the subgraph induced by the parent's vertices.
//!
//! Why this is exact and safe (DESIGN.md §8):
//!
//! * **Per-parent induced subgraphs give exact level-`l` gains.** An edge
//!   whose endpoints lie in different level-`(l-1)` groups is cut at level
//!   `l` no matter how the children move, so dropping it changes no gain;
//!   every accepted coarse move is a real reduction of the level-`l` cut.
//! * **Per-level capacities are the solver's own.** Each parent's child
//!   capacities use that level's ε and capacity fractions against the
//!   parent's *actual* weight — the same
//!   `max((1+ε)·target, target + w_max)` floor the hierarchical solver
//!   enforces, so refinement preserves the balance the solve achieved.
//! * **Top-down never un-does finished levels.** Refining digit `l+1`
//!   moves vertices only between siblings below one level-`l` group, so
//!   level-`l` group weights and cuts are final once level `l` is done.
//!   A level-`l` move does carry a vertex's old *lower* digits into its
//!   new group; a deterministic pre-pass at each level re-seats any child
//!   pushed over its capacity before the V-cycle runs.
//! * **Deterministic.** Parents are processed in path-lexicographic
//!   order, vertices in input order, and the V-cycle itself is
//!   deterministic — results are independent of thread count, which is
//!   what lets the planner run refinement redundantly on every rank.

use geographer::HierarchySpec;
use geographer_graph::CsrGraph;
use geographer_refine::{refine_multilevel, MultilevelConfig, RefineReport};

/// Move vertices out of over-capacity children into the least-loaded
/// sibling until every child respects `allowed`. Needed because an
/// upper-level move carries its vertex's stale lower digits into the new
/// group, which can push a child past the floor refinement itself would
/// never cross. Picks, per repair step, the in-order first vertex of the
/// heaviest child whose departure loses the least local cut (ties to the
/// lower vertex id) — deterministic.
fn repair_capacities(
    g: &CsrGraph,
    digits: &mut [u32],
    weights: &[f64],
    allowed: &[f64],
    block_w: &mut [f64],
) {
    loop {
        let Some(over) = (0..allowed.len())
            .filter(|&b| block_w[b] > allowed[b] + 1e-9)
            .max_by(|&a, &b| {
                (block_w[a] - allowed[a]).partial_cmp(&(block_w[b] - allowed[b])).unwrap()
            })
        else {
            return;
        };
        let to = (0..allowed.len())
            .filter(|&b| b != over)
            .min_by(|&a, &b| block_w[a].partial_cmp(&block_w[b]).unwrap())
            .expect("arity >= 2 when a capacity can be exceeded");
        // Cheapest vertex to re-seat: minimal (edges kept in `over`) minus
        // (edges toward `to`).
        let mut best: Option<(i64, usize)> = None;
        for v in 0..g.n() {
            if digits[v] as usize != over {
                continue;
            }
            let mut loss = 0i64;
            for &u in g.neighbors(v as u32) {
                let d = digits[u as usize] as usize;
                if d == over {
                    loss += 1;
                } else if d == to {
                    loss -= 1;
                }
            }
            if best.map(|(bl, _)| loss < bl).unwrap_or(true) {
                best = Some((loss, v));
            }
        }
        let Some((_, v)) = best else { return };
        digits[v] = to as u32;
        block_w[over] -= weights[v];
        block_w[to] += weights[v];
    }
}

/// Upper bound on top-down refinement sweeps. A compound move — a vertex
/// that must change its parent digit *and* its child digit to reach its
/// best block — needs one sweep per digit, so iterating the top-down pass
/// until it stops moving recovers moves a single pass structurally cannot
/// make. Convergence is guaranteed (each level's V-cycle never increases
/// its own level cut and the pass is deterministic); the cap only bounds
/// the tail.
const MAX_SWEEPS: usize = 4;

/// Refine a hierarchical flat-leaf assignment in place with multilevel
/// V-cycles per hierarchy level, top-down, honoring each level's ε and
/// capacity fractions (see the module docs for the contract). The
/// top-down pass is iterated until a full sweep moves nothing (at most
/// [`MAX_SWEEPS`] times): an upper-level move changes which sibling moves
/// are profitable below, and vice versa, so a single pass leaves compound
/// gains on the table. Each sweep is followed by a [`cross_parent_pass`]
/// that takes the leaf moves no per-level digit refinement can express —
/// a vertex whose best block lies under a different parent but whose
/// parent-digit move alone has zero gain. `base` supplies the V-cycle
/// shape and the default ε
/// for levels that don't pin their own; its `refine.target_fractions` must
/// be `None` — per-level capacities come from the spec, exactly as in the
/// hierarchical solver.
///
/// Returns one aggregated [`RefineReport`] per level (cuts in that level's
/// induced-subgraph units: intra-parent edges crossing a level-`l` group
/// boundary — cross-parent edges are excluded because no level-`l` move
/// can uncut them; `cut_before` from the first sweep, `cut_after` from the
/// last, moves and rounds summed over sweeps).
pub fn refine_hierarchy_multilevel(
    g: &CsrGraph,
    assignment: &mut [u32],
    weights: &[f64],
    spec: &HierarchySpec,
    base: &MultilevelConfig,
) -> Vec<RefineReport> {
    assert_eq!(assignment.len(), g.n());
    assert_eq!(weights.len(), g.n());
    assert!(
        base.refine.target_fractions.is_none(),
        "geographer config: hierarchical solves take capacity fractions from the \
         HierarchySpec's levels; Config::target_fractions must be None"
    );
    spec.validate();
    let mut reports =
        vec![RefineReport { cut_before: 0, cut_after: 0, moves: 0, rounds: 0 }; spec.depth()];
    for sweep in 0..MAX_SWEEPS {
        let pass = sweep_top_down(g, assignment, weights, spec, base);
        let swept: usize = pass.iter().map(|r| r.moves).sum();
        for (agg, r) in reports.iter_mut().zip(&pass) {
            if sweep == 0 {
                agg.cut_before = r.cut_before;
            }
            agg.cut_after = r.cut_after;
            agg.moves += r.moves;
            agg.rounds += r.rounds;
        }
        // Cross-parent leaf moves the digit sweeps cannot express; a
        // productive pass re-triggers the sweep so the reported cuts come
        // from a sweep over the final assignment.
        let crossed = cross_parent_pass(g, assignment, weights, spec, base);
        if let Some(leaf) = reports.last_mut() {
            leaf.moves += crossed;
        }
        if swept == 0 && crossed == 0 {
            break;
        }
    }
    reports
}

/// Leaf moves the per-level digit sweeps structurally cannot make: a
/// vertex whose best leaf block lies under a *different* parent, where the
/// upper-level digit move alone has zero gain (so no level's V-cycle takes
/// it) but the combined move lowers the leaf cut. The pass accepts a move
/// `cur → nb` only when it (1) strictly reduces the leaf cut, (2) does not
/// increase any upper level's cut (the vertex must have at least as many
/// neighbors under every ancestor group of `nb` as under the matching
/// ancestor of `cur`), and (3) keeps every affected group at every level —
/// including siblings whose targets shift because their parent's weight
/// changed — within the solver's own `max((1+ε)·target, target + w_max)`
/// floor. Vertices are visited in input order and the best candidate is
/// chosen by leaf gain (ties to the lower block id) — deterministic.
/// Returns the number of moves made.
fn cross_parent_pass(
    g: &CsrGraph,
    assignment: &mut [u32],
    weights: &[f64],
    spec: &HierarchySpec,
    base: &MultilevelConfig,
) -> usize {
    let depth = spec.depth();
    if depth < 2 {
        return 0;
    }
    let n = g.n();
    let k = spec.total_blocks();
    let total: f64 = weights.iter().sum();
    let w_max = weights.iter().copied().fold(0.0, f64::max);

    // Per-level digit stride, ε, and normalized capacity fractions.
    let strides: Vec<usize> =
        (0..depth).map(|l| spec.levels[l + 1..].iter().map(|s| s.arity).product()).collect();
    let eps: Vec<f64> =
        spec.levels.iter().map(|lv| lv.epsilon.unwrap_or(base.refine.epsilon)).collect();
    let fractions: Vec<Vec<f64>> = spec
        .levels
        .iter()
        .map(|lv| match &lv.fractions {
            None => vec![1.0 / lv.arity as f64; lv.arity],
            Some(f) => {
                let sum: f64 = f.iter().sum();
                f.iter().map(|x| x / sum).collect()
            }
        })
        .collect();
    let group_of = |b: usize, l: usize| b / strides[l];

    // Group weights per level, maintained incrementally.
    let mut gw: Vec<Vec<f64>> = (0..depth).map(|l| vec![0.0f64; spec.groups_at(l)]).collect();
    for (&b, &w) in assignment.iter().zip(weights) {
        for l in 0..depth {
            gw[l][group_of(b as usize, l)] += w;
        }
    }
    let allowed = |l: usize, grp: usize, gw: &[Vec<f64>]| -> f64 {
        let arity = spec.levels[l].arity;
        let parent_w = if l == 0 { total } else { gw[l - 1][grp / arity] };
        let target = parent_w * fractions[l][grp % arity];
        ((1.0 + eps[l]) * target).max(target + w_max)
    };

    let mut moves = 0usize;
    let mut cnt = vec![0i64; k];
    const MAX_ROUNDS: usize = 8;
    for _round in 0..MAX_ROUNDS {
        let mut moved_this_round = 0usize;
        for v in 0..n {
            let cur = assignment[v] as usize;
            cnt.iter_mut().for_each(|c| *c = 0);
            let mut touched: Vec<usize> = Vec::new();
            for &u in g.neighbors(v as u32) {
                let b = assignment[u as usize] as usize;
                if cnt[b] == 0 {
                    touched.push(b);
                }
                cnt[b] += 1;
            }
            touched.sort_unstable();
            let mut best: Option<(i64, usize)> = None;
            for &nb in &touched {
                if nb == cur || group_of(nb, depth - 2) == group_of(cur, depth - 2) {
                    continue; // same parent: the digit sweeps own these
                }
                let leaf_gain = cnt[nb] - cnt[cur];
                if leaf_gain <= 0 {
                    continue;
                }
                // Upper levels must not get worse: the move needs at
                // least as many neighbors under every ancestor of `nb` as
                // under the matching ancestor of `cur`.
                let upper_ok = (0..depth - 1).all(|l| {
                    let (gc, gn) = (group_of(cur, l), group_of(nb, l));
                    gc == gn || {
                        let in_group = |gx: usize| -> i64 {
                            (0..k).filter(|&b| group_of(b, l) == gx).map(|b| cnt[b]).sum()
                        };
                        in_group(gn) >= in_group(gc)
                    }
                });
                if !upper_ok || best.map(|(bg, _)| leaf_gain <= bg).unwrap_or(false) {
                    continue;
                }
                // Capacity at every level, with post-move weights and
                // post-move (parent-dependent) floors.
                let w = weights[v];
                for l in 0..depth {
                    gw[l][group_of(cur, l)] -= w;
                    gw[l][group_of(nb, l)] += w;
                }
                let fits = (0..depth).all(|l| {
                    let arity = spec.levels[l].arity;
                    let mut check: Vec<usize> = if l == 0 {
                        vec![group_of(cur, 0), group_of(nb, 0)]
                    } else {
                        // All children of both changed parents: their
                        // targets moved with the parent weights.
                        let (pc, pn) = (group_of(cur, l - 1), group_of(nb, l - 1));
                        (pc * arity..(pc + 1) * arity)
                            .chain(pn * arity..(pn + 1) * arity)
                            .collect()
                    };
                    check.dedup();
                    check.into_iter().all(|grp| gw[l][grp] <= allowed(l, grp, &gw) + 1e-9)
                });
                for l in 0..depth {
                    gw[l][group_of(cur, l)] += w;
                    gw[l][group_of(nb, l)] -= w;
                }
                if fits {
                    best = Some((leaf_gain, nb));
                }
            }
            if let Some((_, nb)) = best {
                let w = weights[v];
                for l in 0..depth {
                    gw[l][group_of(cur, l)] -= w;
                    gw[l][group_of(nb, l)] += w;
                }
                assignment[v] = nb as u32;
                moved_this_round += 1;
            }
        }
        moves += moved_this_round;
        if moved_this_round == 0 {
            break;
        }
    }
    moves
}

/// One top-down pass over all levels (see [`refine_hierarchy_multilevel`]).
fn sweep_top_down(
    g: &CsrGraph,
    assignment: &mut [u32],
    weights: &[f64],
    spec: &HierarchySpec,
    base: &MultilevelConfig,
) -> Vec<RefineReport> {
    let n = g.n();
    let mut reports = Vec::with_capacity(spec.depth());

    for l in 0..spec.depth() {
        let lv = &spec.levels[l];
        let arity = lv.arity;
        // Flat-id stride of one level-l digit, and of one parent group.
        let stride: usize = spec.levels[l + 1..].iter().map(|s| s.arity).product();
        let parent_div = arity * stride;
        let parents = if l == 0 { 1 } else { spec.groups_at(l - 1) };
        let epsilon = lv.epsilon.unwrap_or(base.refine.epsilon);

        if arity == 1 {
            reports.push(RefineReport { cut_before: 0, cut_after: 0, moves: 0, rounds: 0 });
            continue;
        }

        // Bucket vertices by parent group (input order within each bucket)
        // and assign local ids.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); parents];
        let mut local_of = vec![0u32; n];
        for v in 0..n {
            let p = assignment[v] as usize / parent_div;
            local_of[v] = members[p].len() as u32;
            members[p].push(v as u32);
        }
        // One pass over the edges, routed to the owning parent (edges that
        // cross parents are cut at this level regardless — dropped).
        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); parents];
        for v in 0..n as u32 {
            let pv = assignment[v as usize] as usize / parent_div;
            for &u in g.neighbors(v) {
                if v < u && assignment[u as usize] as usize / parent_div == pv {
                    edges[pv].push((local_of[v as usize], local_of[u as usize]));
                }
            }
        }

        let mut level = RefineReport { cut_before: 0, cut_after: 0, moves: 0, rounds: 0 };
        for p in 0..parents {
            let idx = &members[p];
            if idx.is_empty() {
                continue;
            }
            let sub_g = CsrGraph::from_edges(idx.len(), &edges[p]);
            let sub_w: Vec<f64> = idx.iter().map(|&v| weights[v as usize]).collect();
            let mut digits: Vec<u32> = idx
                .iter()
                .map(|&v| (assignment[v as usize] as usize / stride % arity) as u32)
                .collect();

            // Re-seat any child an upper-level move pushed over its floor.
            let total: f64 = sub_w.iter().sum();
            let w_max = sub_w.iter().copied().fold(0.0, f64::max);
            let fractions: Vec<f64> = match &lv.fractions {
                None => vec![1.0 / arity as f64; arity],
                Some(f) => {
                    let sum: f64 = f.iter().sum();
                    f.iter().map(|x| x / sum).collect()
                }
            };
            let allowed: Vec<f64> = fractions
                .iter()
                .map(|frac| {
                    let target = total * frac;
                    ((1.0 + epsilon) * target).max(target + w_max)
                })
                .collect();
            let mut block_w = vec![0.0f64; arity];
            for (&d, &w) in digits.iter().zip(&sub_w) {
                block_w[d as usize] += w;
            }
            repair_capacities(&sub_g, &mut digits, &sub_w, &allowed, &mut block_w);

            let mcfg = MultilevelConfig {
                refine: geographer_refine::RefineConfig {
                    epsilon,
                    target_fractions: lv.fractions.clone(),
                    ..base.refine.clone()
                },
                ..base.clone()
            };
            let r = refine_multilevel(&sub_g, &mut digits, &sub_w, arity, &mcfg);
            level.cut_before += r.cut_before;
            level.cut_after += r.cut_after;
            level.moves += r.moves;
            level.rounds += r.levels.iter().map(|lr| lr.rounds).sum::<usize>();

            // Write the refined digit back into the flat ids.
            for (&v, &d) in idx.iter().zip(&digits) {
                let old = assignment[v as usize] as usize;
                let below = old % stride;
                assignment[v as usize] = (p * parent_div + d as usize * stride + below) as u32;
            }
        }
        reports.push(level);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use geographer::{partition_hierarchical, Config, LevelSpec};
    use geographer_geometry::WeightedPoints;
    use geographer_graph::evaluate_levels;
    use geographer_mesh::families::bubbles_like;

    fn hier_balanced(asg: &[u32], weights: &[f64], spec: &HierarchySpec, eps: f64) {
        let groups = spec.level_groups();
        let w_max = weights.iter().copied().fold(0.0, f64::max);
        let mut parent_w = vec![weights.iter().sum::<f64>()];
        for (l, map) in groups.iter().enumerate() {
            let gcount = spec.groups_at(l);
            let mut gw = vec![0.0f64; gcount];
            for (&b, &w) in asg.iter().zip(weights) {
                gw[map[b as usize] as usize] += w;
            }
            let arity = spec.levels[l].arity;
            let e = spec.levels[l].epsilon.unwrap_or(eps);
            let fractions: Vec<f64> = match &spec.levels[l].fractions {
                None => vec![1.0 / arity as f64; arity],
                Some(f) => {
                    let sum: f64 = f.iter().sum();
                    f.iter().map(|x| x / sum).collect()
                }
            };
            for (gi, &w) in gw.iter().enumerate() {
                let target = parent_w[gi / arity] * fractions[gi % arity];
                let allowed = ((1.0 + e) * target).max(target + w_max);
                assert!(w <= allowed + 1e-9, "level {l} group {gi}: {w} > {allowed}");
            }
            parent_w = gw;
        }
    }

    #[test]
    fn lowers_leaf_cut_without_raising_inter_node_cut_or_breaking_balance() {
        let mesh = bubbles_like(6_000, 41);
        let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
        let spec = HierarchySpec::uniform(&[4, 2]);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let solved = partition_hierarchical(&wp, &spec, &cfg);
        let mut asg = solved.assignment.clone();

        let before = evaluate_levels(&mesh.graph, &asg, &spec.level_groups());
        let reports = refine_hierarchy_multilevel(
            &mesh.graph,
            &mut asg,
            &mesh.weights,
            &spec,
            &MultilevelConfig::default(),
        );
        let after = evaluate_levels(&mesh.graph, &asg, &spec.level_groups());

        assert_eq!(reports.len(), 2);
        // Every level's own cut must not increase, and something must move.
        for l in 0..2 {
            assert!(
                after[l].edge_cut <= before[l].edge_cut,
                "level {l}: {} -> {}",
                before[l].edge_cut,
                after[l].edge_cut
            );
        }
        assert!(
            after[1].edge_cut < before[1].edge_cut,
            "leaf cut must actually improve: {} -> {}",
            before[1].edge_cut,
            after[1].edge_cut
        );
        assert!(reports.iter().any(|r| r.moves > 0));
        hier_balanced(&asg, &mesh.weights, &spec, cfg.epsilon);
        // Block ids stay in range.
        assert!(asg.iter().all(|&b| b < 8));
    }

    #[test]
    fn is_deterministic() {
        let mesh = bubbles_like(2_500, 42);
        let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
        let spec = HierarchySpec::uniform(&[2, 2]);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let solved = partition_hierarchical(&wp, &spec, &cfg);
        let mut a = solved.assignment.clone();
        let mut b = solved.assignment.clone();
        let ra = refine_hierarchy_multilevel(
            &mesh.graph,
            &mut a,
            &mesh.weights,
            &spec,
            &MultilevelConfig::default(),
        );
        let rb = refine_hierarchy_multilevel(
            &mesh.graph,
            &mut b,
            &mesh.weights,
            &spec,
            &MultilevelConfig::default(),
        );
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn honors_per_level_fractions() {
        let mesh = bubbles_like(4_000, 43);
        let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
        let spec = HierarchySpec {
            levels: vec![
                LevelSpec { arity: 2, epsilon: Some(0.02), fractions: Some(vec![3.0, 1.0]) },
                LevelSpec::uniform(2),
            ],
        };
        let cfg = Config { sampling_init: false, max_iterations: 200, ..Config::default() };
        let solved = partition_hierarchical(&wp, &spec, &cfg);
        let mut asg = solved.assignment.clone();
        refine_hierarchy_multilevel(
            &mesh.graph,
            &mut asg,
            &mesh.weights,
            &spec,
            &MultilevelConfig::default(),
        );
        hier_balanced(&asg, &mesh.weights, &spec, cfg.epsilon);
        // The deliberate 3:1 skew survives refinement.
        let groups = spec.level_groups();
        let mut gw = [0.0f64; 2];
        for (&b, &w) in asg.iter().zip(&mesh.weights) {
            gw[groups[0][b as usize] as usize] += w;
        }
        assert!(gw[0] > 2.5 * gw[1], "3:1 skew erased: {gw:?}");
    }

    #[test]
    fn cross_parent_pass_takes_zero_upper_gain_compound_moves() {
        // Hierarchy [2, 2], blocks {0,1} under parent 0 and {2,3} under
        // parent 1, a clique per block. Vertex 9 sits in block 1 with two
        // neighbors in each of blocks 0 and 1 (four under parent 0) and
        // four in block 2 (four under parent 1): the parent-digit move has
        // zero level-0 gain and the sibling move has zero level-1 gain, so
        // no per-level V-cycle touches it — but moving it to block 2 drops
        // the leaf cut from 6 to 4 at unchanged inter-parent cut.
        let mut edges = vec![];
        for (lo, hi) in [(0u32, 5u32), (5, 9), (10, 15), (15, 20)] {
            for a in lo..hi {
                for b in a + 1..hi {
                    edges.push((a, b));
                }
            }
        }
        edges.extend([(9, 0), (9, 1), (9, 5), (9, 6), (9, 10), (9, 11), (9, 12), (9, 13)]);
        let g = CsrGraph::from_edges(20, &edges);
        let mut asg: Vec<u32> =
            (0..20).map(|v| if v < 5 { 0 } else if v < 10 { 1 } else if v < 15 { 2 } else { 3 }).collect();
        let spec = HierarchySpec::uniform(&[2, 2]);
        let weights = [1.0; 20];

        let before = evaluate_levels(&g, &asg, &spec.level_groups());
        let reports = refine_hierarchy_multilevel(
            &g,
            &mut asg,
            &weights,
            &spec,
            &MultilevelConfig::default(),
        );
        let after = evaluate_levels(&g, &asg, &spec.level_groups());

        assert_eq!(asg[9], 2, "vertex 9 must cross to block 2 under the other parent");
        assert_eq!(before[1].edge_cut, 6);
        assert_eq!(after[1].edge_cut, 4, "leaf cut must drop via the compound move");
        assert_eq!(after[0].edge_cut, before[0].edge_cut, "inter-parent cut unchanged");
        assert!(reports[1].moves >= 1);
        hier_balanced(&asg, &weights, &spec, Config::default().epsilon);
    }

    #[test]
    fn noop_on_an_already_optimal_split() {
        // Two 4-cliques joined by one edge, hierarchy [2]: the clique split
        // is optimal; nothing may move.
        let mut edges = vec![];
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((3, 4));
        let g = CsrGraph::from_edges(8, &edges);
        let mut asg = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let before = asg.clone();
        let spec = HierarchySpec::uniform(&[2]);
        let reports = refine_hierarchy_multilevel(
            &g,
            &mut asg,
            &[1.0; 8],
            &spec,
            &MultilevelConfig::default(),
        );
        assert_eq!(asg, before);
        assert_eq!(reports[0].moves, 0);
        assert_eq!(reports[0].cut_before, 1);
        assert_eq!(reports[0].cut_after, 1);
    }
}
