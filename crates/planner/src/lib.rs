//! # Geographer planner: one API over the paper's four pillars
//!
//! The reproduction grew the paper's algorithmic pillars as separate entry
//! points — the cold pipeline (`geographer::partition_spmd`), warm-start
//! repartitioning (`geographer::repartition_spmd`), hierarchical
//! processor-aware solves (`geographer::partition_hierarchical_spmd`),
//! and multilevel refinement (`geographer_refine::refine_multilevel`) —
//! which composed only pairwise through hand-written glue. This crate
//! collapses them behind a single surface (DESIGN.md §8):
//!
//! * [`PlanSpec`] — *what* to solve: a [`MeshView`], a [`Tool`], the block
//!   count, an optional `HierarchySpec`, a [`RefineMode`], and the solver
//!   `Config`;
//! * [`PlanState`] — *what the last plan learned*: the unified warm-start
//!   enum over `PreviousPartition` (flat) and `PreviousHierarchy`
//!   (hierarchical);
//! * [`Planner::solve`]`(spec, state, comm)` → [`Plan`] — the assignment,
//!   the refreshed state for the next time step, and per-phase
//!   counters/metrics.
//!
//! Combinations that used to require new driver code are now configuration:
//! a warm **hierarchical** solve with a **multilevel V-cycle at every
//! hierarchy level** under the hierarchy's own per-level targets is one
//! `PlanSpec` ([`refine_hierarchy_multilevel`] is the new stacked kernel).
//! Illegal combinations are rejected with a typed [`PlanError`] whose
//! `Display` texts follow the workspace's `geographer config:` convention.
//!
//! ```
//! use geographer::Config;
//! use geographer_mesh::delaunay_unit_square;
//! use geographer_parcomm::SelfComm;
//! use geographer_planner::{MeshView, PlanSpec, Planner, Tool};
//!
//! let mesh = delaunay_unit_square(600, 9);
//! let cfg = Config { sampling_init: false, ..Config::default() };
//! let spec = PlanSpec::flat(MeshView::from(&mesh), Tool::Geographer, 4, cfg);
//! let plan = Planner::solve(&spec, None, &SelfComm);
//! assert_eq!(plan.assignment.len(), 600);
//! // Feed `plan.state` into the next step's solve to warm-start it.
//! assert!(plan.state.is_some());
//! ```

pub mod hier_refine;
pub mod solve;
pub mod spec;
pub mod tool;

pub use hier_refine::refine_hierarchy_multilevel;
pub use solve::{Plan, Planner};
pub use spec::{MeshView, PlanError, PlanSpec, PlanState, RefineMode};
pub use tool::Tool;
