//! [`Planner`]: the single entry point over the cold pipeline, warm-start
//! repartitioning, hierarchical solves, and (hierarchy-aware) multilevel
//! refinement.
//!
//! `Planner::solve` is an SPMD collective call: every rank passes the same
//! [`PlanSpec`] (the mesh view is the full replicated point set — the
//! planner shards it internally into the same contiguous `[r·n/p, (r+1)·n/p)`
//! chunks the bench driver always used) and receives a [`Plan`] carrying
//! the *global* assignment, the refreshed warm state for the next step,
//! and per-phase counters. Refinement runs redundantly on every rank —
//! it is deterministic, so all ranks hold the same plan without extra
//! communication rounds being charged to the solver.
//!
//! `Plan::comm` counts the solver's collectives only (snapshot-diffed
//! around the solve, before the assembly allgather), so the counters are
//! directly comparable with the paper's communication model and with the
//! pre-planner committed benchmark numbers.

use std::time::Instant;

use geographer::{KMeansStats, PipelineTimings};
use geographer_graph::{imbalance_with_targets, LevelMetrics};
use geographer_parcomm::{Comm, CommStats};
use geographer_refine::{
    refine_multilevel, refine_partition, MultilevelReport, RefineReport,
};

use crate::hier_refine::refine_hierarchy_multilevel;
use crate::spec::{PlanError, PlanSpec, PlanState, RefineMode};

/// A finished plan: the assignment plus everything the next step and the
/// evaluation harness need.
#[derive(Debug, Clone)]
pub struct Plan<const D: usize> {
    /// Number of leaf blocks.
    pub k: usize,
    /// Block id of every mesh vertex, in input order — **global** on every
    /// rank (post-refinement when the spec asked for it).
    pub assignment: Vec<u32>,
    /// Refreshed warm state in the variant matching the spec: feed it back
    /// into the next solve on the drifted point set. `None` for the
    /// stateless baseline tools.
    pub state: Option<PlanState<D>>,
    /// Solver work counters (`None` for the baseline tools; the
    /// hierarchical aggregate for hierarchical specs).
    pub stats: Option<KMeansStats>,
    /// This rank's communication counters of the solve phase only (the
    /// assembly allgather and the rank-redundant refinement are excluded;
    /// see the module docs).
    pub comm: CommStats,
    /// Ranks that solved the plan.
    pub ranks: usize,
    /// Paper-comparable pipeline seconds of the solve (per-node sum for
    /// hierarchical specs; wall time for the baselines).
    pub solve_seconds: f64,
    /// Per-phase pipeline timings (Hilbert index, redistribution, k-means,
    /// write-back) of the solve. `Some` for flat stateful plans — the
    /// scaling benchmark reads its per-phase ns/point from here — `None`
    /// for hierarchical and baseline plans, whose phases are not
    /// individually metered.
    pub phase_timings: Option<PipelineTimings>,
    /// Wall seconds of the refinement post-pass (0 when none ran).
    pub refine_seconds: f64,
    /// Flat refinement summary, when refinement ran (the per-level sum for
    /// hierarchical multilevel refinement).
    pub refine: Option<RefineReport>,
    /// Full V-cycle report, when flat multilevel refinement ran.
    pub multilevel: Option<MultilevelReport>,
    /// Per-hierarchy-level refinement reports, when the stacked
    /// hierarchical multilevel mode ran (outermost level first).
    pub level_refine: Option<Vec<RefineReport>>,
    /// Worst node-local solver imbalance per hierarchy level (from the
    /// hierarchical solver; `None` for flat specs).
    pub level_imbalance: Option<Vec<f64>>,
    /// Per-level cut/volume metrics of the finished assignment (hierarchy
    /// specs with a graph only; `levels[0]` is the inter-node tier).
    pub levels: Option<Vec<LevelMetrics>>,
    /// Target-aware weighted imbalance of the finished assignment, against
    /// the spec's leaf fractions.
    pub imbalance: f64,
}

/// The unified solver front-end. Stateless — all inputs travel in the
/// [`PlanSpec`]/[`PlanState`] pair, all outputs in the [`Plan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Solve a plan (SPMD collective call), or report why the
    /// spec/state combination is illegal. Parameter-range errors inside
    /// `spec.config` / `spec.hierarchy` keep their canonical
    /// `geographer config:` panics from the layers below.
    pub fn try_solve<const D: usize, C: Comm>(
        spec: &PlanSpec<'_, D>,
        state: Option<&PlanState<D>>,
        comm: &C,
    ) -> Result<Plan<D>, PlanError> {
        spec.validate(state)?;
        let n = spec.mesh.points.len();
        let (p, r) = (comm.size(), comm.rank());
        let (lo, hi) = (r * n / p, (r + 1) * n / p);
        let (points, weights) = (&spec.mesh.points[lo..hi], &spec.mesh.weights[lo..hi]);
        let cfg = &spec.config;

        // --- Solve phase (the only phase charged to Plan::comm).
        let before = comm.stats();
        // geo-analyze: allow(kernel-entropy): solve-phase timer — reported in Plan, never an input to the computation.
        let t = Instant::now();
        let mut solve_seconds;
        let mut phase_timings = None;
        let (local, state_out, stats, level_imbalance) = match &spec.hierarchy {
            Some(h) => {
                let res = match state {
                    Some(PlanState::Hierarchical(prev)) => {
                        geographer::repartition_hierarchical_spmd(
                            comm, points, weights, prev, h, cfg,
                        )
                    }
                    _ => geographer::partition_hierarchical_spmd(comm, points, weights, h, cfg),
                };
                solve_seconds = res.seconds;
                (
                    res.assignment,
                    Some(PlanState::Hierarchical(res.previous)),
                    Some(res.stats),
                    Some(res.level_imbalance),
                )
            }
            None if spec.tool.is_stateful() => {
                let res = match state {
                    Some(PlanState::Flat(prev)) => {
                        geographer::repartition_spmd(comm, points, weights, prev, spec.k, cfg)
                    }
                    _ => geographer::partition_spmd(comm, points, weights, spec.k, cfg),
                };
                solve_seconds = res.timings.total();
                phase_timings = Some(res.timings);
                (
                    res.assignment.clone(),
                    Some(PlanState::Flat(res.previous())),
                    Some(res.stats),
                    None,
                )
            }
            None => {
                let asg = spec.tool.partition_spmd(comm, points, weights, spec.k, cfg);
                solve_seconds = 0.0; // set from wall time below
                (asg, None, None, None)
            }
        };
        if state_out.is_none() {
            solve_seconds = t.elapsed().as_secs_f64();
        }
        let comm_used = comm.stats().since(&before);

        // --- Assembly: uncounted, so Plan::comm matches the legacy
        // driver's solver-only counters.
        let mut assignment: Vec<u32> = if p == 1 {
            local
        } else {
            comm.allgather(local).into_iter().flatten().collect()
        };
        debug_assert_eq!(assignment.len(), n);

        // --- Refinement phase: deterministic, rank-redundant.
        // geo-analyze: allow(kernel-entropy): refine-phase timer — reported in Plan, never an input to the computation.
        let rt = Instant::now();
        let mut refine = None;
        let mut multilevel = None;
        let mut level_refine = None;
        match &spec.refine {
            RefineMode::None => {}
            RefineMode::Single(rcfg) => {
                let g = spec.mesh.graph.expect("validated: refinement has a graph");
                let mut rcfg = rcfg.clone();
                if rcfg.target_fractions.is_none() {
                    rcfg.target_fractions = cfg.target_fractions.clone();
                }
                refine = Some(refine_partition(
                    g,
                    &mut assignment,
                    spec.mesh.weights,
                    spec.k,
                    &rcfg,
                ));
            }
            RefineMode::Multilevel(mcfg) => {
                let g = spec.mesh.graph.expect("validated: refinement has a graph");
                match &spec.hierarchy {
                    Some(h) => {
                        let reports = refine_hierarchy_multilevel(
                            g,
                            &mut assignment,
                            spec.mesh.weights,
                            h,
                            mcfg,
                        );
                        refine = Some(RefineReport {
                            cut_before: reports.iter().map(|r| r.cut_before).sum(),
                            cut_after: reports.iter().map(|r| r.cut_after).sum(),
                            moves: reports.iter().map(|r| r.moves).sum(),
                            rounds: reports.iter().map(|r| r.rounds).sum(),
                        });
                        level_refine = Some(reports);
                    }
                    None => {
                        let mut mcfg = mcfg.clone();
                        if mcfg.refine.target_fractions.is_none() {
                            mcfg.refine.target_fractions = cfg.target_fractions.clone();
                        }
                        let report = refine_multilevel(
                            g,
                            &mut assignment,
                            spec.mesh.weights,
                            spec.k,
                            &mcfg,
                        );
                        refine = Some(report.summary());
                        multilevel = Some(report);
                    }
                }
            }
        }
        let refine_seconds =
            if matches!(spec.refine, RefineMode::None) { 0.0 } else { rt.elapsed().as_secs_f64() };

        // --- Metrics of the finished assignment.
        let leaf_fractions = spec.leaf_fractions();
        let imbalance = imbalance_with_targets(
            &assignment,
            spec.mesh.weights,
            spec.k,
            leaf_fractions.as_deref(),
        );
        let levels = match (&spec.hierarchy, spec.mesh.graph) {
            (Some(h), Some(g)) => {
                Some(geographer_graph::evaluate_levels(g, &assignment, &h.level_groups()))
            }
            _ => None,
        };

        Ok(Plan {
            k: spec.k,
            assignment,
            state: state_out,
            stats,
            comm: comm_used,
            ranks: p,
            solve_seconds,
            phase_timings,
            refine_seconds,
            refine,
            multilevel,
            level_refine,
            level_imbalance,
            levels,
            imbalance,
        })
    }

    /// [`Planner::try_solve`], panicking on an illegal spec with the
    /// error's canonical `geographer config:` text — for callers that
    /// treat a bad spec as a programming error, matching the legacy entry
    /// points' panic convention.
    pub fn solve<const D: usize, C: Comm>(
        spec: &PlanSpec<'_, D>,
        state: Option<&PlanState<D>>,
        comm: &C,
    ) -> Plan<D> {
        match Self::try_solve(spec, state, comm) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MeshView;
    use crate::tool::Tool;
    use geographer::{Config, HierarchySpec};
    use geographer_geometry::WeightedPoints;
    use geographer_mesh::{delaunay_unit_square, families::bubbles_like};
    use geographer_parcomm::SelfComm;
    use geographer_refine::MultilevelConfig;

    #[test]
    fn flat_plan_matches_the_legacy_pipeline() {
        let mesh = delaunay_unit_square(1_200, 61);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let spec = PlanSpec::flat(MeshView::from(&mesh), Tool::Geographer, 5, cfg.clone());
        let plan = Planner::solve(&spec, None, &SelfComm);
        let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
        let legacy = geographer::partition(&wp, 5, &cfg);
        assert_eq!(plan.assignment, legacy.assignment);
        assert_eq!(plan.k, 5);
        assert!(plan.stats.is_some());
        assert!(matches!(plan.state, Some(PlanState::Flat(_))));
        assert!(plan.levels.is_none() && plan.level_imbalance.is_none());
        assert!(plan.imbalance <= cfg.epsilon + 1e-9);
    }

    #[test]
    fn baseline_plan_matches_the_tool_and_has_no_state() {
        let mesh = delaunay_unit_square(900, 62);
        let cfg = Config::default();
        let spec = PlanSpec::flat(MeshView::from(&mesh), Tool::Rcb, 4, cfg.clone());
        let plan = Planner::solve(&spec, None, &SelfComm);
        let legacy =
            Tool::Rcb.partition_spmd(&SelfComm, &mesh.points, &mesh.weights, 4, &cfg);
        assert_eq!(plan.assignment, legacy);
        assert!(plan.state.is_none());
        assert!(plan.stats.is_none());
    }

    #[test]
    fn hierarchical_plan_matches_the_legacy_solver_and_reports_levels() {
        let mesh = bubbles_like(2_000, 63);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let h = HierarchySpec::uniform(&[2, 2]);
        let spec = PlanSpec::hierarchical(MeshView::from(&mesh), h.clone(), cfg.clone());
        let plan = Planner::solve(&spec, None, &SelfComm);
        let wp = WeightedPoints::new(mesh.points.clone(), mesh.weights.clone());
        let legacy = geographer::partition_hierarchical(&wp, &h, &cfg);
        assert_eq!(plan.assignment, legacy.assignment);
        assert!(matches!(plan.state, Some(PlanState::Hierarchical(_))));
        let levels = plan.levels.expect("hierarchy + graph must report levels");
        assert_eq!(levels.len(), 2);
        assert!(levels[0].edge_cut <= levels[1].edge_cut);
        assert_eq!(plan.level_imbalance.unwrap().len(), 2);
    }

    #[test]
    fn stacked_spec_runs_and_improves_the_leaf_cut() {
        let mesh = bubbles_like(4_000, 64);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let h = HierarchySpec::uniform(&[2, 2]);
        let plain = Planner::solve(
            &PlanSpec::hierarchical(MeshView::from(&mesh), h.clone(), cfg.clone()),
            None,
            &SelfComm,
        );
        let stacked = Planner::solve(
            &PlanSpec::hierarchical(MeshView::from(&mesh), h, cfg)
                .with_refine(RefineMode::Multilevel(MultilevelConfig::default())),
            None,
            &SelfComm,
        );
        let pl = plain.levels.unwrap();
        let sl = stacked.levels.unwrap();
        assert!(sl[1].edge_cut < pl[1].edge_cut, "{} -> {}", pl[1].edge_cut, sl[1].edge_cut);
        assert!(sl[0].edge_cut <= pl[0].edge_cut);
        assert!(stacked.level_refine.unwrap().len() == 2);
        assert!(stacked.refine.unwrap().moves > 0);
        assert!(stacked.refine_seconds >= 0.0);
    }

    #[test]
    fn warm_fixed_point_holds_with_either_assignment_kernel() {
        // The warm-restart bitwise fixed point (DESIGN.md §8) must be
        // indifferent to the assignment kernel choice: re-solving an
        // unchanged mesh from a plan's refreshed state reproduces the
        // assignment exactly with the SoA kernel on and off, on both
        // test mesh families.
        for soa in [true, false] {
            for family in [0, 1] {
                let mesh = if family == 0 {
                    delaunay_unit_square(1_100, 66)
                } else {
                    bubbles_like(1_100, 66)
                };
                let cfg = Config { soa_kernel: soa, ..Config::default() };
                let spec =
                    PlanSpec::flat(MeshView::from(&mesh), Tool::Geographer, 5, cfg);
                let cold = Planner::solve(&spec, None, &SelfComm);
                let warm = Planner::solve(&spec, cold.state.as_ref(), &SelfComm);
                assert_eq!(
                    warm.assignment, cold.assignment,
                    "soa={soa} family={family}"
                );
                assert!(matches!(warm.state, Some(PlanState::Flat(_))));
            }
        }
    }

    #[test]
    #[should_panic(expected = "geographer config: flat plan state handed to a hierarchical spec")]
    fn solve_panics_with_the_pinned_text() {
        let mesh = delaunay_unit_square(400, 65);
        let cfg = Config { sampling_init: false, ..Config::default() };
        let flat = Planner::solve(
            &PlanSpec::flat(MeshView::from(&mesh), Tool::Geographer, 4, cfg.clone()),
            None,
            &SelfComm,
        );
        let spec =
            PlanSpec::hierarchical(MeshView::from(&mesh), HierarchySpec::uniform(&[2, 2]), cfg);
        let _ = Planner::solve(&spec, flat.state.as_ref(), &SelfComm);
    }
}
