//! The five evaluated partitioning tools behind one dispatch enum.
//!
//! This used to live in `geographer_bench::driver`; it moved here so the
//! [`crate::Planner`] — the single entry point every bench binary and the
//! future service daemon route through — can name a tool in a
//! [`crate::PlanSpec`] without depending on the experiment harness.
//! `geographer_bench` re-exports it, so harness callers are unaffected.

use geographer::Config;
use geographer_baselines::Baseline;
use geographer_geometry::Point;
use geographer_parcomm::Comm;

/// The five evaluated tools, in the paper's presentation order
/// (Geographer first, then the Zoltan geometric partitioners).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// Balanced k-means with SFC bootstrap (the paper's contribution).
    Geographer,
    /// Hilbert space-filling-curve cuts (zoltanSFC).
    Hsfc,
    /// MultiJagged multisection.
    MultiJagged,
    /// Recursive coordinate bisection.
    Rcb,
    /// Recursive inertial bisection.
    Rib,
}

impl Tool {
    /// All five tools.
    pub const ALL: [Tool; 5] =
        [Tool::Geographer, Tool::Hsfc, Tool::MultiJagged, Tool::Rcb, Tool::Rib];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::Geographer => "Geographer",
            Tool::Hsfc => "HSFC",
            Tool::MultiJagged => "MultiJagged",
            Tool::Rcb => "RCB",
            Tool::Rib => "RIB",
        }
    }

    /// Whether this tool produces reusable warm-start state (centers +
    /// influences). The four baselines are one-shot: handing them a
    /// previous plan state is a configuration error the planner rejects
    /// with [`crate::PlanError::StatelessTool`].
    pub fn is_stateful(&self) -> bool {
        matches!(self, Tool::Geographer)
    }

    /// Run this tool on the rank-local shard (SPMD collective call).
    pub fn partition_spmd<const D: usize, C: Comm>(
        &self,
        comm: &C,
        points: &[Point<D>],
        weights: &[f64],
        k: usize,
        cfg: &Config,
    ) -> Vec<u32> {
        match self {
            Tool::Geographer => {
                geographer::partition_spmd(comm, points, weights, k, cfg).assignment
            }
            Tool::Hsfc => Baseline::Hsfc.partition_spmd(comm, points, weights, k),
            Tool::MultiJagged => {
                Baseline::MultiJagged.partition_spmd(comm, points, weights, k)
            }
            Tool::Rcb => Baseline::Rcb.partition_spmd(comm, points, weights, k),
            Tool::Rib => Baseline::Rib.partition_spmd(comm, points, weights, k),
        }
    }
}
