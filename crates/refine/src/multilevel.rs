//! Multilevel refinement V-cycle: coarsen → refine → project → re-refine.
//!
//! The flat pass of [`crate::refine_partition`] only reaches minima that
//! single-vertex moves can reach: on a large mesh one boundary sweep
//! recovers a sliver of the recoverable cut. The standard fix (Hendrickson
//! & Leland; Walshaw's multilevel refinement) is to coarsen the graph by
//! heavy-edge matching, refine where the graph is small — one coarse move
//! relocates a whole cluster of fine vertices — and project the improved
//! assignment back down, re-refining at every level.
//!
//! Contract (DESIGN.md §7):
//!
//! * **Matching is block-respecting.** Each level's matching only pairs
//!   vertices of the same (current) block, so the fine assignment projects
//!   onto every coarse level without information loss and the coarse
//!   weighted cut *equals* the fine cut — every coarse gain is a real fine
//!   gain, no approximation.
//! * **Balance floor is the fine level's.** Every level enforces
//!   `max((1+ε)·target, target + w_max)` with the **fine** graph's `w_max`
//!   and the caller's `target_fractions`. Coarse vertex weights are
//!   accumulated fine weights, and projection preserves per-block weights
//!   exactly, so an input satisfying the floor stays within it at every
//!   level of the cycle — using each level's own (larger) `w_max` would
//!   let a coarse move legally overshoot the bound the caller asked for.
//! * **Deterministic.** Matching and sweeps are pure functions of the
//!   input in fixed vertex order; the parallel contraction is
//!   order-preserving. Results are independent of thread count.

use geographer_graph::coarsen::{contract, heavy_edge_matching, WeightedCsrGraph};
use geographer_graph::CsrGraph;

use crate::{block_capacities, refine_sweeps, RefineConfig, RefineReport, SweepGraph};

/// Parameters of the multilevel V-cycle.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Stop coarsening when a level has at most this many vertices (the
    /// coarsest graph is refined first).
    pub coarsest_vertices: usize,
    /// Hard cap on the number of hierarchy levels (safety bound; the
    /// shrink-factor guard normally stops far earlier).
    pub max_levels: usize,
    /// The per-level sweep parameters: ε, sweep budget, and per-block
    /// `target_fractions` — the same knobs as the flat pass, applied at
    /// every level against the fine-level floor.
    pub refine: RefineConfig,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsest_vertices: 2_000,
            max_levels: 32,
            refine: RefineConfig::default(),
        }
    }
}

/// What happened at one level of the V-cycle, in refinement order
/// (coarsest first, finest last). Cuts are weighted cuts of that level's
/// graph — by the projection invariant these are exact fine-graph cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelReport {
    /// Vertices of this level's graph.
    pub vertices: usize,
    /// Undirected edges of this level's graph.
    pub edges: usize,
    /// (Fine-graph) cut when refinement of this level started.
    pub cut_before: u64,
    /// (Fine-graph) cut when refinement of this level finished.
    pub cut_after: u64,
    /// Accepted moves at this level.
    pub moves: usize,
    /// Sweeps executed at this level.
    pub rounds: usize,
}

/// Outcome of a [`refine_multilevel`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelReport {
    /// Edge cut before the V-cycle.
    pub cut_before: u64,
    /// Edge cut after the V-cycle.
    pub cut_after: u64,
    /// Total accepted moves across all levels (a coarse move counts once,
    /// however many fine vertices it relocates).
    pub moves: usize,
    /// Per-level reports, coarsest first.
    pub levels: Vec<LevelReport>,
}

impl MultilevelReport {
    /// Collapse into the flat [`RefineReport`] shape (rounds summed over
    /// levels) — what the bench driver's tool rows carry for either mode.
    pub fn summary(&self) -> RefineReport {
        RefineReport {
            cut_before: self.cut_before,
            cut_after: self.cut_after,
            moves: self.moves,
            rounds: self.levels.iter().map(|l| l.rounds).sum(),
        }
    }
}

/// Refine `assignment` in place with a multilevel V-cycle: build a
/// coarsening hierarchy by block-respecting heavy-edge matching down to
/// [`MultilevelConfig::coarsest_vertices`], refine the coarsest level,
/// then project the assignment up and re-refine at each level with
/// edge-weighted gains. The cut never increases, and balance stays within
/// the fine-level feasibility floor at every level (see module docs).
pub fn refine_multilevel(
    g: &CsrGraph,
    assignment: &mut [u32],
    weights: &[f64],
    k: usize,
    cfg: &MultilevelConfig,
) -> MultilevelReport {
    assert_eq!(assignment.len(), g.n());
    assert_eq!(weights.len(), g.n());
    assert!(k >= 1);

    let fine = WeightedCsrGraph::from_csr(g, weights.to_vec());
    let cut_before = fine.edge_cut(assignment);

    // Fine-level balance floor, shared by every level.
    let total: f64 = weights.iter().sum();
    let w_max = weights.iter().copied().fold(0.0, f64::max);
    let allowed =
        block_capacities(total, w_max, k, cfg.refine.epsilon, &cfg.refine.target_fractions);

    // --- Coarsening phase: graphs[0] is the fine graph; maps[l] projects
    // level l onto level l+1 (fine → coarse vertex ids); `labels` is the
    // current (deepest) level's initial assignment, well-defined because
    // the matching is block-respecting — only the deepest one is ever
    // needed (as matching labels, then as the coarsest starting point).
    let mut graphs: Vec<WeightedCsrGraph> = vec![fine];
    let mut maps: Vec<Vec<u32>> = Vec::new();
    let mut labels: Vec<u32> = assignment.to_vec();
    while graphs.last().unwrap().n() > cfg.coarsest_vertices
        && graphs.len() < cfg.max_levels
    {
        let gl = graphs.last().unwrap();
        let mate = heavy_edge_matching(gl, Some(&labels));
        let c = contract(gl, &mate);
        // Diminishing returns: stop when matching barely shrinks the graph
        // (dense same-block neighbourhoods exhausted).
        if c.coarse.n() as f64 > 0.95 * gl.n() as f64 {
            break;
        }
        let mut coarse_asg = vec![0u32; c.coarse.n()];
        for (v, &cv) in c.coarse_of_fine.iter().enumerate() {
            coarse_asg[cv as usize] = labels[v];
        }
        graphs.push(c.coarse);
        maps.push(c.coarse_of_fine);
        labels = coarse_asg;
    }

    // --- Refinement phase: coarsest level first, projecting down.
    let coarsest = graphs.len() - 1;
    let mut cur = labels;
    let mut levels = Vec::with_capacity(graphs.len());
    let mut moves_total = 0usize;
    for l in (0..graphs.len()).rev() {
        if l < coarsest {
            // Project the refined level-(l+1) assignment onto level l.
            cur = maps[l].iter().map(|&cv| cur[cv as usize]).collect();
        }
        let gl = &graphs[l];
        let cut_at_entry = gl.edge_cut(&cur);
        let mut block_w = vec![0.0f64; k];
        for (&b, &w) in cur.iter().zip(&gl.vwgt) {
            block_w[b as usize] += w;
        }
        let (moves, rounds) = refine_sweeps(
            &SweepGraph { xadj: &gl.xadj, adj: &gl.adj, ewgt: Some(&gl.ewgt) },
            &mut cur,
            &gl.vwgt,
            k,
            cfg.refine.max_rounds,
            &allowed,
            &mut block_w,
        );
        moves_total += moves;
        levels.push(LevelReport {
            vertices: gl.n(),
            edges: gl.m(),
            cut_before: cut_at_entry,
            cut_after: gl.edge_cut(&cur),
            moves,
            rounds,
        });
    }

    assignment.copy_from_slice(&cur);
    MultilevelReport {
        cut_before,
        cut_after: levels.last().map_or(cut_before, |l| l.cut_after),
        moves: moves_total,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{edge_cut, refine_partition};
    use geographer_graph::imbalance_with_targets;

    #[test]
    fn noop_on_an_optimal_partition() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let mut asg: Vec<u32> = (0..10).map(|v| (v / 5) as u32).collect();
        let before = asg.clone();
        let r = refine_multilevel(&g, &mut asg, &[1.0; 10], 2, &MultilevelConfig::default());
        assert_eq!(asg, before);
        assert_eq!(r.moves, 0);
        assert_eq!(r.cut_before, r.cut_after);
    }

    #[test]
    fn hierarchy_is_built_and_projection_preserves_cut_accounting() {
        let mesh = geographer_mesh::delaunay_unit_square(3_000, 11);
        let k = 8;
        // Deliberately bad initial partition: stripes by vertex id.
        let mut asg: Vec<u32> = (0..3_000).map(|v| (v % k) as u32).collect();
        let before = edge_cut(&mesh.graph, &asg);
        let cfg = MultilevelConfig {
            coarsest_vertices: 300,
            ..MultilevelConfig::default()
        };
        let r = refine_multilevel(&mesh.graph, &mut asg, &mesh.weights, k as usize, &cfg);
        assert_eq!(r.cut_before, before);
        assert!(r.levels.len() >= 2, "must actually coarsen: {:?}", r.levels.len());
        // Coarsest first, strictly shrinking vertex counts up the ladder.
        for w in r.levels.windows(2) {
            assert!(w[0].vertices < w[1].vertices);
        }
        // Level reports chain: each level starts from the previous level's
        // result (projection preserves the cut exactly).
        for w in r.levels.windows(2) {
            assert_eq!(w[0].cut_after, w[1].cut_before, "projection must preserve the cut");
        }
        assert_eq!(r.levels.last().unwrap().vertices, 3_000);
        assert_eq!(r.cut_after, edge_cut(&mesh.graph, &asg));
        assert!(r.cut_after <= r.cut_before);
    }

    #[test]
    fn beats_single_level_on_a_bad_partition() {
        let mesh = geographer_mesh::delaunay_unit_square(4_000, 3);
        let k = 6usize;
        let bad: Vec<u32> = (0..4_000).map(|v| (v % k) as u32).collect();

        let mut single = bad.clone();
        let sr = refine_partition(
            &mesh.graph,
            &mut single,
            &mesh.weights,
            k,
            &RefineConfig::default(),
        );
        let mut multi = bad.clone();
        let mr = refine_multilevel(
            &mesh.graph,
            &mut multi,
            &mesh.weights,
            k,
            &MultilevelConfig { coarsest_vertices: 500, ..MultilevelConfig::default() },
        );
        assert_eq!(sr.cut_before, mr.cut_before);
        assert!(
            mr.cut_after < sr.cut_after,
            "multilevel {} must beat single-level {}",
            mr.cut_after,
            sr.cut_after
        );
    }

    #[test]
    fn balance_floor_holds_through_the_cycle() {
        let mesh = geographer_mesh::delaunay_unit_square(2_500, 7);
        let k = 5usize;
        let mut asg: Vec<u32> = (0..2_500).map(|v| (v * k / 2_500) as u32).collect();
        let eps = 0.05;
        let cfg = MultilevelConfig {
            coarsest_vertices: 250,
            refine: RefineConfig { epsilon: eps, ..RefineConfig::default() },
            ..MultilevelConfig::default()
        };
        let r = refine_multilevel(&mesh.graph, &mut asg, &mesh.weights, k, &cfg);
        assert!(r.cut_after <= r.cut_before);
        let total: f64 = mesh.weights.iter().sum();
        let mut bw = vec![0.0f64; k];
        for (&b, &w) in asg.iter().zip(&mesh.weights) {
            bw[b as usize] += w;
        }
        let floor = ((1.0 + eps) * total / k as f64).max(total / k as f64 + 1.0);
        for (b, &w) in bw.iter().enumerate() {
            assert!(w <= floor + 1e-9, "block {b}: {w} > floor {floor}");
        }
    }

    #[test]
    fn heterogeneous_targets_respected_at_every_level() {
        // A 2:1:1 partition refined multilevel with matching targets must
        // stay 2:1:1 (target-aware imbalance within the floor), not drift
        // toward uniform.
        let mesh = geographer_mesh::delaunay_unit_square(3_000, 9);
        let k = 3usize;
        let fractions = vec![0.5, 0.25, 0.25];
        // Build an assignment hitting the targets: first half block 0, then
        // quarter each — spatially by x-coordinate order for a mostly-local
        // start.
        let mut order: Vec<u32> = (0..3_000).collect();
        order.sort_by(|&a, &b| {
            mesh.points[a as usize][0].total_cmp(&mesh.points[b as usize][0])
        });
        let mut asg = vec![0u32; 3_000];
        for (rank, &v) in order.iter().enumerate() {
            asg[v as usize] = if rank < 1_500 {
                0
            } else if rank < 2_250 {
                1
            } else {
                2
            };
        }
        let eps = 0.03;
        let cfg = MultilevelConfig {
            coarsest_vertices: 300,
            refine: RefineConfig {
                epsilon: eps,
                target_fractions: Some(fractions.clone()),
                ..RefineConfig::default()
            },
            ..MultilevelConfig::default()
        };
        let r = refine_multilevel(&mesh.graph, &mut asg, &mesh.weights, k, &cfg);
        assert!(r.cut_after <= r.cut_before);
        let ti = imbalance_with_targets(&asg, &mesh.weights, k, Some(&fractions));
        // Floor in imbalance terms: max(ε, w_max/target) over blocks.
        let w_max = 1.0;
        let total: f64 = mesh.weights.iter().sum();
        let floor_imb = fractions
            .iter()
            .map(|f| eps.max(w_max / (total * f)))
            .fold(0.0f64, f64::max);
        assert!(ti <= floor_imb + 1e-9, "target imbalance {ti} > floor {floor_imb}");
        // The skew survives.
        let mut bw = vec![0.0f64; k];
        for (&b, &w) in asg.iter().zip(&mesh.weights) {
            bw[b as usize] += w;
        }
        assert!(bw[0] > 1.8 * bw[1], "2:1 skew erased: {bw:?}");
    }

    #[test]
    fn k1_and_tiny_graphs_are_noops() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut asg = vec![0u32; 4];
        let r = refine_multilevel(&g, &mut asg, &[1.0; 4], 1, &MultilevelConfig::default());
        assert_eq!(r.cut_after, 0);
        assert_eq!(r.moves, 0);
        // Already below coarsest_vertices: degenerates to one flat level.
        assert_eq!(r.levels.len(), 1);
    }
}
