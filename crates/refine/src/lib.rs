//! Graph-based local refinement of geometric partitions.
//!
//! The paper explicitly leaves this on the table (Sec. 2): "a graph-based
//! postprocessing, for example based on the Fiduccia-Mattheyses local
//! refinement heuristic, is easily possible, but outside the scope of this
//! paper." This crate implements that postprocessing as an extension: a
//! balance-constrained greedy boundary refinement in the FM spirit —
//! vertices on block boundaries move to the neighbouring block with the
//! highest edge-gain, as long as the balance constraint stays intact.
//!
//! Moves are only accepted with strictly positive gain, so the edge cut
//! decreases monotonically and the procedure terminates.
//!
//! One flat boundary sweep recovers only the cut that single-vertex moves
//! can reach. [`refine_multilevel`] wraps the same sweep in a multilevel
//! V-cycle — coarsen by heavy-edge matching, refine the coarse graph
//! (where one move relocates a whole cluster), project back and re-refine
//! — which reaches strictly deeper minima at comparable cost (DESIGN.md
//! §7).

use geographer_graph::CsrGraph;

pub mod multilevel;

pub use multilevel::{
    refine_multilevel, LevelReport, MultilevelConfig, MultilevelReport,
};

/// Parameters of the refinement pass.
#[derive(Debug, Clone)]
pub struct RefineConfig {
    /// Maximum sweeps over the boundary (each sweep only moves vertices
    /// with positive gain; convergence is usually reached in a handful).
    pub max_rounds: usize,
    /// Balance slack ε: no block may exceed
    /// `max((1+ε)·target, target + w_max)` after a move — the same
    /// feasibility floor as the partitioners' balance constraint.
    pub epsilon: f64,
    /// Per-block target weight fractions, for refining partitions produced
    /// with heterogeneous targets (`Config::target_fractions` in
    /// `geographer`): `None` = uniform `total/k` targets; `Some` must have
    /// length `k` and positive entries (normalized to sum to 1). Without
    /// this, refinement of a deliberately skewed partition would "rebalance"
    /// it toward uniform, silently violating the balance the solver was
    /// asked for.
    pub target_fractions: Option<Vec<f64>>,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { max_rounds: 10, epsilon: 0.03, target_fractions: None }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineReport {
    /// Edge cut before refinement.
    pub cut_before: u64,
    /// Edge cut after refinement.
    pub cut_after: u64,
    /// Number of vertex moves performed.
    pub moves: usize,
    /// Number of sweeps executed.
    pub rounds: usize,
}

/// Edge cut of `assignment` on `g` (each cut edge counted once).
/// Delegates to the workspace's single cut implementation,
/// [`geographer_graph::edge_cut`] (unweighted fast path of the weighted
/// core).
pub fn edge_cut(g: &CsrGraph, assignment: &[u32]) -> u64 {
    geographer_graph::edge_cut(g, assignment)
}

/// Per-block capacities `max((1+ε)·target, target + w_max)` — the same
/// feasibility floor as `geographer`'s kmeans.rs, with targets either
/// uniform or the configured heterogeneous fractions of the total. Shared
/// by the flat pass and every level of the multilevel V-cycle (which
/// passes the *fine* level's `w_max` so no coarse move can overshoot the
/// bound the caller asked for).
pub(crate) fn block_capacities(
    total: f64,
    w_max: f64,
    k: usize,
    epsilon: f64,
    target_fractions: &Option<Vec<f64>>,
) -> Vec<f64> {
    let fractions: Vec<f64> = match target_fractions {
        None => vec![1.0 / k as f64; k],
        Some(f) => {
            assert!(
                f.len() == k,
                "geographer config: target_fractions length must equal k (got {}, k = {k})",
                f.len()
            );
            assert!(
                f.iter().all(|x| x.is_finite() && *x > 0.0),
                "geographer config: target_fractions must be positive"
            );
            let sum: f64 = f.iter().sum();
            f.iter().map(|x| x / sum).collect()
        }
    };
    fractions
        .iter()
        .map(|frac| {
            let target = total * frac;
            ((1.0 + epsilon) * target).max(target + w_max)
        })
        .collect()
}

/// Borrowed CSR view the sweep kernel walks: adjacency plus optional
/// edge weights (`None` = unit weights, the unweighted fast path).
pub(crate) struct SweepGraph<'a> {
    pub xadj: &'a [usize],
    pub adj: &'a [u32],
    pub ewgt: Option<&'a [u64]>,
}

/// One bounded sequence of greedy boundary sweeps over a (possibly
/// edge-weighted) CSR adjacency: the single refinement kernel behind both
/// [`refine_partition`] (unweighted fast path, `ewgt = None`) and every
/// level of [`refine_multilevel`] (`ewgt = Some`, gains in accumulated
/// fine-edge units). Moves with strictly positive gain that respect
/// `allowed` are applied in fixed vertex order — deterministic and
/// thread-count independent. Returns `(moves, rounds)` and updates
/// `block_w` in place.
pub(crate) fn refine_sweeps(
    g: &SweepGraph<'_>,
    assignment: &mut [u32],
    weights: &[f64],
    k: usize,
    max_rounds: usize,
    allowed: &[f64],
    block_w: &mut [f64],
) -> (usize, usize) {
    let SweepGraph { xadj, adj, ewgt } = *g;
    let n = xadj.len() - 1;
    let mut moves = 0usize;
    let mut rounds = 0usize;
    // Per-sweep scratch: edge weight towards each block seen at the
    // current vertex (sparse: reset only the touched entries).
    let mut cnt = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::with_capacity(8);

    for _ in 0..max_rounds {
        rounds += 1;
        let mut moved_this_round = 0usize;
        for v in 0..n {
            let own = assignment[v];
            // Accumulate edge weight to each adjacent block.
            touched.clear();
            let mut is_boundary = false;
            for (i, &u) in adj[xadj[v]..xadj[v + 1]].iter().enumerate() {
                let b = assignment[u as usize];
                if cnt[b as usize] == 0 {
                    touched.push(b);
                }
                cnt[b as usize] += ewgt.map_or(1, |w| w[xadj[v] + i]);
                if b != own {
                    is_boundary = true;
                }
            }
            if is_boundary {
                let own_cnt = cnt[own as usize];
                // Best foreign block by connecting edge weight, ties to the
                // smaller id for determinism.
                let mut best: Option<(u64, u32)> = None; // (weight, block)
                for &b in &touched {
                    if b == own {
                        continue;
                    }
                    let c = cnt[b as usize];
                    if best
                        .map(|(bc, bb)| (c, std::cmp::Reverse(b)) > (bc, std::cmp::Reverse(bb)))
                        .unwrap_or(true)
                    {
                        best = Some((c, b));
                    }
                }
                if let Some((c, b)) = best {
                    let gain = c as i64 - own_cnt as i64;
                    let w = weights[v];
                    if gain > 0 && block_w[b as usize] + w <= allowed[b as usize] + 1e-12 {
                        assignment[v] = b;
                        block_w[own as usize] -= w;
                        block_w[b as usize] += w;
                        moved_this_round += 1;
                    }
                }
            }
            for &b in &touched {
                cnt[b as usize] = 0;
            }
        }
        moves += moved_this_round;
        if moved_this_round == 0 {
            break;
        }
    }
    (moves, rounds)
}

/// Refine `assignment` in place: repeatedly move boundary vertices to the
/// adjacent block with the largest positive edge-gain, subject to the
/// balance constraint (per-block targets from
/// [`RefineConfig::target_fractions`], uniform by default). Deterministic
/// (fixed sweep order).
pub fn refine_partition(
    g: &CsrGraph,
    assignment: &mut [u32],
    weights: &[f64],
    k: usize,
    cfg: &RefineConfig,
) -> RefineReport {
    assert_eq!(assignment.len(), g.n());
    assert_eq!(weights.len(), g.n());
    assert!(k >= 1);
    let cut_before = edge_cut(g, assignment);

    let total: f64 = weights.iter().sum();
    let w_max = weights.iter().copied().fold(0.0, f64::max);
    let allowed = block_capacities(total, w_max, k, cfg.epsilon, &cfg.target_fractions);

    let mut block_w = vec![0.0f64; k];
    for (&b, &w) in assignment.iter().zip(weights) {
        block_w[b as usize] += w;
    }

    let (moves, rounds) = refine_sweeps(
        &SweepGraph { xadj: &g.xadj, adj: &g.adj, ewgt: None },
        assignment,
        weights,
        k,
        cfg.max_rounds,
        &allowed,
        &mut block_w,
    );

    RefineReport { cut_before, cut_after: edge_cut(g, assignment), moves, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn edge_cut_counts_once() {
        let g = path(4);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn optimal_partition_is_untouched() {
        let g = path(10);
        let mut asg: Vec<u32> = (0..10).map(|v| (v / 5) as u32).collect();
        let before = asg.clone();
        let report = refine_partition(&g, &mut asg, &[1.0; 10], 2, &RefineConfig::default());
        assert_eq!(asg, before);
        assert_eq!(report.moves, 0);
        assert_eq!(report.cut_before, report.cut_after);
    }

    #[test]
    fn repairs_a_jagged_boundary() {
        // 2x10 grid with a zig-zag boundary between left and right halves:
        // refinement must straighten it.
        let w = 10usize;
        let mut edges = Vec::new();
        for y in 0..2 {
            for x in 0..w {
                let v = (y * w + x) as u32;
                if x + 1 < w {
                    edges.push((v, v + 1));
                }
                if y == 0 {
                    edges.push((v, v + w as u32));
                }
            }
        }
        let g = CsrGraph::from_edges(2 * w, &edges);
        // Jagged: row 0 splits at 5, row 1 splits at 4 — staircase boundary.
        let mut asg = vec![0u32; 2 * w];
        for x in 0..w {
            asg[x] = u32::from(x >= 5);
            asg[w + x] = u32::from(x >= 4);
        }
        let weights = vec![1.0; 2 * w];
        let before = edge_cut(&g, &asg);
        let report = refine_partition(&g, &mut asg, &weights, 2, &RefineConfig::default());
        assert!(report.cut_after < before, "cut {} -> {}", before, report.cut_after);
        // Balance preserved.
        let left = asg.iter().filter(|&&b| b == 0).count();
        assert!((9..=11).contains(&left), "balance broken: {left}");
    }

    #[test]
    fn cut_never_increases_and_balance_holds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mesh = geographer_mesh::delaunay_unit_square(1000, 5);
        let k = 6;
        let mut rng = StdRng::seed_from_u64(9);
        // Start from a *random* balanced-ish partition: lots to fix.
        let mut asg: Vec<u32> = (0..1000).map(|_| rng.random_range(0..k as u32)).collect();
        let before = edge_cut(&mesh.graph, &asg);
        let cfg = RefineConfig { max_rounds: 30, epsilon: 0.10, ..RefineConfig::default() };
        let report = refine_partition(&mesh.graph, &mut asg, &mesh.weights, k, &cfg);
        assert!(report.cut_after <= report.cut_before);
        assert_eq!(report.cut_before, before);
        assert!(
            (report.cut_after as f64) < 0.8 * before as f64,
            "random partition should improve a lot: {} -> {}",
            before,
            report.cut_after
        );
        // Balance within the configured slack.
        let mut bw = vec![0.0; k];
        for (&b, &w) in asg.iter().zip(&mesh.weights) {
            bw[b as usize] += w;
        }
        let avg = 1000.0 / k as f64;
        let max = bw.iter().cloned().fold(0.0, f64::max);
        assert!(max <= (1.0 + cfg.epsilon) * avg + 1.0 + 1e-9);
    }

    #[test]
    fn respects_balance_cap_strictly() {
        // Star graph, center in its own block. The center would gain 4 by
        // joining the leaves' block, but that would overload it
        // (Lmax = max(avg, avg + w_max) = 3.5 < 5). Leaves may legally
        // drift to the center's block instead — the cap must hold
        // throughout, and the overloading move must never happen.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut asg = vec![0, 1, 1, 1, 1];
        let weights = vec![1.0; 5];
        let cfg = RefineConfig { max_rounds: 5, epsilon: 0.0, ..RefineConfig::default() };
        let report = refine_partition(&g, &mut asg, &weights, 2, &cfg);
        assert!(report.cut_after <= report.cut_before);
        let mut bw = [0.0f64; 2];
        for (&b, &w) in asg.iter().zip(&weights) {
            bw[b as usize] += w;
        }
        assert!(bw[0] <= 3.5 + 1e-12 && bw[1] <= 3.5 + 1e-12, "cap violated: {bw:?}");
    }

    #[test]
    fn preserves_heterogeneous_balance_it_was_handed() {
        // Regression: `allowed` used to come from the uniform average
        // total/k, so a partition built for 2:1:1 capacities could legally
        // be "rebalanced" past its heterogeneous bounds. Partition a mesh
        // with fractions (0.5, 0.25, 0.25), then refine with the same
        // targets: every block must stay within its own bound.
        let mesh = geographer_mesh::delaunay_unit_square(1200, 8);
        let fractions = vec![0.5, 0.25, 0.25];
        let cfg = geographer::Config {
            target_fractions: Some(fractions.clone()),
            sampling_init: false,
            ..geographer::Config::default()
        };
        let wp = geographer_geometry::WeightedPoints::new(
            mesh.points.clone(),
            mesh.weights.clone(),
        );
        let mut asg = geographer::partition(&wp, 3, &cfg).assignment.clone();
        let rcfg = RefineConfig {
            max_rounds: 20,
            epsilon: cfg.epsilon,
            target_fractions: Some(fractions.clone()),
        };
        let report = refine_partition(&mesh.graph, &mut asg, &mesh.weights, 3, &rcfg);
        assert!(report.cut_after <= report.cut_before);
        let total: f64 = mesh.weights.iter().sum();
        let mut bw = vec![0.0f64; 3];
        for (&b, &w) in asg.iter().zip(&mesh.weights) {
            bw[b as usize] += w;
        }
        for (c, &frac) in fractions.iter().enumerate() {
            let target = total * frac;
            let allowed = ((1.0 + rcfg.epsilon) * target).max(target + 1.0);
            assert!(
                bw[c] <= allowed + 1e-9,
                "block {c}: {} > its heterogeneous bound {allowed}",
                bw[c]
            );
        }
        // The deliberate skew really survives: block 0 stays ~2× block 1.
        assert!(bw[0] > 1.7 * bw[1], "skew erased: {bw:?}");
    }

    #[test]
    #[should_panic(expected = "target_fractions length must equal k")]
    fn wrong_fraction_length_rejected() {
        let g = path(6);
        let mut asg = vec![0u32; 6];
        let cfg = RefineConfig {
            target_fractions: Some(vec![0.5, 0.5]),
            ..RefineConfig::default()
        };
        let _ = refine_partition(&g, &mut asg, &[1.0; 6], 3, &cfg);
    }

    #[test]
    fn k1_is_a_noop() {
        let g = path(6);
        let mut asg = vec![0u32; 6];
        let report = refine_partition(&g, &mut asg, &[1.0; 6], 1, &RefineConfig::default());
        assert_eq!(report.moves, 0);
        assert_eq!(report.cut_after, 0);
    }
}
