//! Partition quality metrics from Sec. 2 of the paper.
//!
//! For a partition Π = (V₁, …, V_k):
//!
//! * edge cut — number of edges with endpoints in different blocks;
//! * communication volume of a block,
//!   `comm(Vi) = Σ_{v∈Vi} |{Vj ≠ Vi : v has a neighbour in Vj}|` —
//!   the number of boundary values Vi must send in an SpMV;
//! * diameter of a block — iFUB-style lower bound on the induced subgraph,
//!   infinite (None) if a block is disconnected;
//! * imbalance — `max_i w(Vi) / target_i − 1`, with `target_i = w(V)/k`
//!   uniformly or `w(V)·f_i` under heterogeneous target fractions (see
//!   [`imbalance_with_targets`] and DESIGN.md §7 erratum b).

use rayon::prelude::*;

use crate::csr::CsrGraph;
use crate::traversal::diameter_lower_bound;

/// All per-partition metrics the experiments report.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// Number of blocks the metrics were computed for.
    pub k: usize,
    /// Edge cut (each cut edge counted once).
    pub edge_cut: u64,
    /// Per-block communication volume.
    pub comm_volume: Vec<u64>,
    /// Max over blocks of the communication volume.
    pub max_comm_volume: u64,
    /// Sum over blocks of the communication volume.
    pub total_comm_volume: u64,
    /// Per-block diameter lower bound; `None` = disconnected block.
    pub diameters: Vec<Option<u32>>,
    /// Harmonic mean of block diameters (see [`harmonic_mean_diameter`]).
    pub harmonic_diameter: f64,
    /// Target-aware weighted imbalance `max_i w(Vi)/target_i − 1`
    /// (uniform targets unless the metrics were computed through
    /// [`evaluate_partition_with_targets`]).
    pub imbalance: f64,
}

/// Weighted imbalance of an assignment against uniform targets:
/// `max_i w(Vi) / (w(V)/k) − 1`. Zero means perfectly balanced; the
/// balance constraint of the paper is `imbalance ≤ ε`. For partitions
/// solved with heterogeneous `target_fractions`, use
/// [`imbalance_with_targets`] — measuring those against the uniform
/// average reports a deliberate skew as imbalance.
pub fn imbalance(assignment: &[u32], weights: &[f64], k: usize) -> f64 {
    imbalance_with_targets(assignment, weights, k, None)
}

/// Target-aware weighted imbalance: `max_i w(Vi) / target_i − 1` with
/// `target_i = w(V) · f_i` and `f` the normalized `target_fractions`
/// (`None` = uniform `1/k`, reproducing [`imbalance`]).
///
/// A partition that exactly hits heterogeneous targets reports 0 here,
/// while the uniform form would report `max_i f_i · k − 1` — e.g. a
/// perfect (0.5, 0.25, 0.25) solve would read as 50 % "imbalanced".
/// Regression-tested against a deliberately skewed solve in
/// `tests/multilevel_props.rs`; see DESIGN.md §7 erratum b.
///
/// # Panics
/// If `target_fractions` is `Some` with length ≠ k or non-positive
/// entries.
pub fn imbalance_with_targets(
    assignment: &[u32],
    weights: &[f64],
    k: usize,
    target_fractions: Option<&[f64]>,
) -> f64 {
    assert_eq!(assignment.len(), weights.len());
    assert!(k > 0);
    let mut block_w = vec![0.0; k];
    for (&b, &w) in assignment.iter().zip(weights) {
        block_w[b as usize] += w;
    }
    let total: f64 = block_w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    match target_fractions {
        None => {
            let avg = total / k as f64;
            block_w.iter().copied().fold(0.0, f64::max) / avg - 1.0
        }
        Some(f) => {
            assert_eq!(f.len(), k, "target_fractions length must equal k");
            assert!(
                f.iter().all(|x| x.is_finite() && *x > 0.0),
                "target_fractions must be positive"
            );
            let sum: f64 = f.iter().sum();
            block_w
                .iter()
                .zip(f)
                .map(|(&w, &frac)| w / (total * frac / sum))
                .fold(0.0, f64::max)
                - 1.0
        }
    }
}

/// Geometric mean of strictly positive values (the paper's aggregation for
/// everything except the diameter).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Harmonic mean over block diameters, treating disconnected blocks as
/// infinite diameter (contributing 0 to the reciprocal sum) — exactly the
/// paper's workaround: "In some cases, blocks are disconnected and thus
/// have an infinite diameter. To avoid a potentially infinite mean
/// diameter, we use the harmonic instead of the geometric mean."
///
/// A diameter of 0 (a singleton block — the most compact a block can be)
/// is clamped to 1 so it contributes a *finite* reciprocal. Until PR 5 it
/// was lumped with `None` and contributed 0, so an all-singletons
/// partition reported an **infinite** mean diameter — the opposite of
/// what it is (DESIGN.md §7 erratum a).
pub fn harmonic_mean_diameter(diameters: &[Option<u32>]) -> f64 {
    assert!(!diameters.is_empty());
    let recip_sum: f64 = diameters
        .iter()
        .map(|d| match d {
            None => 0.0,
            Some(0) => 1.0, // singleton block: clamp diameter to 1
            Some(d) => 1.0 / *d as f64,
        })
        .sum();
    if recip_sum == 0.0 {
        f64::INFINITY
    } else {
        diameters.len() as f64 / recip_sum
    }
}

/// Compute every metric for `assignment` (block id per vertex) on `g`.
///
/// `weights` are the node weights used for the balance constraint (pass all
/// ones for the unweighted case). Diameters are computed per block in
/// parallel — they dominate the evaluation cost on larger instances.
///
/// The reported imbalance measures against uniform `w(V)/k` targets; for
/// partitions solved with heterogeneous `target_fractions` use
/// [`evaluate_partition_with_targets`].
pub fn evaluate_partition(
    g: &CsrGraph,
    assignment: &[u32],
    weights: &[f64],
    k: usize,
) -> PartitionMetrics {
    evaluate_partition_with_targets(g, assignment, weights, k, None)
}

/// [`evaluate_partition`] with the partition's per-block target fractions:
/// the reported imbalance is [`imbalance_with_targets`], so a solve that
/// hits its heterogeneous targets reads as balanced instead of skewed.
pub fn evaluate_partition_with_targets(
    g: &CsrGraph,
    assignment: &[u32],
    weights: &[f64],
    k: usize,
    target_fractions: Option<&[f64]>,
) -> PartitionMetrics {
    assert_eq!(assignment.len(), g.n());
    assert_eq!(weights.len(), g.n());
    assert!(assignment.iter().all(|&b| (b as usize) < k), "block id out of range");

    // Edge cut + communication volume in one pass (the shared metric core
    // also behind the per-level hierarchy metrics).
    let crate::hierarchy::LevelMetrics {
        edge_cut,
        comm_volume,
        max_comm_volume,
        total_comm_volume,
        ..
    } = crate::hierarchy::cut_and_volume(g, assignment, k);

    // Per-block vertex lists, then parallel diameter bounds.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (v, &b) in assignment.iter().enumerate() {
        members[b as usize].push(v as u32);
    }
    let diameters: Vec<Option<u32>> = members
        .par_iter()
        .map(|verts| {
            if verts.is_empty() {
                return None;
            }
            let sub = g.induced_subgraph(verts);
            diameter_lower_bound(&sub)
        })
        .collect();
    let harmonic_diameter = harmonic_mean_diameter(&diameters);

    PartitionMetrics {
        k,
        edge_cut,
        comm_volume,
        max_comm_volume,
        total_comm_volume,
        diameters,
        harmonic_diameter,
        imbalance: imbalance_with_targets(assignment, weights, k, target_fractions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2x4 grid, split into left/right halves of 4 vertices each:
    ///
    /// ```text
    ///   0 - 1 | 2 - 3
    ///   |   | | |   |
    ///   4 - 5 | 6 - 7
    /// ```
    fn grid_2x4() -> (CsrGraph, Vec<u32>) {
        let edges = [
            (0, 1), (1, 2), (2, 3),
            (4, 5), (5, 6), (6, 7),
            (0, 4), (1, 5), (2, 6), (3, 7),
        ];
        let g = CsrGraph::from_edges(8, &edges);
        let assignment = vec![0, 0, 1, 1, 0, 0, 1, 1];
        (g, assignment)
    }

    #[test]
    fn metrics_on_split_grid() {
        let (g, asg) = grid_2x4();
        let w = vec![1.0; 8];
        let m = evaluate_partition(&g, &asg, &w, 2);
        // Cut edges: (1,2) and (5,6).
        assert_eq!(m.edge_cut, 2);
        // Vertices 1 and 5 each see one foreign block; same for 2 and 6.
        assert_eq!(m.comm_volume, vec![2, 2]);
        assert_eq!(m.max_comm_volume, 2);
        assert_eq!(m.total_comm_volume, 4);
        // Each half is a 2x2 square: diameter 2.
        assert_eq!(m.diameters, vec![Some(2), Some(2)]);
        assert!((m.harmonic_diameter - 2.0).abs() < 1e-12);
        assert_eq!(m.imbalance, 0.0);
    }

    #[test]
    fn comm_volume_counts_distinct_blocks() {
        // Star: center 0 with leaves in three different blocks.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let asg = vec![0, 1, 2, 3];
        let m = evaluate_partition(&g, &asg, &[1.0; 4], 4);
        // Center sees 3 foreign blocks, each leaf sees 1.
        assert_eq!(m.comm_volume, vec![3, 1, 1, 1]);
        assert_eq!(m.edge_cut, 3);
    }

    #[test]
    fn disconnected_block_has_infinite_diameter() {
        // Path 0-1-2-3 with blocks {0,3} and {1,2}: block 0 is disconnected.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let asg = vec![0, 1, 1, 0];
        let m = evaluate_partition(&g, &asg, &[1.0; 4], 2);
        assert_eq!(m.diameters[0], None);
        assert_eq!(m.diameters[1], Some(1));
        assert!(m.harmonic_diameter.is_finite(), "harmonic mean absorbs infinity");
    }

    #[test]
    fn imbalance_simple() {
        // 3 vs 1 vertices in k=2: max/avg - 1 = 3/2 - 1 = 0.5.
        let asg = vec![0, 0, 0, 1];
        assert!((imbalance(&asg, &[1.0; 4], 2) - 0.5).abs() < 1e-12);
        // Weighted: weights flip the balance.
        let w = vec![1.0, 1.0, 1.0, 3.0];
        assert!((imbalance(&asg, &w, 2) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_all_infinite() {
        assert!(harmonic_mean_diameter(&[None, None]).is_infinite());
        assert!((harmonic_mean_diameter(&[Some(2), Some(2)]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_diameters_are_finite_not_infinite() {
        // Regression (DESIGN.md §7 erratum a): Some(0) used to be lumped
        // with None and contribute 0 to the reciprocal sum, so an
        // all-singletons partition — the most compact possible — reported
        // an *infinite* mean diameter. A singleton clamps to diameter 1.
        let hm = harmonic_mean_diameter(&[Some(0), Some(0)]);
        assert!(hm.is_finite(), "all-singleton partition must be finite");
        assert!((hm - 1.0).abs() < 1e-12);
        // Mixed: recip sum = 1 + 1/4, mean = 2 / 1.25 = 1.6 (pre-fix: 8).
        let hm = harmonic_mean_diameter(&[Some(0), Some(4)]);
        assert!((hm - 1.6).abs() < 1e-12);
        // Disconnected blocks still absorb into the mean as infinite.
        assert!(harmonic_mean_diameter(&[None, Some(0)]).is_finite());
        // End-to-end: a partition of isolated-singleton blocks.
        let g = CsrGraph::from_edges(3, &[]);
        let m = evaluate_partition(&g, &[0, 1, 2], &[1.0; 3], 3);
        assert_eq!(m.diameters, vec![Some(0), Some(0), Some(0)]);
        assert!(
            m.harmonic_diameter.is_finite(),
            "singletons are maximally compact, not disconnected"
        );
    }

    #[test]
    fn heterogeneous_targets_read_as_balanced() {
        // Regression (DESIGN.md §7 erratum b): a partition that exactly
        // hits (0.5, 0.25, 0.25) targets used to report max/avg − 1 = 50 %
        // imbalance against the uniform average. Target-aware it is 0.
        let asg = vec![0, 0, 1, 2];
        let w = vec![1.0; 4];
        let fr = [0.5, 0.25, 0.25];
        assert!((imbalance(&asg, &w, 3) - 0.5).abs() < 1e-12, "uniform form sees the skew");
        let ti = imbalance_with_targets(&asg, &w, 3, Some(&fr));
        assert!(ti.abs() < 1e-12, "target-aware form must be 0, got {ti}");
        // Unnormalized fractions are normalized.
        let ti = imbalance_with_targets(&asg, &w, 3, Some(&[2.0, 1.0, 1.0]));
        assert!(ti.abs() < 1e-12);
        // None reproduces the uniform form exactly.
        assert_eq!(imbalance_with_targets(&asg, &w, 3, None), imbalance(&asg, &w, 3));
        // Overfull vs its own target is reported: block 1 at 2/1 = +100 %.
        let ti = imbalance_with_targets(&[0, 0, 1, 1], &w, 3, Some(&fr));
        assert!((ti - 1.0).abs() < 1e-12);
        // Threaded through evaluate_partition_with_targets.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let m = evaluate_partition_with_targets(&g, &asg, &w, 3, Some(&fr));
        assert!(m.imbalance.abs() < 1e-12);
    }

    #[test]
    fn csr_and_per_block_accounting_agree_on_random_graphs() {
        // Cross-check the one-pass CSR computation in `evaluate_partition`
        // against independent per-block accounting, on deterministic
        // pseudo-random graphs and assignments.
        let mut rng = geographer_geometry::SplitMix64::new(0x0123_4567_89AB_CDEF);
        let mut next = move || rng.next_u64();
        for trial in 0..20 {
            let n = 2 + (next() % 120) as usize;
            let k = 1 + (next() % 6) as usize;
            let m_raw = (next() % 400) as usize;
            let edges: Vec<(u32, u32)> = (0..m_raw)
                .map(|_| ((next() % n as u64) as u32, (next() % n as u64) as u32))
                .collect();
            let g = CsrGraph::from_edges(n, &edges);
            let asg: Vec<u32> = (0..n).map(|_| (next() % k as u64) as u32).collect();
            let w: Vec<f64> = (0..n).map(|_| 1.0 + (next() % 5) as f64).collect();

            let m = evaluate_partition(&g, &asg, &w, k);

            // Edge cut, recounted straight off the CSR adjacency.
            let mut cut = 0u64;
            for v in 0..n as u32 {
                for &u in g.neighbors(v) {
                    if v < u && asg[v as usize] != asg[u as usize] {
                        cut += 1;
                    }
                }
            }
            assert_eq!(m.edge_cut, cut, "trial {trial}: edge cut mismatch");

            // Communication volume, recounted per block from scratch.
            let mut comm = vec![0u64; k];
            for v in 0..n as u32 {
                let bv = asg[v as usize];
                let mut foreign: Vec<u32> = g
                    .neighbors(v)
                    .iter()
                    .map(|&u| asg[u as usize])
                    .filter(|&b| b != bv)
                    .collect();
                foreign.sort_unstable();
                foreign.dedup();
                comm[bv as usize] += foreign.len() as u64;
            }
            assert_eq!(m.comm_volume, comm, "trial {trial}: comm volume mismatch");
            assert_eq!(m.max_comm_volume, comm.iter().copied().max().unwrap());
            assert_eq!(m.total_comm_volume, comm.iter().sum::<u64>());

            // Imbalance, recomputed from per-block weights.
            let mut bw = vec![0.0f64; k];
            for (v, &b) in asg.iter().enumerate() {
                bw[b as usize] += w[v];
            }
            let avg = bw.iter().sum::<f64>() / k as f64;
            let want = bw.iter().copied().fold(0.0, f64::max) / avg - 1.0;
            assert!(
                (m.imbalance - want).abs() < 1e-12,
                "trial {trial}: imbalance {} != {want}",
                m.imbalance
            );
        }
    }

    #[test]
    fn empty_block_allowed() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let m = evaluate_partition(&g, &[0, 0], &[1.0; 2], 2);
        assert_eq!(m.diameters[1], None);
        assert_eq!(m.comm_volume[1], 0);
        assert!((m.imbalance - 1.0).abs() < 1e-12);
    }
}
