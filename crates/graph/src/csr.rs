//! Compressed sparse row graphs (undirected, unweighted edges).

/// An undirected graph in CSR form. Vertex ids are `u32` (the evaluation
/// instances stay well below 2³² vertices at reproduction scale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// Offsets into `adj`; `xadj.len() == n + 1`.
    pub xadj: Vec<usize>,
    /// Concatenated adjacency lists.
    pub adj: Vec<u32>,
}

impl CsrGraph {
    /// Build from an undirected edge list. Each `{u, v}` edge may appear in
    /// either or both directions; self-loops are dropped and duplicates
    /// merged. The result stores both directions.
    ///
    /// # Panics
    /// If an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            if u != v {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adj = vec![0u32; xadj[n]];
        let mut cursor = xadj.clone();
        for &(u, v) in edges {
            if u != v {
                adj[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
                adj[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sort each adjacency range in place, then dedup-compact the whole
        // array with a single write cursor — no per-vertex temporary and no
        // second full-size allocation.
        let mut write = 0usize;
        let mut clean_xadj = vec![0usize; n + 1];
        for v in 0..n {
            let (lo, hi) = (xadj[v], xadj[v + 1]);
            adj[lo..hi].sort_unstable();
            let mut prev = None;
            for r in lo..hi {
                let u = adj[r];
                if prev != Some(u) {
                    adj[write] = u;
                    write += 1;
                    prev = Some(u);
                }
            }
            clean_xadj[v + 1] = write;
        }
        adj.truncate(write);
        CsrGraph { xadj: clean_xadj, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Whether both directions of every arc are stored (invariant check,
    /// used by tests).
    pub fn is_symmetric(&self) -> bool {
        for v in 0..self.n() as u32 {
            for &u in self.neighbors(v) {
                if self.neighbors(u).binary_search(&v).is_err() {
                    return false;
                }
            }
        }
        true
    }

    /// The subgraph induced by `vertices`, with vertices renumbered
    /// `0..vertices.len()` in the given order. Also returns nothing else —
    /// callers keep their own id mapping if needed.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> CsrGraph {
        // geo-analyze: allow(hash-container): lookup-only id map, never iterated — edge order comes from the deterministic `vertices` walk below.
        let mut local_id = std::collections::HashMap::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            local_id.insert(v, i as u32);
        }
        let mut edges = Vec::new();
        for (i, &v) in vertices.iter().enumerate() {
            for &u in self.neighbors(v) {
                if let Some(&j) = local_id.get(&u) {
                    if (i as u32) < j {
                        edges.push((i as u32, j));
                    }
                }
            }
        }
        CsrGraph::from_edges(vertices.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn symmetry_holds() {
        assert!(path4().is_symmetric());
    }

    #[test]
    fn duplicates_and_self_loops_cleaned() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn induced_subgraph_of_path() {
        let g = path4();
        // Take vertices {1, 2, 3}: a path of length 2 in local ids 0-1-2.
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert_eq!(sub.neighbors(1), &[0, 2]);
        // Take {0, 3}: no edges survive.
        let sub = g.induced_subgraph(&[0, 3]);
        assert_eq!(sub.m(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_symmetric());
    }
}
