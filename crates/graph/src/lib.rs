//! Graphs and partition-quality metrics.
//!
//! The partitioners in this workspace are geometric — they never look at
//! edges — but the paper evaluates their output with graph metrics
//! (Sec. 2): edge cut, maximum/total communication volume, block diameter
//! (iFUB lower bound), and balance. This crate provides the compressed
//! sparse row graph type, the traversals, and those metrics.

// Fixed-dimension coordinate loops index several parallel arrays at once;
// iterator-zip rewrites of those loops are less readable, not more.
#![allow(clippy::needless_range_loop)]

pub mod coarsen;
pub mod csr;
pub mod cut;
pub mod hierarchy;
pub mod metrics;
pub mod migration;
pub mod traversal;

pub use coarsen::{
    contract, edge_cut_weighted, heavy_edge_matching, Contraction, WeightedCsrGraph,
};
pub use csr::CsrGraph;
pub use cut::{edge_cut, edge_cut_core};
pub use hierarchy::{coarsen_assignment, evaluate_levels, LevelMetrics};
pub use metrics::{
    evaluate_partition, evaluate_partition_with_targets, geometric_mean,
    harmonic_mean_diameter, imbalance, imbalance_with_targets, PartitionMetrics,
};
pub use migration::{migration, relabel_free_migration, MigrationMetrics};
pub use traversal::{bfs_distances, connected_components, diameter_lower_bound};
