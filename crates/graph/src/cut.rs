//! The single edge-cut implementation behind every cut number this
//! workspace reports.
//!
//! Before PR 5 there were three independent edge-cut loops
//! (`geographer_refine::edge_cut`, the inline accumulation in
//! `hierarchy::cut_and_volume`, and the weighted variant the multilevel
//! coarsening needed) — three chances for their semantics to drift. They
//! now all call [`edge_cut_core`]: a weighted sum over cut edges with an
//! unweighted fast path (`ewgt = None` counts each cut edge once without
//! touching a weight array). `tests/multilevel_props.rs` cross-checks that
//! all public entry points agree on unit weights.

/// Weighted edge cut of `assignment` over a CSR adjacency.
///
/// `ewgt`, when present, is parallel to `adj` (one weight per stored arc;
/// the undirected graph stores both arcs of an edge with equal weight).
/// `None` is the unweighted fast path: every edge counts 1. Each undirected
/// edge is counted once (the `v < u` arc).
pub fn edge_cut_core(
    xadj: &[usize],
    adj: &[u32],
    ewgt: Option<&[u64]>,
    assignment: &[u32],
) -> u64 {
    debug_assert_eq!(xadj.len(), assignment.len() + 1);
    if let Some(w) = ewgt {
        assert_eq!(w.len(), adj.len(), "edge weights must parallel the adjacency");
    }
    let n = xadj.len() - 1;
    let mut cut = 0u64;
    match ewgt {
        None => {
            for v in 0..n {
                let bv = assignment[v];
                for &u in &adj[xadj[v]..xadj[v + 1]] {
                    if (v as u32) < u && bv != assignment[u as usize] {
                        cut += 1;
                    }
                }
            }
        }
        Some(w) => {
            for v in 0..n {
                let bv = assignment[v];
                for (i, &u) in adj[xadj[v]..xadj[v + 1]].iter().enumerate() {
                    if (v as u32) < u && bv != assignment[u as usize] {
                        cut += w[xadj[v] + i];
                    }
                }
            }
        }
    }
    cut
}

/// Edge cut of `assignment` on an unweighted [`crate::CsrGraph`] (each cut
/// edge counted once) — the unweighted fast path of [`edge_cut_core`].
pub fn edge_cut(g: &crate::CsrGraph, assignment: &[u32]) -> u64 {
    assert_eq!(assignment.len(), g.n());
    edge_cut_core(&g.xadj, &g.adj, None, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn unweighted_counts_each_edge_once() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn weighted_path_sums_arc_weights() {
        // Triangle with weights 5, 7, 11 on edges (0,1), (0,2), (1,2).
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        // Build arc-parallel weights by looking the edge up per arc.
        let wt = |a: u32, b: u32| match (a.min(b), a.max(b)) {
            (0, 1) => 5u64,
            (0, 2) => 7,
            (1, 2) => 11,
            _ => unreachable!(),
        };
        let mut ewgt = Vec::new();
        for v in 0..3u32 {
            for &u in g.neighbors(v) {
                ewgt.push(wt(v, u));
            }
        }
        // Cut {0} | {1,2}: edges (0,1) and (0,2) are cut.
        assert_eq!(edge_cut_core(&g.xadj, &g.adj, Some(&ewgt), &[0, 1, 1]), 12);
        // Cut {1} | {0,2}: edges (0,1) and (1,2).
        assert_eq!(edge_cut_core(&g.xadj, &g.adj, Some(&ewgt), &[0, 1, 0]), 16);
        // Unit weights agree with the fast path.
        let unit = vec![1u64; g.adj.len()];
        for asg in [[0u32, 1, 1], [0, 1, 0], [0, 0, 0], [0, 1, 2]] {
            assert_eq!(
                edge_cut_core(&g.xadj, &g.adj, Some(&unit), &asg),
                edge_cut_core(&g.xadj, &g.adj, None, &asg)
            );
        }
    }
}
