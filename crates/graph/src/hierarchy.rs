//! Per-level partition metrics for hierarchical (processor-aware)
//! partitions.
//!
//! A hierarchical partition assigns every vertex a flat leaf block, and a
//! spec-provided coarsening maps each leaf block to its ancestor group at
//! every level (`geographer::HierarchySpec::level_groups`). The metrics of
//! Sec. 2 then split by machine tier: an edge cut at level 0 crosses
//! *node* boundaries (the expensive links), while an edge cut only at the
//! leaf level stays inside a node (cheap links). The same applies to the
//! communication volume: the level-`l` volume counts the boundary values a
//! level-`l` group must send to *other level-`l` groups* — exactly what an
//! SpMV's inter-group traffic is at that tier.

use crate::csr::CsrGraph;

/// Cut/communication-volume metrics of one hierarchy level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMetrics {
    /// Number of groups at this level.
    pub groups: usize,
    /// Edges whose endpoints lie in different level groups. Level 0's
    /// value is the *inter-node* cut; the flat (leaf-level) cut minus it
    /// is the intra-node cut.
    pub edge_cut: u64,
    /// Per-group communication volume at this level.
    pub comm_volume: Vec<u64>,
    /// Max over groups of the communication volume.
    pub max_comm_volume: u64,
    /// Sum over groups of the communication volume.
    pub total_comm_volume: u64,
}

/// Coarsen a flat block assignment through a block→group map.
///
/// # Panics
/// If any block id is out of the map's range.
pub fn coarsen_assignment(assignment: &[u32], group_of_block: &[u32]) -> Vec<u32> {
    assignment.iter().map(|&b| group_of_block[b as usize]).collect()
}

/// Cut + communication volume of a (possibly coarsened) assignment with
/// `groups` groups — the single implementation of the metric core shared
/// by [`crate::evaluate_partition`] (which adds the diameter pass) and
/// [`evaluate_levels`].
pub(crate) fn cut_and_volume(g: &CsrGraph, assignment: &[u32], groups: usize) -> LevelMetrics {
    // The cut itself comes from the shared weighted core (unweighted fast
    // path) — one implementation for every cut this workspace reports.
    let edge_cut = crate::cut::edge_cut_core(&g.xadj, &g.adj, None, assignment);
    let mut comm_volume = vec![0u64; groups];
    let mut seen: Vec<u32> = Vec::with_capacity(16);
    for v in 0..g.n() as u32 {
        let bv = assignment[v as usize];
        seen.clear();
        for &u in g.neighbors(v) {
            let bu = assignment[u as usize];
            if bu != bv && !seen.contains(&bu) {
                seen.push(bu);
            }
        }
        comm_volume[bv as usize] += seen.len() as u64;
    }
    LevelMetrics {
        groups,
        edge_cut,
        max_comm_volume: comm_volume.iter().copied().max().unwrap_or(0),
        total_comm_volume: comm_volume.iter().sum(),
        comm_volume,
    }
}

/// Evaluate the per-level metrics of a hierarchical partition.
///
/// `assignment` carries flat leaf block ids; `level_groups[l]` maps each
/// flat block to its level-`l` group (coarsest level first, as produced by
/// `HierarchySpec::level_groups` — the last entry is typically the
/// identity, making the last element the flat metrics). Levels are
/// *nested*: every level-`l+1` group refines a level-`l` group, so the
/// returned cuts and volumes are non-decreasing in `l`.
///
/// # Panics
/// On inconsistent lengths or out-of-range block/group ids.
pub fn evaluate_levels(
    g: &CsrGraph,
    assignment: &[u32],
    level_groups: &[Vec<u32>],
) -> Vec<LevelMetrics> {
    assert_eq!(assignment.len(), g.n());
    assert!(!level_groups.is_empty(), "need at least one level");
    level_groups
        .iter()
        .map(|map| {
            assert!(
                assignment.iter().all(|&b| (b as usize) < map.len()),
                "block id out of range of the level map"
            );
            let groups = map.iter().copied().max().map_or(0, |m| m as usize + 1);
            let coarse = coarsen_assignment(assignment, map);
            cut_and_volume(g, &coarse, groups)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4-5-6-7 with 8 leaf blocks grouped [4,2]-style:
    /// blocks {0,1} are node 0, {2,3} node 1, …
    fn path8() -> (CsrGraph, Vec<u32>, Vec<Vec<u32>>) {
        let edges: Vec<(u32, u32)> = (0..7u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(8, &edges);
        let asg: Vec<u32> = (0..8).collect();
        let level_groups = vec![
            (0..8u32).map(|b| b / 2).collect(), // node of block
            (0..8u32).collect(),                // leaf identity
        ];
        (g, asg, level_groups)
    }

    #[test]
    fn path_levels_split_cut_by_tier() {
        let (g, asg, groups) = path8();
        let levels = evaluate_levels(&g, &asg, &groups);
        assert_eq!(levels.len(), 2);
        // All 7 path edges are cut at the leaf level; only the 3 edges
        // crossing a node boundary (1-2, 3-4, 5-6) at level 0.
        assert_eq!(levels[1].edge_cut, 7);
        assert_eq!(levels[0].edge_cut, 3);
        assert_eq!(levels[0].groups, 4);
        // Interior nodes send to both sides, end nodes to one.
        assert_eq!(levels[0].comm_volume, vec![1, 2, 2, 1]);
        assert_eq!(levels[0].total_comm_volume, 6);
    }

    #[test]
    fn nested_levels_are_monotone() {
        let (g, asg, groups) = path8();
        let levels = evaluate_levels(&g, &asg, &groups);
        assert!(levels[0].edge_cut <= levels[1].edge_cut);
        assert!(levels[0].total_comm_volume <= levels[1].total_comm_volume);
    }

    #[test]
    fn leaf_level_matches_evaluate_partition() {
        let (g, asg, groups) = path8();
        let flat = crate::metrics::evaluate_partition(&g, &asg, &[1.0; 8], 8);
        let levels = evaluate_levels(&g, &asg, &groups);
        let leaf = levels.last().unwrap();
        assert_eq!(leaf.edge_cut, flat.edge_cut);
        assert_eq!(leaf.comm_volume, flat.comm_volume);
        assert_eq!(leaf.total_comm_volume, flat.total_comm_volume);
        assert_eq!(leaf.max_comm_volume, flat.max_comm_volume);
    }

    #[test]
    fn coarsen_maps_blocks_to_groups() {
        assert_eq!(coarsen_assignment(&[0, 3, 2, 1], &[0, 0, 1, 1]), vec![0, 1, 1, 0]);
    }

    #[test]
    fn single_group_has_no_cut() {
        let (g, asg, _) = path8();
        let all_one = vec![vec![0u32; 8]];
        let levels = evaluate_levels(&g, &asg, &all_one);
        assert_eq!(levels[0].edge_cut, 0);
        assert_eq!(levels[0].total_comm_volume, 0);
    }
}
