//! Migration metrics between two assignments of the same vertex set —
//! the stability axis of a repartitioner (DESIGN.md §5).
//!
//! When a time-stepped workload is repartitioned, every vertex whose block
//! changes must migrate its data to another process: the *migrated-point
//! fraction* counts them, the *migrated-weight volume* weighs them. Two
//! flavors exist:
//!
//! * [`migration`] compares labels verbatim — correct when both
//!   assignments come from the same warm-started solver, whose block ids
//!   are stable across steps;
//! * [`relabel_free_migration`] first matches the blocks of the two
//!   assignments by maximum overlap (an optimal bijection via the
//!   Hungarian algorithm) and counts only what *no* relabeling could
//!   save — the fair way to compare independent cold runs, whose block
//!   numbering is arbitrary. It is symmetric in its two arguments, because
//!   swapping them transposes the overlap matrix and an optimal assignment
//!   of a matrix and its transpose have equal value.

/// Migration between two assignments of the same vertex set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationMetrics {
    /// Number of vertices whose block changed.
    pub migrated_points: u64,
    /// `migrated_points / n` (0 for an empty vertex set).
    pub point_fraction: f64,
    /// Total weight of the vertices whose block changed.
    pub migrated_weight: f64,
    /// `migrated_weight / total_weight` (0 for zero total weight).
    pub weight_fraction: f64,
}

/// Label-verbatim migration: vertex `v` migrates iff `prev[v] != next[v]`.
pub fn migration(prev: &[u32], next: &[u32], weights: &[f64]) -> MigrationMetrics {
    assert_eq!(prev.len(), next.len());
    assert_eq!(prev.len(), weights.len());
    let mut migrated_points = 0u64;
    let mut migrated_weight = 0.0f64;
    let mut total_weight = 0.0f64;
    for ((&a, &b), &w) in prev.iter().zip(next).zip(weights) {
        total_weight += w;
        if a != b {
            migrated_points += 1;
            migrated_weight += w;
        }
    }
    let n = prev.len();
    MigrationMetrics {
        migrated_points,
        point_fraction: if n == 0 { 0.0 } else { migrated_points as f64 / n as f64 },
        migrated_weight,
        weight_fraction: if total_weight > 0.0 { migrated_weight / total_weight } else { 0.0 },
    }
}

/// Relabel-free migration: the minimum migration over all bijective
/// relabelings of `next`'s blocks onto `prev`'s. Point and weight overlap
/// are each maximized by their own optimal matching (so each reported
/// number is the true minimum for its measure).
///
/// Symmetric: `relabel_free_migration(a, b, w, k)` equals
/// `relabel_free_migration(b, a, w, k)` (up to float summation order in
/// the weight term). Cost is `O(n + k³)`.
pub fn relabel_free_migration(
    prev: &[u32],
    next: &[u32],
    weights: &[f64],
    k: usize,
) -> MigrationMetrics {
    assert_eq!(prev.len(), next.len());
    assert_eq!(prev.len(), weights.len());
    assert!(k > 0);
    let n = prev.len();
    // Overlap matrices: counts[a*k + b] = #vertices with prev = a, next = b,
    // and the same with weights.
    let mut counts = vec![0.0f64; k * k];
    let mut weight_overlap = vec![0.0f64; k * k];
    let mut total_weight = 0.0f64;
    for ((&a, &b), &w) in prev.iter().zip(next).zip(weights) {
        assert!((a as usize) < k && (b as usize) < k, "block id out of range");
        counts[a as usize * k + b as usize] += 1.0;
        weight_overlap[a as usize * k + b as usize] += w;
        total_weight += w;
    }
    let kept_points = max_assignment_score(&counts, k);
    let kept_weight = max_assignment_score(&weight_overlap, k);
    let migrated_points = (n as f64 - kept_points).round().max(0.0) as u64;
    let migrated_weight = (total_weight - kept_weight).max(0.0);
    MigrationMetrics {
        migrated_points,
        point_fraction: if n == 0 { 0.0 } else { migrated_points as f64 / n as f64 },
        migrated_weight,
        weight_fraction: if total_weight > 0.0 { migrated_weight / total_weight } else { 0.0 },
    }
}

/// Maximum-score perfect assignment on a k×k score matrix (row-major):
/// the Hungarian algorithm with potentials, O(k³). Returns the value of
/// the best bijection rows → columns.
fn max_assignment_score(score: &[f64], k: usize) -> f64 {
    debug_assert_eq!(score.len(), k * k);
    // Classic shortest-augmenting-path formulation on cost = −score, with
    // 1-based helper arrays (index 0 is the virtual unmatched column).
    let n = k;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut matched_row = vec![0usize; n + 1]; // matched_row[col] = row (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = -score[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    (1..=n).map(|j| score[(matched_row[j] - 1) * n + (j - 1)]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_assignments_migrate_nothing() {
        let a = vec![0u32, 1, 2, 1, 0];
        let w = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let m = migration(&a, &a, &w);
        assert_eq!(m.migrated_points, 0);
        assert_eq!(m.migrated_weight, 0.0);
        let r = relabel_free_migration(&a, &a, &w, 3);
        assert_eq!(r.migrated_points, 0);
        assert!(r.migrated_weight.abs() < 1e-12);
    }

    #[test]
    fn verbatim_counts_every_flip() {
        let prev = vec![0u32, 0, 1, 1];
        let next = vec![0u32, 1, 1, 0];
        let w = vec![1.0, 2.0, 1.0, 4.0];
        let m = migration(&prev, &next, &w);
        assert_eq!(m.migrated_points, 2);
        assert!((m.point_fraction - 0.5).abs() < 1e-12);
        assert!((m.migrated_weight - 6.0).abs() < 1e-12);
        assert!((m.weight_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pure_relabeling_is_free() {
        // next = prev with blocks renamed by a permutation: relabel-free
        // migration must be exactly zero even though no label matches.
        let prev = vec![0u32, 1, 2, 0, 1, 2, 2];
        let perm = [2u32, 0, 1];
        let next: Vec<u32> = prev.iter().map(|&b| perm[b as usize]).collect();
        let w = vec![1.5; 7];
        assert_eq!(migration(&prev, &next, &w).migrated_points, 7);
        let r = relabel_free_migration(&prev, &next, &w, 3);
        assert_eq!(r.migrated_points, 0);
        assert!(r.migrated_weight.abs() < 1e-12);
    }

    #[test]
    fn relabel_free_finds_the_optimal_matching() {
        // prev blocks {0:4 pts, 1:2 pts}; next splits prev-0 into 1 and
        // keeps 2 of them: best bijection is 0→1? Work it out:
        // prev: 0 0 0 0 1 1
        // next: 1 1 0 0 0 1
        // overlap: O[0][0]=2, O[0][1]=2, O[1][0]=1, O[1][1]=1.
        // Both bijections keep 3 points → 3 migrate.
        let prev = vec![0u32, 0, 0, 0, 1, 1];
        let next = vec![1u32, 1, 0, 0, 0, 1];
        let r = relabel_free_migration(&prev, &next, &[1.0; 6], 2);
        assert_eq!(r.migrated_points, 3);
    }

    #[test]
    fn counts_and_weights_each_get_their_own_optimum() {
        // Overlap counts: O[0][0]=2, O[0][1]=1, O[1][0]=1, O[1][1]=0 —
        // identity keeps 2 points. Weight overlap: W[0][0]=2, W[0][1]=50,
        // W[1][0]=30, W[1][1]=0 — the *swap* keeps weight 80 ≫ 2. The two
        // metrics must report their respective optima, not share one
        // matching.
        let prev = vec![0u32, 0, 0, 1];
        let next = vec![0u32, 0, 1, 0];
        let w = vec![1.0, 1.0, 50.0, 30.0];
        let r = relabel_free_migration(&prev, &next, &w, 2);
        assert_eq!(r.migrated_points, 2, "count-optimal matching is the identity");
        assert!((r.migrated_weight - 2.0).abs() < 1e-12, "weight-optimal is the swap");
    }

    #[test]
    fn symmetry_on_a_handmade_case() {
        let prev = vec![0u32, 1, 2, 2, 1, 0, 2, 1];
        let next = vec![2u32, 1, 0, 2, 0, 0, 1, 1];
        let w = vec![1.0, 0.5, 2.0, 1.5, 3.0, 1.0, 0.25, 2.5];
        let ab = relabel_free_migration(&prev, &next, &w, 3);
        let ba = relabel_free_migration(&next, &prev, &w, 3);
        assert_eq!(ab.migrated_points, ba.migrated_points);
        assert!((ab.migrated_weight - ba.migrated_weight).abs() < 1e-9);
    }

    #[test]
    fn empty_blocks_are_fine() {
        // k larger than the ids actually used.
        let prev = vec![0u32, 0, 1];
        let next = vec![1u32, 1, 0];
        let r = relabel_free_migration(&prev, &next, &[1.0; 3], 5);
        assert_eq!(r.migrated_points, 0, "swap is a pure relabeling");
    }

    #[test]
    fn empty_input_is_zero() {
        let m = migration(&[], &[], &[]);
        assert_eq!(m.migrated_points, 0);
        assert_eq!(m.point_fraction, 0.0);
        let r = relabel_free_migration(&[], &[], &[], 2);
        assert_eq!(r.point_fraction, 0.0);
    }

    #[test]
    fn hungarian_matches_brute_force_on_random_matrices() {
        // Cross-check the O(k³) assignment against k! enumeration.
        let mut rng = geographer_geometry::SplitMix64::new(77);
        for k in 1usize..=5 {
            for _ in 0..40 {
                let score: Vec<f64> =
                    (0..k * k).map(|_| (rng.next_u64() % 1000) as f64).collect();
                let fast = max_assignment_score(&score, k);
                let brute = brute_force_max(&score, k);
                assert!(
                    (fast - brute).abs() < 1e-9,
                    "k={k}: hungarian {fast} != brute {brute} for {score:?}"
                );
            }
        }
    }

    fn brute_force_max(score: &[f64], k: usize) -> f64 {
        fn rec(score: &[f64], k: usize, row: usize, used: &mut [bool]) -> f64 {
            if row == k {
                return 0.0;
            }
            let mut best = f64::NEG_INFINITY;
            for col in 0..k {
                if !used[col] {
                    used[col] = true;
                    let v = score[row * k + col] + rec(score, k, row + 1, used);
                    used[col] = false;
                    best = best.max(v);
                }
            }
            best
        }
        rec(score, k, 0, &mut vec![false; k])
    }
}
