//! Multilevel coarsening: weighted CSR graphs, deterministic heavy-edge
//! matching, and contraction (see DESIGN.md §7).
//!
//! The multilevel V-cycle of `geographer_refine` rests on one invariant:
//! for any assignment of the *coarse* vertices, the weighted edge cut of
//! the coarse graph equals the (weighted) edge cut of its projection onto
//! the fine graph. [`contract`] guarantees it structurally — a coarse edge
//! carries the summed weight of every fine edge between the two merged
//! vertex sets, and edges internal to a merged pair disappear (their
//! endpoints can never be separated by a coarse assignment). Vertex
//! weights accumulate the same way, so per-block weights (and therefore
//! balance) are preserved exactly under projection.

use rayon::prelude::*;

use crate::csr::CsrGraph;
use crate::cut::edge_cut_core;

/// An undirected CSR graph with vertex and edge weights — the level type
/// of the coarsening hierarchy. The fine level of a mesh graph has unit
/// edge weights ([`WeightedCsrGraph::from_csr`]); contraction accumulates
/// them (a coarse edge's weight is the number of fine mesh edges it
/// stands for), which is what makes coarse-level refinement gains equal to
/// fine-level cut improvements.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCsrGraph {
    /// Offsets into `adj`/`ewgt`; `xadj.len() == n + 1`.
    pub xadj: Vec<usize>,
    /// Concatenated adjacency lists (both arcs of each edge stored).
    pub adj: Vec<u32>,
    /// Edge weights, parallel to `adj` (both arcs carry the same weight).
    pub ewgt: Vec<u64>,
    /// Vertex weights (the balance weights of the partitioning problem).
    pub vwgt: Vec<f64>,
}

impl WeightedCsrGraph {
    /// Lift an unweighted graph to the weighted form: unit edge weights,
    /// caller-provided vertex weights.
    ///
    /// # Panics
    /// If `vwgt.len() != g.n()`.
    pub fn from_csr(g: &CsrGraph, vwgt: Vec<f64>) -> Self {
        assert_eq!(vwgt.len(), g.n(), "one vertex weight per vertex");
        WeightedCsrGraph {
            xadj: g.xadj.clone(),
            adj: g.adj.clone(),
            ewgt: vec![1; g.adj.len()],
            vwgt,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Edge weights parallel to [`Self::neighbors`].
    pub fn edge_weights(&self, v: u32) -> &[u64] {
        &self.ewgt[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Total vertex weight (summed in vertex order — deterministic).
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Weighted edge cut of `assignment`: the summed weight of edges whose
    /// endpoints lie in different blocks, each edge counted once. On a
    /// [`WeightedCsrGraph::from_csr`] lift this equals the unweighted
    /// [`crate::edge_cut`] of the underlying graph.
    pub fn edge_cut(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.n());
        edge_cut_core(&self.xadj, &self.adj, Some(&self.ewgt), assignment)
    }
}

/// Weighted edge cut of `assignment` on `g` (free-function form of
/// [`WeightedCsrGraph::edge_cut`], mirroring [`crate::edge_cut`]).
pub fn edge_cut_weighted(g: &WeightedCsrGraph, assignment: &[u32]) -> u64 {
    g.edge_cut(assignment)
}

/// Deterministic greedy heavy-edge matching.
///
/// Vertices are visited in ascending id order; an unmatched vertex is
/// matched to its unmatched neighbour with the heaviest connecting edge
/// (ties: lighter vertex weight first, then smaller id — merging light
/// vertices keeps coarse vertex weights even). The result is a valid
/// matching: `mate` is an involution (`mate[mate[v]] == v`), `mate[v] == v`
/// marks an unmatched vertex, and matched pairs are always graph edges.
///
/// `labels`, when given, restricts the matching to endpoints with equal
/// labels. The multilevel refinement passes the current block assignment
/// here, so every coarse vertex lies entirely inside one block and the
/// fine assignment projects onto the coarse graph without information
/// loss (the coarse cut *equals* the fine cut, not just bounds it).
///
/// Entirely sequential and a pure function of the graph + labels, so the
/// result is independent of thread count by construction.
pub fn heavy_edge_matching(g: &WeightedCsrGraph, labels: Option<&[u32]>) -> Vec<u32> {
    if let Some(l) = labels {
        assert_eq!(l.len(), g.n(), "one label per vertex");
    }
    let n = g.n();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    for v in 0..n as u32 {
        if mate[v as usize] != v {
            continue; // already matched
        }
        // (edge weight desc, vertex weight asc, id asc) — encoded as a
        // max-search on (ewgt, Reverse(vwgt), Reverse(id)).
        let mut best: Option<(u64, f64, u32)> = None;
        for (i, &u) in g.neighbors(v).iter().enumerate() {
            if u == v || mate[u as usize] != u {
                continue;
            }
            if let Some(l) = labels {
                if l[u as usize] != l[v as usize] {
                    continue;
                }
            }
            let w = g.edge_weights(v)[i];
            let vw = g.vwgt[u as usize];
            let better = match best {
                None => true,
                Some((bw, bvw, bu)) => {
                    w > bw || (w == bw && (vw < bvw || (vw == bvw && u < bu)))
                }
            };
            if better {
                best = Some((w, vw, u));
            }
        }
        if let Some((_, _, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }
    mate
}

/// Result of one contraction step: the coarse graph plus the fine→coarse
/// projection map.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// The contracted graph.
    pub coarse: WeightedCsrGraph,
    /// `coarse_of_fine[v]` is the coarse vertex that fine vertex `v`
    /// merged into.
    pub coarse_of_fine: Vec<u32>,
}

impl Contraction {
    /// Project a coarse assignment back onto the fine vertex set.
    pub fn project(&self, coarse_assignment: &[u32]) -> Vec<u32> {
        self.coarse_of_fine
            .iter()
            .map(|&c| coarse_assignment[c as usize])
            .collect()
    }
}

/// Contract `g` along a matching (as produced by [`heavy_edge_matching`]):
/// each matched pair becomes one coarse vertex, unmatched vertices carry
/// over. Coarse ids are assigned in ascending order of the pair's smaller
/// fine id. Vertex weights accumulate exactly (two summands, fixed order);
/// parallel coarse edges collapse into one edge carrying the summed
/// weight; edges inside a matched pair vanish.
///
/// The per-coarse-vertex adjacency build runs in parallel (each coarse
/// vertex's list is a pure function of the fine graph and the matching,
/// so the result is thread-count independent).
///
/// # Panics
/// If `mate` is not an involution on `0..g.n()`.
pub fn contract(g: &WeightedCsrGraph, mate: &[u32]) -> Contraction {
    let n = g.n();
    assert_eq!(mate.len(), n);
    // Coarse numbering: representative = smaller endpoint of the pair.
    let mut coarse_of_fine = vec![u32::MAX; n];
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for v in 0..n as u32 {
        let m = mate[v as usize];
        assert!(
            (m as usize) < n && mate[m as usize] == v,
            "mate must be an involution"
        );
        if v <= m {
            let c = pairs.len() as u32;
            coarse_of_fine[v as usize] = c;
            coarse_of_fine[m as usize] = c;
            pairs.push((v, m));
        }
    }

    // Per-coarse-vertex adjacency: gather both constituents' neighbours,
    // map them to coarse ids, drop self-loops, merge duplicates.
    let cof = &coarse_of_fine;
    let built: Vec<(Vec<(u32, u64)>, f64)> = pairs
        .par_iter()
        .map(|&(a, b)| {
            let c = cof[a as usize];
            let mut nbrs: Vec<(u32, u64)> = Vec::with_capacity(
                g.degree_hint(a) + if a == b { 0 } else { g.degree_hint(b) },
            );
            let mut push_all = |v: u32| {
                for (i, &u) in g.neighbors(v).iter().enumerate() {
                    let cu = cof[u as usize];
                    if cu != c {
                        nbrs.push((cu, g.edge_weights(v)[i]));
                    }
                }
            };
            push_all(a);
            if b != a {
                push_all(b);
            }
            nbrs.sort_unstable_by_key(|&(u, _)| u);
            let vw = if b != a {
                g.vwgt[a as usize] + g.vwgt[b as usize]
            } else {
                g.vwgt[a as usize]
            };
            (nbrs, vw)
        })
        .collect();

    // Duplicate neighbours are merged here, during the serial
    // concatenation, writing straight into pre-reserved output arrays —
    // one gather buffer per pair above, no per-pair adj/wgt temporaries.
    let nc = pairs.len();
    let upper: usize = built.iter().map(|(nbrs, _)| nbrs.len()).sum();
    let mut xadj = Vec::with_capacity(nc + 1);
    xadj.push(0usize);
    let mut adj: Vec<u32> = Vec::with_capacity(upper);
    let mut ewgt: Vec<u64> = Vec::with_capacity(upper);
    let mut vwgt = Vec::with_capacity(nc);
    for (nbrs, vw) in built {
        let row_start = adj.len();
        for (u, w) in nbrs {
            if adj.len() > row_start && *adj.last().unwrap() == u {
                *ewgt.last_mut().unwrap() += w;
            } else {
                adj.push(u);
                ewgt.push(w);
            }
        }
        xadj.push(adj.len());
        vwgt.push(vw);
    }
    Contraction {
        coarse: WeightedCsrGraph { xadj, adj, ewgt, vwgt },
        coarse_of_fine,
    }
}

impl WeightedCsrGraph {
    /// Degree of `v` (capacity hint for the contraction gather).
    fn degree_hint(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x4() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[
                (0, 1), (1, 2), (2, 3),
                (4, 5), (5, 6), (6, 7),
                (0, 4), (1, 5), (2, 6), (3, 7),
            ],
        )
    }

    #[test]
    fn from_csr_has_unit_edge_weights_and_matching_cut() {
        let g = grid_2x4();
        let wg = WeightedCsrGraph::from_csr(&g, vec![1.0; 8]);
        assert_eq!(wg.n(), 8);
        assert_eq!(wg.m(), 10);
        let asg = [0, 0, 1, 1, 0, 0, 1, 1];
        assert_eq!(wg.edge_cut(&asg), crate::edge_cut(&g, &asg));
        assert_eq!(edge_cut_weighted(&wg, &asg), 2);
    }

    #[test]
    fn matching_is_valid_and_deterministic() {
        let g = grid_2x4();
        let wg = WeightedCsrGraph::from_csr(&g, vec![1.0; 8]);
        let mate = heavy_edge_matching(&wg, None);
        // Involution over existing edges.
        for v in 0..8u32 {
            let m = mate[v as usize];
            assert_eq!(mate[m as usize], v);
            if m != v {
                assert!(wg.neighbors(v).contains(&m), "{v}-{m} is not an edge");
            }
        }
        // Same input, same matching.
        assert_eq!(mate, heavy_edge_matching(&wg, None));
    }

    #[test]
    fn labels_restrict_the_matching() {
        let g = grid_2x4();
        let wg = WeightedCsrGraph::from_csr(&g, vec![1.0; 8]);
        let blocks = [0, 0, 1, 1, 0, 0, 1, 1];
        let mate = heavy_edge_matching(&wg, Some(&blocks));
        for v in 0..8u32 {
            let m = mate[v as usize];
            assert_eq!(
                blocks[v as usize], blocks[m as usize],
                "matched across a block boundary: {v}-{m}"
            );
        }
    }

    #[test]
    fn contraction_accumulates_weights_and_collapses_parallel_edges() {
        // Square 0-1-3-2-0. Match (0,1) and (2,3): the two coarse vertices
        // are connected by TWO fine edges (0-2 and 1-3) which must collapse
        // into one coarse edge of weight 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 3), (2, 3), (0, 2)]);
        let wg = WeightedCsrGraph::from_csr(&g, vec![1.0, 2.0, 3.0, 4.0]);
        let mate = vec![1, 0, 3, 2];
        let c = contract(&wg, &mate);
        assert_eq!(c.coarse.n(), 2);
        assert_eq!(c.coarse.m(), 1);
        assert_eq!(c.coarse.neighbors(0), &[1]);
        assert_eq!(c.coarse.edge_weights(0), &[2]);
        assert_eq!(c.coarse.vwgt, vec![3.0, 7.0]);
        assert_eq!(c.coarse_of_fine, vec![0, 0, 1, 1]);
        // Projection invariant: any coarse assignment's weighted cut equals
        // the projected fine cut.
        for casg in [[0u32, 1], [0, 0], [1, 0]] {
            let fine = c.project(&casg);
            assert_eq!(c.coarse.edge_cut(&casg), wg.edge_cut(&fine));
        }
    }

    #[test]
    fn unmatched_vertices_survive_contraction() {
        // Path of 3: only (0,1) can match; 2 stays singleton.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WeightedCsrGraph::from_csr(&g, vec![1.0; 3]);
        let mate = heavy_edge_matching(&wg, None);
        let c = contract(&wg, &mate);
        assert_eq!(c.coarse.n(), 2);
        assert!((c.coarse.total_vertex_weight() - 3.0).abs() < 1e-15);
        // The surviving coarse edge stands for the fine edge 1-2.
        assert_eq!(c.coarse.edge_cut(&[0, 1]), 1);
    }

    #[test]
    fn empty_graph_contracts_to_empty() {
        let g = CsrGraph::from_edges(0, &[]);
        let wg = WeightedCsrGraph::from_csr(&g, vec![]);
        let mate = heavy_edge_matching(&wg, None);
        assert!(mate.is_empty());
        let c = contract(&wg, &mate);
        assert_eq!(c.coarse.n(), 0);
    }
}
