//! geo-analyze: the workspace's determinism/SPMD invariant analyzer.
//!
//! Every headline claim of this reproduction — SoA≡AoS bitwise agreement,
//! thread-vs-process bitwise agreement, warm-restart fixed points — rests
//! on *source-level* invariants: fixed reduction trees, no
//! order-nondeterministic containers on output paths, no panics inside
//! rank closures. Dynamic tests check them at p ≤ 8; this crate checks
//! them at the source level, over every `.rs` file in the workspace, as a
//! tier-1 test (see DESIGN.md §11 for the catalog and rationale).
//!
//! The analyzer is deliberately dependency-free and deliberately not a
//! parser: [`scan`] is a hand-rolled lexer that splits each line into
//! code/comment with literal contents blanked, and [`rules`] checks
//! token-level properties over that view. Rules are **deny by default**;
//! the only escape hatch is an explicit, justified, per-line waiver:
//!
//! ```text
//! // geo-analyze: allow(hash-container): membership-only set, never iterated.
//! ```
//!
//! A waiver on a comment-only line covers the next code line; a waiver on
//! a code line covers that line. Waivers with an unknown rule id or an
//! empty justification are violations themselves (`invalid-waiver`), and
//! waivers that no longer suppress anything are flagged (`stale-waiver`)
//! so the escape hatches cannot rot in place.

pub mod callgraph;
pub mod json;
pub mod parse;
pub mod protocol;
pub mod rules;
pub mod scan;
pub mod schema;
pub mod taint;

use std::path::{Path, PathBuf};

/// One diagnostic: a rule violated at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (see [`rules::RULES`]), or the meta rules
    /// `invalid-waiver` / `stale-waiver`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(path: &str, line: usize, rule: &'static str, message: String) -> Self {
        Violation { path: path.to_string(), line, rule, message }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// A parsed `// geo-analyze: allow(rule): justification` waiver.
#[derive(Debug)]
struct Waiver {
    rule: String,
    /// The code line the waiver suppresses (1-based).
    target_line: usize,
    /// The line the waiver comment sits on (1-based).
    at_line: usize,
    used: bool,
}

const WAIVER_MARK: &str = "geo-analyze:";

/// Parse waivers out of the scanned comments. Malformed waivers become
/// `invalid-waiver` violations immediately.
fn parse_waivers(path: &str, lines: &[scan::Line]) -> (Vec<Waiver>, Vec<Violation>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // Waivers live in plain `//` comments only: a doc comment (`///`,
        // `//!` — its text starts with `/` or `!` after the scanner eats
        // `//`) mentioning the syntax is documentation, not a waiver.
        let doc = matches!(line.comment.trim_start().chars().next(), Some('/') | Some('!'));
        if doc {
            continue;
        }
        let Some(at) = line.comment.find(WAIVER_MARK) else { continue };
        let rest = line.comment[at + WAIVER_MARK.len()..].trim_start();
        // `geo-analyze: hot-loop` is the D10 opt-in marker, not a waiver.
        if rest.starts_with("hot-loop") {
            continue;
        }
        let mut fail = |why: &str| {
            bad.push(Violation::new(path, i + 1, "invalid-waiver", why.to_string()));
        };
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail("waiver must be written `geo-analyze: allow(rule): justification`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("waiver rule list is missing its closing `)`");
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !rules::known_rule(&rule) {
            bad.push(Violation::new(
                path,
                i + 1,
                "invalid-waiver",
                format!("unknown rule `{rule}` in waiver"),
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            fail("waiver needs a non-empty justification after `):`");
            continue;
        }
        // A waiver on a code line covers that line; on a comment-only
        // line it covers the next line that has code.
        let target_line = if line.has_code() {
            i + 1
        } else {
            lines
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, l)| l.has_code())
                .map(|(j, _)| j + 1)
                .unwrap_or(i + 1)
        };
        waivers.push(Waiver { rule, target_line, at_line: i + 1, used: false });
    }
    (waivers, bad)
}

/// Analyze one source file. `path` is the workspace-relative path with `/`
/// separators; rule scoping keys off it, so fixtures can impersonate any
/// location by passing a virtual path.
pub fn analyze_source(path: &str, text: &str) -> Vec<Violation> {
    analyze_source_opts(path, text, false)
}

/// [`analyze_source`] with an override: `force_test` treats the whole
/// file as test code (used for out-of-line `#[cfg(test)] mod name;`
/// module files, whose test-ness lives in the *declaring* file).
pub fn analyze_source_opts(path: &str, text: &str, force_test: bool) -> Vec<Violation> {
    let lines = scan::scan(text);
    let is_tests_file =
        force_test || path.contains("/tests/") || path.contains("/benches/");
    // One parse feeds D5 scoping and the D7–D10 dataflow rules; a file
    // outside the supported subset degrades to the lexical rules only.
    let parsed = parse::parse_file(&lines).ok();
    let raw = rules::apply_rules(path, &lines, is_tests_file, parsed.as_ref());
    let (mut waivers, mut out) = parse_waivers(path, &lines);
    for v in raw {
        match waivers.iter_mut().find(|w| w.rule == v.rule && w.target_line == v.line) {
            Some(w) => w.used = true,
            None => out.push(v),
        }
    }
    for w in &waivers {
        if !w.used {
            out.push(Violation::new(
                path,
                w.at_line,
                "stale-waiver",
                format!("waiver for `{}` no longer suppresses anything; remove it", w.rule),
            ));
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Recursively collect `.rs` files, skipping build output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Analyze every `.rs` file under `root`'s `crates/` and `vendor/` trees.
/// The analyzer's own fixture corpus (deliberately-bad snippets under
/// `crates/analyze/tests/fixtures/`) is excluded.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    collect_rs(&root.join("vendor"), &mut files)?;
    files.sort();
    let mut texts: Vec<(String, String)> = Vec::new();
    for f in &files {
        let rel: String = f
            .strip_prefix(root)
            .unwrap_or(f)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.starts_with("crates/analyze/tests/fixtures/") {
            continue;
        }
        texts.push((rel, std::fs::read_to_string(f)?));
    }
    // Phase 1: find files that are out-of-line `#[cfg(test)] mod name;`
    // modules — their test-ness is declared in the *parent* file, so a
    // single-file pass would misread them as production code.
    let mut test_files: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (rel, text) in &texts {
        let lines = scan::scan(text);
        for name in scan::out_of_line_test_mods(&lines) {
            let dir = module_dir(rel);
            test_files.insert(format!("{dir}/{name}.rs"));
            test_files.insert(format!("{dir}/{name}/mod.rs"));
        }
    }
    // Phase 2: analyze, forcing test scope where phase 1 says so.
    let mut out = Vec::new();
    for (rel, text) in &texts {
        out.extend(analyze_source_opts(rel, text, test_files.contains(rel)));
    }
    Ok(out)
}

/// The directory a file's child modules live in: `…/lib.rs`, `…/main.rs`,
/// and `…/mod.rs` own their containing directory; `…/foo.rs` owns `…/foo`.
fn module_dir(rel: &str) -> String {
    let (dir, file) = rel.rsplit_once('/').unwrap_or(("", rel));
    if matches!(file, "lib.rs" | "main.rs" | "mod.rs") {
        dir.to_string()
    } else {
        format!("{dir}/{}", file.trim_end_matches(".rs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_same_line_violation() {
        let src = "fn f() {\n    let m = HashMap::new(); // geo-analyze: allow(hash-container): never iterated, key lookups only.\n}\n";
        let v = analyze_source("crates/graph/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_on_comment_line_covers_next_code_line() {
        let src = "fn f() {\n    // geo-analyze: allow(hash-container): lookup table, order never observed.\n    let m = HashMap::new();\n}\n";
        let v = analyze_source("crates/graph/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn stale_waiver_is_flagged() {
        let src = "// geo-analyze: allow(hash-container): nothing here anymore.\nfn f() {}\n";
        let v = analyze_source("crates/graph/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stale-waiver");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn invalid_waivers_are_flagged() {
        let no_reason = "let m = HashMap::new(); // geo-analyze: allow(hash-container):\n";
        let v = analyze_source("crates/graph/src/x.rs", no_reason);
        assert!(v.iter().any(|v| v.rule == "invalid-waiver"), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "hash-container"), "unwaived violation kept: {v:?}");

        let bad_rule = "// geo-analyze: allow(no-such-rule): whatever.\nfn f() {}\n";
        let v = analyze_source("crates/graph/src/x.rs", bad_rule);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "invalid-waiver");
    }

    #[test]
    fn violations_carry_exact_positions() {
        let src = "fn f() {\n\n    let s = HashSet::new();\n}\n";
        let v = analyze_source("crates/mesh/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].line, v[0].rule), (3, "hash-container"));
    }
}
