//! The workspace call graph: every parsed fn, with calls resolved by name
//! within the crate and via `use` imports across crates — plus honest
//! "unresolved" edges for everything name resolution cannot place
//! (std/vendor methods, trait-object dispatch, macro-generated code).
//!
//! `crates/parcomm` is deliberately *excluded* from the graph: collective
//! internals are rank-dependent by design (that is what a collective
//! *is*), and the protocol rules treat the `Comm` collective names as
//! terminal symbols rather than resolving into their implementations.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::Path;

use crate::parse::{self, CallSite, FnItem, Node, ParsedFile};
use crate::scan;
use crate::taint::COLLECTIVES;

/// One parsed workspace file.
#[derive(Debug, Clone)]
pub struct WsFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The owning crate's package name (from its `Cargo.toml`).
    pub crate_name: String,
    pub parsed: ParsedFile,
}

/// A fn's identity: (file index, index into that file's `fns`).
pub type FnId = (usize, usize);

/// What one call site resolves to.
#[derive(Debug, Clone)]
pub enum Resolution {
    /// A `Comm` collective: a terminal protocol kind.
    Collective(String),
    /// Workspace fn candidates (method calls may have several).
    Fns(Vec<FnId>),
    /// Not placeable in the workspace (std/vendor/macro): honest edge.
    Unresolved(String),
}

/// The parsed workspace.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub files: Vec<WsFile>,
    /// Package name → the crate it names, for cross-crate `use` paths.
    crate_names: BTreeMap<String, String>,
}

impl Workspace {
    /// Parse every `crates/*/src` file under `root` (excluding `parcomm`
    /// — see module docs). Files that fail to parse are skipped (the
    /// tolerance sweep test pins that none do).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut ws = Workspace::default();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let dir_name = dir.file_name().map(|n| n.to_string_lossy().to_string());
            let Some(dir_name) = dir_name else { continue };
            if dir_name == "parcomm" {
                continue;
            }
            let manifest = std::fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
            let crate_name = manifest
                .lines()
                .find_map(|l| {
                    let l = l.trim();
                    l.strip_prefix("name")
                        .map(|r| r.trim_start().trim_start_matches('=').trim())
                        .map(|r| r.trim_matches('"').to_string())
                })
                .unwrap_or_else(|| dir_name.clone());
            ws.crate_names.insert(crate_name.clone(), dir_name.clone());
            let mut files = Vec::new();
            collect_rs(&dir.join("src"), &mut files)?;
            files.sort();
            for f in &files {
                let rel: String = f
                    .strip_prefix(root)
                    .unwrap_or(f)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let text = std::fs::read_to_string(f)?;
                let lines = scan::scan(&text);
                let Ok(parsed) = parse::parse_file(&lines) else { continue };
                ws.files.push(WsFile { path: rel, crate_name: crate_name.clone(), parsed });
            }
        }
        Ok(ws)
    }

    /// A one-file workspace (fixtures and the per-file D8 rule): calls
    /// into other files stay unresolved there, by design.
    pub fn from_single(path: &str, parsed: ParsedFile) -> Workspace {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("local")
            .to_string();
        Workspace {
            files: vec![WsFile { path: path.to_string(), crate_name, parsed }],
            crate_names: BTreeMap::new(),
        }
    }

    /// Locate a fn by crate package name, optional impl qual, and name.
    pub fn find_fn(&self, crate_name: &str, qual: Option<&str>, name: &str) -> Option<FnId> {
        for (fi, file) in self.files.iter().enumerate() {
            if file.crate_name != crate_name {
                continue;
            }
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.name == name && f.qual.as_deref() == qual && !f.is_test {
                    return Some((fi, gi));
                }
            }
        }
        None
    }

    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].parsed.fns[id.1]
    }

    /// Display label for a fn: `crate::Qual::name` / `crate::name`.
    pub fn fn_label(&self, id: FnId) -> String {
        let file = &self.files[id.0];
        let f = &file.parsed.fns[id.1];
        match &f.qual {
            Some(q) => format!("{}::{}::{}", file.crate_name, q, f.name),
            None => format!("{}::{}", file.crate_name, f.name),
        }
    }

    /// Resolve one call site from inside fn `(file, caller)`.
    pub fn resolve(&self, file: usize, caller: &FnItem, call: &CallSite) -> Resolution {
        if call.is_method && COLLECTIVES.contains(&call.name.as_str()) {
            return Resolution::Collective(call.name.clone());
        }
        if call.is_macro {
            return Resolution::Unresolved(format!("{}!", call.name));
        }
        if call.is_method {
            // Any impl/trait-default method with this name, anywhere: a
            // sound over-approximation (the protocol check Alt-joins all
            // candidates).
            let cands = self.fns_named(&call.name, true);
            return if cands.is_empty() {
                Resolution::Unresolved(format!(".{}", call.name))
            } else {
                Resolution::Fns(cands)
            };
        }
        let this_crate = &self.files[file].crate_name;
        if let Some(head) = call.qual.first() {
            // `Self::f` → the enclosing impl's methods.
            let last = call.qual.last().map(String::as_str).unwrap_or(head);
            let qual_ty = if last == "Self" { caller.qual.as_deref() } else { Some(last) };
            if matches!(head.as_str(), "crate" | "self" | "super") {
                let cands = self.fns_in_crate(this_crate, &call.name, None);
                return self.fns_or_unresolved(cands, call);
            }
            if self.crate_names.contains_key(head) && head != this_crate {
                let cands = self.fns_in_crate(head, &call.name, None);
                return self.fns_or_unresolved(cands, call);
            }
            // Type-qualified (`Planner::solve`, `Vec::new`): associated
            // fns by (type, name), in this crate first, then anywhere.
            if let Some(ty) = qual_ty {
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    let mut cands = self.fns_in_crate(this_crate, &call.name, Some(ty));
                    if cands.is_empty() {
                        cands = self
                            .fns_named(&call.name, true)
                            .into_iter()
                            .filter(|id| self.fn_item(*id).qual.as_deref() == Some(ty))
                            .collect();
                    }
                    return self.fns_or_unresolved(cands, call);
                }
            }
            // Module-qualified (`m::f`): by name within this crate.
            let cands = self.fns_in_crate(this_crate, &call.name, None);
            return self.fns_or_unresolved(cands, call);
        }
        // Bare call: same file → same crate → use-imported crate →
        // workspace-unique.
        let same_file: Vec<FnId> = self.files[file]
            .parsed
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == call.name && f.qual.is_none() && !f.is_test)
            .map(|(gi, _)| (file, gi))
            .collect();
        if !same_file.is_empty() {
            return Resolution::Fns(same_file);
        }
        let same_crate = self.fns_in_crate(this_crate, &call.name, None);
        if !same_crate.is_empty() {
            return Resolution::Fns(same_crate);
        }
        for u in &self.files[file].parsed.uses {
            if (u.name == call.name || u.name == "*") && self.crate_names.contains_key(&u.root) {
                let cands = self.fns_in_crate(&u.root, &call.name, None);
                if !cands.is_empty() {
                    return Resolution::Fns(cands);
                }
            }
        }
        let anywhere: Vec<FnId> = self
            .fns_named(&call.name, false)
            .into_iter()
            .filter(|id| self.fn_item(*id).qual.is_none())
            .collect();
        if anywhere.len() == 1 {
            return Resolution::Fns(anywhere);
        }
        Resolution::Unresolved(call.name.clone())
    }

    fn fns_or_unresolved(&self, cands: Vec<FnId>, call: &CallSite) -> Resolution {
        if cands.is_empty() {
            let q = call.qual.join("::");
            Resolution::Unresolved(if q.is_empty() {
                call.name.clone()
            } else {
                format!("{q}::{}", call.name)
            })
        } else {
            Resolution::Fns(cands)
        }
    }

    /// Non-test fns named `name`; `methods_only` keeps impl/trait members.
    fn fns_named(&self, name: &str, methods_only: bool) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.name == name && !f.is_test && (!methods_only || f.qual.is_some()) {
                    out.push((fi, gi));
                }
            }
        }
        out
    }

    fn fns_in_crate(&self, crate_name: &str, name: &str, qual: Option<&str>) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            if file.crate_name != crate_name {
                continue;
            }
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.name != name || f.is_test {
                    continue;
                }
                match qual {
                    Some(q) => {
                        if f.qual.as_deref() == Some(q) {
                            out.push((fi, gi));
                        }
                    }
                    None => {
                        if f.qual.is_none() {
                            out.push((fi, gi));
                        }
                    }
                }
            }
        }
        out
    }

    /// All call sites in a fn body, in token order.
    pub fn calls_of(&self, id: FnId) -> Vec<&CallSite> {
        let mut out = Vec::new();
        collect_calls(&self.fn_item(id).body, &mut out);
        out
    }

    /// The fns that can (transitively, under this graph's conservative
    /// name resolution) issue a collective. Calls to anything outside
    /// this set are protocol-irrelevant: they cannot contribute a
    /// collective kind, so a summary may treat them as empty instead of
    /// widening to every same-name method in the workspace.
    pub fn collective_reachers(&self) -> BTreeSet<FnId> {
        let mut reach: BTreeSet<FnId> = BTreeSet::new();
        let mut callees_of: Vec<(FnId, Vec<FnId>)> = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = (fi, gi);
                let mut callees = Vec::new();
                for call in self.calls_of(id) {
                    match self.resolve(fi, f, call) {
                        Resolution::Collective(_) => {
                            reach.insert(id);
                        }
                        Resolution::Fns(c) => callees.extend(c),
                        Resolution::Unresolved(_) => {}
                    }
                }
                callees_of.push((id, callees));
            }
        }
        loop {
            let mut changed = false;
            for (id, callees) in &callees_of {
                if !reach.contains(id) && callees.iter().any(|c| reach.contains(c)) {
                    reach.insert(*id);
                    changed = true;
                }
            }
            if !changed {
                return reach;
            }
        }
    }

    /// Emit a DOT call graph of the protocol-relevant subgraph reachable
    /// from `entries`: resolved edges restricted to collective-reaching
    /// fns, collective terminals as boxes, and each fn's unresolved calls
    /// aggregated into one dashed edge (per-name lists live in the JSON
    /// summary).
    pub fn dot(&self, entries: &[FnId]) -> String {
        let reach = self.collective_reachers();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut stack: Vec<FnId> = entries.to_vec();
        let mut edges: BTreeSet<(String, String, &'static str)> = BTreeSet::new();
        let mut labels: BTreeMap<String, String> = BTreeMap::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let from = self.fn_label(id);
            let caller = self.fn_item(id);
            let mut unresolved = 0usize;
            for call in self.calls_of(id) {
                match self.resolve(id.0, caller, call) {
                    Resolution::Collective(k) => {
                        edges.insert((from.clone(), format!("Comm::{k}"), "collective"));
                    }
                    Resolution::Fns(cands) => {
                        for c in cands.into_iter().filter(|c| reach.contains(c)) {
                            edges.insert((from.clone(), self.fn_label(c), "resolved"));
                            stack.push(c);
                        }
                    }
                    Resolution::Unresolved(_) => unresolved += 1,
                }
            }
            if unresolved > 0 {
                let node = format!("unresolved:{from}");
                labels.insert(node.clone(), format!("? {unresolved} unresolved"));
                edges.insert((from, node, "unresolved"));
            }
        }
        let mut out = String::from("digraph protocol {\n  rankdir=LR;\n  node [fontsize=10];\n");
        let mut nodes: BTreeSet<(String, &'static str)> = BTreeSet::new();
        for (a, b, kind) in &edges {
            nodes.insert((a.clone(), "fn"));
            nodes.insert((
                b.clone(),
                match *kind {
                    "collective" => "collective",
                    "unresolved" => "unresolved",
                    _ => "fn",
                },
            ));
        }
        for (n, kind) in &nodes {
            let label = labels.get(n).map(|l| format!(", label=\"{l}\"")).unwrap_or_default();
            let attrs = match *kind {
                "collective" => format!(" [shape=box, style=filled, fillcolor=lightblue{label}]"),
                "unresolved" => format!(" [shape=ellipse, style=dotted{label}]"),
                _ => format!(" [shape=ellipse{label}]"),
            };
            out.push_str(&format!("  \"{n}\"{attrs};\n"));
        }
        for (a, b, kind) in &edges {
            let style = if *kind == "unresolved" { " [style=dashed]" } else { "" };
            out.push_str(&format!("  \"{a}\" -> \"{b}\"{style};\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Walk a body, collecting call sites in token order.
pub fn collect_calls<'n>(nodes: &'n [Node], out: &mut Vec<&'n CallSite>) {
    for n in nodes {
        match n {
            Node::Seg(s) => out.extend(s.calls.iter()),
            Node::Block(b) => collect_calls(b, out),
            Node::Let { init, else_b, .. } => {
                collect_calls(init, out);
                collect_calls(else_b, out);
            }
            Node::If { cond, then_b, else_b, .. } => {
                collect_calls(cond, out);
                collect_calls(then_b, out);
                collect_calls(else_b, out);
            }
            Node::Loop { cond, body, .. } => {
                collect_calls(cond, out);
                collect_calls(body, out);
            }
            Node::Match { scrutinee, arms, .. } => {
                collect_calls(scrutinee, out);
                for a in arms {
                    collect_calls(&a.guard, out);
                    collect_calls(&a.body, out);
                }
            }
            Node::Exit { value, .. } => collect_calls(value, out),
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn single(src: &str) -> Workspace {
        let parsed = parse::parse_file(&scan(src)).expect("parse");
        Workspace::from_single("crates/core/src/x.rs", parsed)
    }

    #[test]
    fn bare_calls_resolve_same_file_and_collectives_are_terminal() {
        let ws = single(
            "fn helper<C: Comm>(comm: &C) { comm.barrier(); }\n\
             pub fn entry<C: Comm>(comm: &C) { helper(comm); comm.allgather(vec![1u64]); }\n",
        );
        let entry = ws.find_fn("core", None, "entry").expect("entry");
        let caller = ws.fn_item(entry);
        let calls = ws.calls_of(entry);
        let r0 = ws.resolve(entry.0, caller, calls[0]);
        assert!(matches!(&r0, Resolution::Fns(c) if c.len() == 1), "{r0:?}");
        let r1 = ws.resolve(entry.0, caller, calls[1]);
        assert!(matches!(&r1, Resolution::Collective(k) if k == "allgather"), "{r1:?}");
    }

    #[test]
    fn self_qualified_calls_resolve_to_the_impl() {
        let ws = single(
            "pub struct Planner;\nimpl Planner {\n    pub fn try_solve(&self) -> u8 { 1 }\n    \
             pub fn solve(&self) -> u8 { Self::try_solve(self) }\n}\n",
        );
        let solve = ws.find_fn("core", Some("Planner"), "solve").expect("solve");
        let caller = ws.fn_item(solve);
        let calls = ws.calls_of(solve);
        let r = ws.resolve(solve.0, caller, calls[0]);
        assert!(
            matches!(&r, Resolution::Fns(c) if c.len() == 1 && ws.fn_label(c[0]).ends_with("Planner::try_solve")),
            "{r:?}"
        );
    }

    #[test]
    fn unknown_calls_are_honestly_unresolved_and_dot_renders() {
        let ws = single("pub fn entry(v: &[u64]) -> u64 { mystery(v) }\n");
        let entry = ws.find_fn("core", None, "entry").expect("entry");
        let r = ws.resolve(entry.0, ws.fn_item(entry), ws.calls_of(entry)[0]);
        assert!(matches!(&r, Resolution::Unresolved(n) if n == "mystery"), "{r:?}");
        let dot = ws.dot(&[entry]);
        assert!(dot.contains("digraph") && dot.contains("style=dashed"), "{dot}");
    }
}
