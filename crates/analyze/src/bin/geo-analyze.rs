//! `geo-analyze` — run the workspace invariant analyzer from the CLI.
//!
//! ```text
//! geo-analyze [--root DIR]          check every workspace .rs file (rules D1–D6)
//! geo-analyze bench-schema [--root DIR]
//!                                   validate committed BENCH_*.json baselines
//! geo-analyze --list                print the rule catalog
//! ```
//!
//! Exit status 0 = clean, 1 = violations, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use geographer_analyze::{analyze_workspace, rules, schema};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut bench_schema = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "bench-schema" => bench_schema = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for (id, what) in rules::RULES {
                    println!("{id:24} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: geo-analyze [--root DIR]            analyze workspace sources\n\
                     \x20      geo-analyze bench-schema [--root DIR]  validate BENCH_*.json\n\
                     \x20      geo-analyze --list                 print the rule catalog"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if bench_schema {
        return match schema::check_bench_dir(&root) {
            Ok(errs) if errs.is_empty() => {
                println!("bench-schema: all committed BENCH_*.json baselines conform");
                ExitCode::SUCCESS
            }
            Ok(errs) => {
                for e in &errs {
                    eprintln!("{e}");
                }
                eprintln!("bench-schema: {} problem(s)", errs.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("bench-schema: cannot read {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    match analyze_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("geo-analyze: workspace clean (rules D1-D6, zero unwaived violations)");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("geo-analyze: {} unwaived violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("geo-analyze: cannot read workspace at {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
