//! `geo-analyze` — run the workspace invariant analyzer from the CLI.
//!
//! ```text
//! geo-analyze [--root DIR]          check every workspace .rs file (rules D1–D10)
//! geo-analyze bench-schema [--root DIR]
//!                                   validate committed BENCH_*.json baselines
//! geo-analyze protocol [--root DIR] [--format json] [--dot PATH]
//!                                   summarize per-entry-point collective protocols
//! geo-analyze --list                print the rule catalog
//! ```
//!
//! Exit status 0 = clean, 1 = violations, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use geographer_analyze::{analyze_workspace, callgraph, protocol, rules, schema};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut bench_schema = false;
    let mut proto_mode = false;
    let mut format = String::from("text");
    let mut dot_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "bench-schema" => bench_schema = true,
            "protocol" => proto_mode = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next() {
                Some(f) if f == "json" || f == "text" => format = f,
                _ => {
                    eprintln!("--format needs `json` or `text`");
                    return ExitCode::from(2);
                }
            },
            "--dot" => match args.next() {
                Some(p) => dot_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--dot needs an output path");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for (id, what) in rules::RULES {
                    println!("{id:24} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: geo-analyze [--root DIR]            analyze workspace sources\n\
                     \x20      geo-analyze bench-schema [--root DIR]  validate BENCH_*.json\n\
                     \x20      geo-analyze protocol [--root DIR] [--format json] [--dot PATH]\n\
                     \x20                                         summarize entry-point protocols\n\
                     \x20      geo-analyze --list                 print the rule catalog"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if proto_mode {
        let ws = match callgraph::Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("protocol: cannot read workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let entries = protocol::entry_summaries(&ws);
        if entries.is_empty() {
            eprintln!("protocol: no entry points found under {}", root.display());
            return ExitCode::FAILURE;
        }
        if let Some(p) = &dot_path {
            let ids: Vec<_> = entries.iter().map(|e| e.id).collect();
            if let Err(e) = std::fs::write(p, ws.dot(&ids)) {
                eprintln!("protocol: cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
        if format == "json" {
            print!("{}", protocol::summaries_json(&entries));
        } else {
            for e in &entries {
                println!("{}", e.name);
                println!("  protocol:   {}", protocol::key(&e.proto));
                if e.unresolved.is_empty() {
                    println!("  unresolved: (none)");
                } else {
                    println!("  unresolved: {}", e.unresolved.join(", "));
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    if bench_schema {
        let docs = schema::check_bench_docs(&root);
        return match schema::check_bench_dir(&root).and_then(|mut errs| {
            errs.extend(docs?);
            Ok(errs)
        }) {
            Ok(errs) if errs.is_empty() => {
                println!("bench-schema: all committed BENCH_*.json baselines conform");
                ExitCode::SUCCESS
            }
            Ok(errs) => {
                for e in &errs {
                    eprintln!("{e}");
                }
                eprintln!("bench-schema: {} problem(s)", errs.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("bench-schema: cannot read {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    match analyze_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("geo-analyze: workspace clean (rules D1-D10, zero unwaived violations)");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("geo-analyze: {} unwaived violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("geo-analyze: cannot read workspace at {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
