//! A hand-rolled Rust source scanner: splits every line into the text
//! that is *code* and the text that is *comment*, with string/char-literal
//! contents blanked out so rule patterns never match inside literals.
//!
//! This is deliberately not a parser. The invariant rules (see
//! [`crate::rules`]) are token-level properties — "this file mentions
//! `HashMap`", "this `unsafe` has no `SAFETY:` comment nearby" — and a
//! line-oriented code/comment split plus `#[cfg(test)]` span tracking is
//! exactly enough to check them without dragging a Rust grammar into a
//! dependency-free crate. The scanner handles the lexical constructs that
//! would otherwise cause false positives: line and nested block comments,
//! string / raw-string / byte-string literals, char literals vs.
//! lifetimes, and escapes.

/// One source line after scanning.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code text, with comments removed and the *contents* of
    /// string and char literals blanked (delimiters kept, so code shape
    /// survives: `foo("HashMap")` scans as `foo("")`).
    pub code: String,
    /// The line's comment text (contents of `//`, `///`, `//!`, and the
    /// part of any `/* */` on this line), concatenated.
    pub comment: String,
    /// True if the line is inside a `#[cfg(test)]` module.
    pub in_cfg_test: bool,
}

impl Line {
    /// Whether the line has any code (not only whitespace).
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

/// Scanner state between characters.
enum State {
    Code,
    LineComment,
    /// Nested depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside a `"…"` string; bool = previous char was a backslash.
    Str(bool),
    /// Inside a raw string; the number of `#` in the closing delimiter.
    RawStr(u32),
    /// Inside a `'…'` char literal; bool = previous char was a backslash.
    CharLit(bool),
}

/// Split `text` into per-line code/comment views. `in_cfg_test` is filled
/// by a second pass ([`mark_cfg_test_spans`]), which this function calls.
pub fn scan(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment = state {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str(false);
                    i += 1;
                    continue;
                }
                // Raw (and raw-byte) strings: r"…", r#"…"#, br"…", …
                // Only when `r`/`b` does not continue an identifier.
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, skip)) = raw_string_open(&chars, i) {
                        for k in 0..skip {
                            cur.code.push(chars[i + k]);
                        }
                        i += skip;
                        state = State::RawStr(hashes);
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal or lifetime? A literal is '\…' or 'x'
                    // followed by a closing quote; anything else ('a in
                    // generics, 'static) is a lifetime.
                    if next == Some('\\')
                        || (chars.get(i + 2).copied() == Some('\'') && next != Some('\''))
                    {
                        cur.code.push('\'');
                        state = State::CharLit(false);
                        i += 1;
                        continue;
                    }
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    cur.code.push('"');
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if c == '\\' {
                    state = State::CharLit(true);
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    lines.push(cur);
    mark_cfg_test_spans(&mut lines);
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If a raw string opens at `i` (`r`/`br` + hashes + `"`), return the hash
/// count and the delimiter length to consume (including the quote).
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j).copied() != Some('r') {
            return None;
        }
    }
    if chars.get(j).copied() != Some('r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j).copied() == Some('"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Whether the quote at `i` closes a raw string with `hashes` hashes.
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|d| chars.get(i + d).copied() == Some('#'))
}

/// Mark every line inside a `#[cfg(test)] mod … { … }` span. Inline test
/// modules are the only shape the workspace uses; integration-test *files*
/// are exempted by path in [`crate::analyze_file`].
fn mark_cfg_test_spans(lines: &mut [Line]) {
    let mut l = 0usize;
    while l < lines.len() {
        if lines[l].code.contains("#[cfg(test)]") || lines[l].code.contains("#[cfg(all(test") {
            // Find the module's opening brace, then brace-match to the end.
            if let Some((open_line, open_col)) = find_mod_open(lines, l) {
                if let Some(close_line) = match_brace(lines, open_line, open_col) {
                    for line in lines.iter_mut().take(close_line + 1).skip(l) {
                        line.in_cfg_test = true;
                    }
                    l = close_line + 1;
                    continue;
                }
            }
        }
        l += 1;
    }
}

/// Names of out-of-line `#[cfg(test)] mod name;` modules declared in this
/// file. Their bodies live in sibling *files*, outside the span marker's
/// reach — the workspace walk analyzes those files as test code.
pub fn out_of_line_test_mods(lines: &[Line]) -> Vec<String> {
    let mut out = Vec::new();
    for (l, line) in lines.iter().enumerate() {
        if !(line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test")) {
            continue;
        }
        for (k, follow) in lines.iter().enumerate().skip(l) {
            if follow.code.contains('{') {
                break; // inline module or fn: spanned, not out-of-line
            }
            if let Some(at) = find_token(&follow.code, "mod") {
                let rest = follow.code[at + "mod".len()..].trim_start();
                let name: String =
                    rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                if !name.is_empty() && rest[name.len()..].trim_start().starts_with(';') {
                    out.push(name);
                }
                break;
            }
            // Some other `;`-terminated item under the attribute.
            if k > l && follow.code.contains(';') {
                break;
            }
        }
    }
    out
}

/// From the attribute at `attr_line`, find the `{` that opens the guarded
/// item (skipping further attribute lines).
fn find_mod_open(lines: &[Line], attr_line: usize) -> Option<(usize, usize)> {
    for (l, line) in lines.iter().enumerate().skip(attr_line) {
        if let Some(col) = line.code.find('{') {
            return Some((l, col));
        }
        // A `mod name;` out-of-line test module: nothing to span here.
        if l > attr_line && line.code.contains(';') && line.code.contains("mod ") {
            return None;
        }
    }
    None
}

/// Given an opening `{` at (line, col) in code text, return the line of
/// its matching `}`.
pub fn match_brace(lines: &[Line], open_line: usize, open_col: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (l, line) in lines.iter().enumerate().skip(open_line) {
        let start = if l == open_line { open_col } else { 0 };
        for c in line.code[start.min(line.code.len())..].chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(l);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Given an opening `(` at (line, col) in code text, return the line of
/// its matching `)`.
pub fn match_paren(lines: &[Line], open_line: usize, open_col: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (l, line) in lines.iter().enumerate().skip(open_line) {
        let start = if l == open_line { open_col } else { 0 };
        for c in line.code[start.min(line.code.len())..].chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(l);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Whether `code` contains `ident` as a whole token (not as a substring of
/// a longer identifier).
pub fn has_token(code: &str, ident: &str) -> bool {
    find_token(code, ident).is_some()
}

/// Byte offset of the first whole-token occurrence of `ident` in `code`.
pub fn find_token(code: &str, ident: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + ident.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + ident.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let lines = scan("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert_eq!(lines[1].code.trim(), "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = scan(r#"let s = "HashMap::new()"; let t = 'H';"#);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains(r#""""#), "delimiters kept: {}", lines[0].code);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = "let a = r#\"// not a comment HashSet\"#;\nlet b = \"esc \\\" HashSet\";\nHashSet::new();";
        let lines = scan(src);
        assert!(!lines[0].code.contains("HashSet"));
        assert!(!lines[1].code.contains("HashSet"));
        assert!(has_token(&lines[2].code, "HashSet"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = scan("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }");
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains('x') || lines[0].code.contains("x:"), "{}", lines[0].code);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = scan("a(); /* outer /* inner */ still comment\nmore comment */ b();");
        assert_eq!(lines[0].code.trim(), "a();");
        assert!(lines[0].comment.contains("inner"));
        assert!(lines[1].comment.contains("more comment"));
        assert_eq!(lines[1].code.trim(), "b();");
    }

    #[test]
    fn cfg_test_spans_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { panic!() }\n}\nfn after() {}";
        let lines = scan(src);
        assert!(!lines[0].in_cfg_test);
        assert!(lines[1].in_cfg_test && lines[2].in_cfg_test && lines[3].in_cfg_test);
        assert!(lines[4].in_cfg_test);
        assert!(!lines[5].in_cfg_test);
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("run_spmd(p, f)", "run_spmd"));
        assert!(!has_token("run_spmd_proc(p, f)", "run_spmd"));
        assert!(has_token("x.unwrap()", "unwrap"));
        assert!(!has_token("x.unwrap_or_else(y)", "unwrap"));
    }

    #[test]
    fn brace_and_paren_matching() {
        let lines = scan("foo(a, (b), {\n  c();\n});\nbar();");
        let col = lines[0].code.find('(').unwrap();
        assert_eq!(match_paren(&lines, 0, col), Some(2));
    }
}
