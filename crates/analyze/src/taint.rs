//! Rank-taint dataflow (rules D7 and D9): values derived from
//! `comm.rank()` / `rank` parameters propagate through `let` bindings,
//! arithmetic, and assignments; collectives must not be *guarded* by a
//! tainted condition (D7 — every rank must reach the call) and their
//! buffer lengths / roots must not be tainted (D9 — the silent
//! zip-truncate class `CheckedComm` catches at runtime).
//!
//! The analysis is intraprocedural and deliberately conservative in both
//! directions where the paper's protocol demands it:
//!
//! * **Laundering**: results of the replicated collectives (`allreduce*`,
//!   `allgather`, `broadcast`) are rank-*independent* even when their
//!   inputs are tainted — their argument spans are masked, so
//!   `comm.allreduce(local_flag, …) == 1` never taints a guard.
//! * **Rank-valued collectives**: `exscan_sum_u64` and `alltoallv`
//!   results differ per rank and seed taint.
//! * Branches and loops with tainted conditions poison everything they
//!   dominate (including statements after a tainted `return`/`break`),
//!   and the tainted condition set is exported for the D8 protocol check.
//!
//! Two passes over each fn reach a fixpoint for loop-carried taint: the
//! first only propagates, the second also emits diagnostics.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::parse::{extract_calls, CallSite, ExitKind, FnItem, Node, Segment, Tok, TokKind};
use crate::Violation;

/// The `Comm` collective method names — terminals of the protocol rules.
pub const COLLECTIVES: &[&str] = &[
    "barrier",
    "allgather",
    "alltoallv",
    "allreduce",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allreduce_min_f64",
    "allreduce_sum_u64",
    "exscan_sum_u64",
    "broadcast",
];

/// Collectives whose results are replicated across ranks: their argument
/// spans launder taint.
const LAUNDERING: &[&str] = &[
    "allreduce",
    "allreduce_sum_f64",
    "allreduce_max_f64",
    "allreduce_min_f64",
    "allreduce_sum_u64",
    "allgather",
    "broadcast",
];

/// Collectives whose results are rank-dependent: they seed taint.
const RANK_VALUED: &[&str] = &["exscan_sum_u64", "alltoallv"];

/// Typed buffer collectives: D9 checks `args[0]` for length taint.
const LEN_CHECKED: &[&str] =
    &["allreduce_sum_f64", "allreduce_max_f64", "allreduce_min_f64", "allreduce_sum_u64", "alltoallv"];

/// The result of taint-analyzing one fn.
#[derive(Debug, Default)]
pub struct FnTaint {
    /// D7 (`rank-tainted-guard`) and D9 (`rank-tainted-length`) hits.
    pub violations: Vec<Violation>,
    /// Uids of `If`/`Loop`/`Match` nodes whose condition is rank-tainted
    /// (consumed by the D8 protocol-divergence check).
    pub tainted_conds: BTreeSet<u32>,
}

/// Run the rank-taint dataflow over one fn body.
pub fn analyze_fn(path: &str, f: &FnItem, toks: &[Tok]) -> FnTaint {
    let mut t = Taint {
        toks,
        path,
        val: BTreeSet::new(),
        len: BTreeSet::new(),
        conds: BTreeSet::new(),
        out: Vec::new(),
        ctx: 0,
        poisoned: false,
        loop_poison: Vec::new(),
        emit: false,
    };
    for p in &f.params {
        if p == "rank" || p.ends_with("_rank") || p.starts_with("rank_") {
            t.val.insert(p.clone());
        }
    }
    // Pass 1 propagates only (loop-carried taint reaches a fixpoint for
    // the straight-line binding chains this codebase uses); pass 2 emits.
    t.walk(&f.body);
    t.ctx = 0;
    t.poisoned = false;
    t.loop_poison.clear();
    t.emit = true;
    t.walk(&f.body);
    FnTaint { violations: t.out, tainted_conds: t.conds }
}

struct Taint<'a> {
    toks: &'a [Tok],
    path: &'a str,
    /// Value-tainted variable names.
    val: BTreeSet<String>,
    /// Length-tainted variable names.
    len: BTreeSet<String>,
    conds: BTreeSet<u32>,
    out: Vec<Violation>,
    /// Nesting depth of tainted branches/loops.
    ctx: u32,
    /// A tainted `return` happened: the rest of the fn is rank-dependent.
    poisoned: bool,
    /// Per enclosing loop: a tainted `break`/`continue` happened.
    loop_poison: Vec<bool>,
    emit: bool,
}

impl<'a> Taint<'a> {
    fn tainted_ctx(&self) -> bool {
        self.ctx > 0 || self.poisoned || self.loop_poison.iter().any(|b| *b)
    }

    fn walk(&mut self, nodes: &[Node]) {
        for n in nodes {
            self.node(n);
        }
    }

    fn node(&mut self, n: &Node) {
        match n {
            Node::Seg(seg) => self.segment(seg),
            Node::Block(b) => self.walk(b),
            Node::Let { binds, arity, init, else_b, .. } => {
                self.walk(init);
                self.bind_let(binds, *arity, init);
                // let-else diverges; its block runs only on pattern
                // mismatch — same ctx.
                self.walk(else_b);
            }
            Node::If { uid, cond, binds, then_b, else_b, .. } => {
                self.walk(cond);
                let tainted = self.nodes_taint(cond);
                if tainted {
                    self.conds.insert(*uid);
                    for b in binds {
                        self.val.insert(b.clone());
                    }
                }
                if tainted {
                    self.ctx += 1;
                }
                self.walk(then_b);
                self.walk(else_b);
                if tainted {
                    self.ctx -= 1;
                }
            }
            Node::Loop { uid, cond, binds, body, .. } => {
                self.walk(cond);
                let tainted = self.nodes_taint(cond);
                if tainted {
                    self.conds.insert(*uid);
                    for b in binds {
                        self.val.insert(b.clone());
                    }
                }
                if tainted {
                    self.ctx += 1;
                }
                self.loop_poison.push(false);
                self.walk(body);
                self.loop_poison.pop();
                if tainted {
                    self.ctx -= 1;
                }
            }
            Node::Match { uid, scrutinee, arms, .. } => {
                self.walk(scrutinee);
                let scrut = self.nodes_taint(scrutinee);
                let mut tainted = scrut;
                for a in arms {
                    self.walk(&a.guard);
                    if self.nodes_taint(&a.guard) {
                        tainted = true;
                    }
                }
                if tainted {
                    self.conds.insert(*uid);
                }
                if tainted {
                    self.ctx += 1;
                }
                for a in arms {
                    if scrut {
                        for b in &a.binds {
                            self.val.insert(b.clone());
                        }
                    }
                    self.walk(&a.body);
                }
                if tainted {
                    self.ctx -= 1;
                }
            }
            Node::Exit { kind, value, .. } => {
                self.walk(value);
                if self.tainted_ctx() {
                    match kind {
                        ExitKind::Return => self.poisoned = true,
                        ExitKind::Break | ExitKind::Continue => {
                            if let Some(top) = self.loop_poison.last_mut() {
                                *top = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Value taint of an expression subtree: its value-position segments
    /// (conditions/scrutinees/guards of nested control are control, not
    /// value, and are excluded).
    fn nodes_taint(&self, nodes: &[Node]) -> bool {
        let mut segs = Vec::new();
        value_segments(nodes, &mut segs);
        segs.iter().any(|s| self.expr_taint(s.toks.clone()))
    }

    /// One flat expression segment: collective checks (D7/D9) and
    /// assignment/mutation tracking.
    fn segment(&mut self, seg: &Segment) {
        for c in &seg.calls {
            if c.is_method && COLLECTIVES.contains(&c.name.as_str()) {
                self.check_collective(c);
            }
            self.mutation(c);
        }
        // Plain assignment `x = …` / `x op= …`: retaint the target.
        let r = seg.toks.clone();
        if r.len() >= 2 && self.toks[r.start].kind == TokKind::Ident {
            let op = &self.toks[r.start + 1].text;
            let is_assign = op == "="
                || matches!(
                    op.as_str(),
                    "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                );
            if is_assign {
                let name = self.toks[r.start].text.clone();
                let rhs = r.start + 2..r.end;
                if self.expr_taint(rhs.clone()) || self.tainted_ctx() {
                    self.val.insert(name.clone());
                }
                if self.len_taint(rhs) {
                    self.len.insert(name);
                }
            }
        }
    }

    /// Length-affecting method calls: growth under a tainted context (or
    /// with a tainted size argument) makes the receiver length-tainted.
    fn mutation(&mut self, c: &CallSite) {
        if !c.is_method || c.tok < 2 {
            return;
        }
        let recv_at = c.tok - 2;
        if !self.toks[c.tok - 1].is_dot() || self.toks[recv_at].kind != TokKind::Ident {
            return;
        }
        let recv = self.toks[recv_at].text.clone();
        match c.name.as_str() {
            "push" | "extend" | "append" | "insert" | "split_off" | "pop" | "remove"
                if self.tainted_ctx() =>
            {
                self.len.insert(recv);
            }
            "resize" | "truncate" => {
                let arg_tainted =
                    c.args.first().is_some_and(|a| self.expr_taint(a.clone()));
                if self.tainted_ctx() || arg_tainted {
                    self.len.insert(recv);
                }
            }
            _ => {}
        }
    }

    fn check_collective(&mut self, c: &CallSite) {
        if self.emit && self.tainted_ctx() {
            self.out.push(Violation::new(
                self.path,
                c.line,
                "rank-tainted-guard",
                format!(
                    "collective `{}` is dominated by a rank-tainted branch or loop \
                     condition: ranks that skip it strand their peers (DESIGN.md §12)",
                    c.name
                ),
            ));
        }
        if self.emit {
            let bad_len = LEN_CHECKED.contains(&c.name.as_str())
                && c.args.first().is_some_and(|a| self.len_taint(a.clone()));
            let bad_root = c.name == "broadcast"
                && c.args.first().is_some_and(|a| self.expr_taint(a.clone()));
            if bad_len || bad_root {
                let what = if bad_root { "root" } else { "buffer length" };
                self.out.push(Violation::new(
                    self.path,
                    c.line,
                    "rank-tainted-length",
                    format!(
                        "collective `{}` has a rank-tainted {what}: ranks would disagree \
                         on the exchange shape (DESIGN.md §12)",
                        c.name
                    ),
                ));
            }
        }
    }

    /// Bind a `let`: tuple-aware when the pattern arity matches a
    /// parenthesized tuple initializer, so
    /// `let (p, r) = (comm.size(), comm.rank())` taints only `r`.
    fn bind_let(&mut self, binds: &[String], arity: Option<usize>, init: &[Node]) {
        if init.is_empty() || binds.is_empty() {
            return;
        }
        if let (Some(n), [Node::Seg(seg)]) = (arity, init) {
            if binds.len() == n {
                if let Some(parts) = tuple_parts(self.toks, seg.toks.clone(), n) {
                    for (b, part) in binds.iter().zip(parts) {
                        if self.expr_taint(part.clone()) || self.tainted_ctx() {
                            self.val.insert(b.clone());
                        }
                        if self.init_len_taint(part) {
                            self.len.insert(b.clone());
                        }
                    }
                    return;
                }
            }
        }
        let mut segs = Vec::new();
        value_segments(init, &mut segs);
        let tainted =
            segs.iter().any(|s| self.expr_taint(s.toks.clone())) || self.tainted_ctx();
        let len = segs.iter().any(|s| self.init_len_taint(s.toks.clone()));
        for b in binds {
            if tainted {
                self.val.insert(b.clone());
            }
            if len {
                self.len.insert(b.clone());
            }
        }
    }

    /// Length taint of a `let` initializer. `vec![v; n]` is length-tainted
    /// only through `n` (its *contents* being rank-dependent is fine — the
    /// whole point of an allreduce); fresh `Vec::new`/`with_capacity`
    /// start untainted; everything else inherits [`Self::len_taint`].
    fn init_len_taint(&self, r: Range<usize>) -> bool {
        let calls = extract_calls(self.toks, r.clone());
        if let Some(v) = calls.iter().find(|c| c.is_macro && c.name == "vec") {
            return match v.args.len() {
                2 => self.expr_taint(v.args[1].clone()),
                _ => false,
            };
        }
        if calls.iter().any(|c| {
            matches!(c.name.as_str(), "new" | "with_capacity" | "default")
                && c.qual.last().is_some_and(|q| q == "Vec")
        }) {
            return false;
        }
        self.len_taint(r)
    }

    /// Value taint of an expression range: a tainted identifier, a
    /// `.rank()` call, or a rank-valued collective — with the argument
    /// spans of laundering collectives masked out.
    fn expr_taint(&self, r: Range<usize>) -> bool {
        let calls = extract_calls(self.toks, r.clone());
        let mut masked: Vec<Range<usize>> = Vec::new();
        for c in &calls {
            if c.is_method && LAUNDERING.contains(&c.name.as_str()) {
                for a in &c.args {
                    masked.push(a.clone());
                }
            }
        }
        let is_masked = |pos: usize| masked.iter().any(|m| m.contains(&pos));
        for c in &calls {
            if c.is_method
                && !is_masked(c.tok)
                && (c.name == "rank" || RANK_VALUED.contains(&c.name.as_str()))
            {
                return true;
            }
        }
        for k in r.clone() {
            let t = &self.toks[k];
            if t.kind == TokKind::Ident && !is_masked(k) && self.val.contains(&t.text) {
                // Field accesses (`x.rank_field`) and method names are
                // position-checked: a tainted *variable* is an ident not
                // preceded by `.` or `::`.
                let prev = k.checked_sub(1).map(|p| self.toks[p].text.as_str());
                if prev != Some(".") && prev != Some("::") {
                    return true;
                }
            }
        }
        false
    }

    /// Length taint of an expression range: a length-tainted identifier,
    /// or a slice with a value-tainted bound (`&xs[lo..hi]`).
    fn len_taint(&self, r: Range<usize>) -> bool {
        for k in r.clone() {
            let t = &self.toks[k];
            if t.kind == TokKind::Ident && self.len.contains(&t.text) {
                let prev = k.checked_sub(1).map(|p| self.toks[p].text.as_str());
                if prev != Some(".") && prev != Some("::") {
                    return true;
                }
            }
            if t.text == "[" && t.kind == TokKind::Punct {
                let close = match_sq(self.toks, k, r.end);
                let inner = k + 1..close;
                let has_range = inner.clone().any(|i| {
                    let s = self.toks[i].text.as_str();
                    s == ".." || s == "..="
                });
                if has_range && self.expr_taint(inner) {
                    return true;
                }
            }
        }
        false
    }
}

impl Tok {
    fn is_dot(&self) -> bool {
        self.kind == TokKind::Punct && self.text == "."
    }
}

/// Matching `]` for the `[` at `open` (clamped to `end`).
fn match_sq(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        match toks[k].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    end
}

/// If `toks[r]` is exactly `( e1, …, en )` with `n` top-level parts,
/// return the part ranges.
fn tuple_parts(toks: &[Tok], r: Range<usize>, n: usize) -> Option<Vec<Range<usize>>> {
    if r.is_empty() || toks[r.start].text != "(" {
        return None;
    }
    let close = {
        let mut depth = 0i32;
        let mut at = None;
        for k in r.clone() {
            match toks[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        at = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        at?
    };
    if close + 1 != r.end {
        return None; // trailing tokens: not a bare tuple
    }
    let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
    let mut parts = Vec::new();
    let mut start = r.start + 1;
    for (k, t) in toks.iter().enumerate().take(close).skip(r.start + 1) {
        match t.text.as_str() {
            "(" => p += 1,
            ")" => p -= 1,
            "[" => b += 1,
            "]" => b -= 1,
            "{" => c += 1,
            "}" => c -= 1,
            "," if p == 0 && b == 0 && c == 0 => {
                parts.push(start..k);
                start = k + 1;
            }
            _ => {}
        }
    }
    parts.push(start..close);
    (parts.len() == n).then_some(parts)
}

/// Collect the value-position segments of an expression subtree, skipping
/// conditions, scrutinees, and guards (control positions).
fn value_segments<'n>(nodes: &'n [Node], out: &mut Vec<&'n Segment>) {
    for n in nodes {
        match n {
            Node::Seg(s) => out.push(s),
            Node::Block(b) => value_segments(b, out),
            Node::Let { init, else_b, .. } => {
                value_segments(init, out);
                value_segments(else_b, out);
            }
            Node::If { then_b, else_b, .. } => {
                value_segments(then_b, out);
                value_segments(else_b, out);
            }
            Node::Loop { body, .. } => value_segments(body, out),
            Node::Match { arms, .. } => {
                for a in arms {
                    value_segments(&a.body, out);
                }
            }
            Node::Exit { value, .. } => value_segments(value, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::scan;

    fn run(src: &str) -> FnTaint {
        let lines = scan(src);
        let parsed = parse_file(&lines).expect("parse");
        let f = parsed.fns.first().expect("one fn");
        analyze_fn("crates/core/src/x.rs", f, &parsed.toks)
    }

    #[test]
    fn rank_guard_on_collective_fires_d7() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    if comm.rank() == 0 {\n        comm.barrier();\n    }\n}\n",
        );
        assert_eq!(t.violations.len(), 1, "{:?}", t.violations);
        assert_eq!((t.violations[0].line, t.violations[0].rule), (3, "rank-tainted-guard"));
        assert_eq!(t.tainted_conds.len(), 1);
    }

    #[test]
    fn taint_propagates_through_lets_and_arithmetic() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let r = comm.rank();\n    let half = r / 2 + 1;\n    \
             while half > 0 {\n        comm.barrier();\n    }\n}\n",
        );
        assert!(t.violations.iter().any(|v| v.line == 5 && v.rule == "rank-tainted-guard"));
    }

    #[test]
    fn allreduce_launders_tainted_inputs() {
        let t = run(
            "fn f<C: Comm>(comm: &C, local_full: u64) {\n    \
             let all_full = comm.allreduce(local_full + comm.rank() as u64, u64::min) == 1;\n    \
             if all_full {\n        comm.barrier();\n    }\n}\n",
        );
        assert!(t.violations.is_empty(), "{:?}", t.violations);
    }

    #[test]
    fn exscan_result_is_rank_valued() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let start = comm.exscan_sum_u64(4);\n    \
             if start > 0 {\n        comm.barrier();\n    }\n}\n",
        );
        assert!(t.violations.iter().any(|v| v.line == 4 && v.rule == "rank-tainted-guard"));
    }

    #[test]
    fn tuple_let_taints_only_the_rank_component() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let (p, r) = (comm.size(), comm.rank());\n    \
             if p > 1 {\n        comm.barrier();\n    }\n    if r > 0 {\n        comm.barrier();\n    }\n}\n",
        );
        assert_eq!(t.violations.len(), 1, "{:?}", t.violations);
        assert_eq!(t.violations[0].line, 7);
    }

    #[test]
    fn vec_of_rank_values_is_not_length_tainted() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let mut buf = vec![comm.rank() as f64 + 0.5; 1024];\n    \
             comm.allreduce_sum_f64(&mut buf);\n}\n",
        );
        assert!(t.violations.is_empty(), "{:?}", t.violations);
    }

    #[test]
    fn rank_sized_vec_fires_d9() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let n = comm.rank() + 1;\n    \
             let mut buf = vec![0.0; n];\n    comm.allreduce_sum_f64(&mut buf);\n}\n",
        );
        assert!(
            t.violations.iter().any(|v| v.line == 4 && v.rule == "rank-tainted-length"),
            "{:?}",
            t.violations
        );
    }

    #[test]
    fn tainted_slice_bounds_fire_d9() {
        let t = run(
            "fn f<C: Comm>(comm: &C, xs: &mut [f64]) {\n    let r = comm.rank();\n    \
             let lo = r * 4;\n    comm.allreduce_sum_f64(&mut xs[lo..lo + 4]);\n}\n",
        );
        assert!(
            t.violations.iter().any(|v| v.line == 4 && v.rule == "rank-tainted-length"),
            "{:?}",
            t.violations
        );
    }

    #[test]
    fn tainted_broadcast_root_fires_d9() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let r = comm.rank();\n    \
             let _v: u64 = comm.broadcast(r, Some(1));\n}\n",
        );
        assert!(
            t.violations.iter().any(|v| v.line == 3 && v.rule == "rank-tainted-length"),
            "{:?}",
            t.violations
        );
    }

    #[test]
    fn growth_under_tainted_branch_length_taints() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    let mut mine = Vec::new();\n    \
             if comm.rank() == 0 {\n        mine.push(1u64);\n    }\n    \
             comm.allreduce_sum_u64(&mut mine);\n}\n",
        );
        assert!(
            t.violations.iter().any(|v| v.line == 6 && v.rule == "rank-tainted-length"),
            "{:?}",
            t.violations
        );
    }

    #[test]
    fn tainted_return_poisons_the_rest_of_the_fn() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    if comm.rank() > 0 {\n        return;\n    }\n    \
             comm.barrier();\n}\n",
        );
        assert!(
            t.violations.iter().any(|v| v.line == 5 && v.rule == "rank-tainted-guard"),
            "{:?}",
            t.violations
        );
    }

    #[test]
    fn tainted_break_poisons_the_rest_of_the_loop() {
        let t = run(
            "fn f<C: Comm>(comm: &C) {\n    for i in 0..4 {\n        if comm.rank() == i {\n            break;\n        }\n        comm.barrier();\n    }\n}\n",
        );
        assert!(
            t.violations.iter().any(|v| v.line == 6 && v.rule == "rank-tainted-guard"),
            "{:?}",
            t.violations
        );
    }

    #[test]
    fn params_named_rank_seed_taint() {
        let t = run(
            "fn f<C: Comm>(comm: &C, my_rank: usize) {\n    if my_rank == 0 {\n        comm.barrier();\n    }\n}\n",
        );
        assert!(t.violations.iter().any(|v| v.line == 3), "{:?}", t.violations);
    }

    #[test]
    fn untainted_collectives_in_loops_are_fine() {
        let t = run(
            "fn f<C: Comm>(comm: &C, iters: usize) {\n    for _ in 0..iters {\n        \
             comm.barrier();\n        let mut s = vec![0.0; 8];\n        \
             comm.allreduce_sum_f64(&mut s);\n    }\n}\n",
        );
        assert!(t.violations.is_empty(), "{:?}", t.violations);
    }
}
