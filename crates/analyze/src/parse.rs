//! A token/expression layer on top of the [`crate::scan`] lexer: a small
//! hand-rolled Rust parser subset, good enough for fn items, method calls,
//! `if`/`match`/`while`/`for` heads, and `let` bindings — the shapes the
//! dataflow rules (D7–D10, see [`crate::taint`] and [`crate::protocol`])
//! need. It is deliberately tolerant: unknown constructs are consumed into
//! flat expression segments rather than rejected, macro bodies and closure
//! bodies are flattened (calls inside them are still extracted, their
//! control flow is not modeled), and parsing never panics — malformed
//! input yields `Err(ParseErr)`, which callers treat as "fall back to the
//! lexer-level view".

use std::ops::Range;

use crate::scan::Line;

/// Token classes. String/char contents arrive already blanked by the
/// scanner, so `Str` is always `""` (or a lone `"`) and `Char` is `''`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Num,
    Str,
    Char,
    Punct,
}

/// One token, with its 1-based line and byte column in the blanked code.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Tok {
    fn is(&self, text: &str) -> bool {
        self.text == text
    }
    fn is_kw(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// A parse failure: the line it was detected on and why. Callers fall back
/// to lexer-level analysis; the tolerance sweep test asserts this never
/// happens on workspace sources.
#[derive(Debug, Clone)]
pub struct ParseErr {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// One parsed source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub toks: Vec<Tok>,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplBlock>,
    pub uses: Vec<UseImport>,
}

/// A fn item with a parsed body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing impl self-type or trait name, if any.
    pub qual: Option<String>,
    /// Binding identifiers of the parameters (pattern side only).
    pub params: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub body: Vec<Node>,
    /// Inside `#[cfg(test)]` / carries a `#[test]`-ish attribute.
    pub is_test: bool,
}

/// An `impl` block or `trait` declaration (trait decls carry default
/// method bodies, which matter for call resolution).
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// `impl Trait for Type` → the trait path's last segment.
    pub trait_name: Option<String>,
    /// The self type's last path segment (or the trait name for decls).
    pub self_ty: String,
    pub start_line: usize,
    pub end_line: usize,
    pub is_trait_decl: bool,
}

/// One `use` leaf: `name` (or alias, or `*`) importable in this file,
/// rooted at path segment `root` (`crate`, `std`, a crate name, …).
#[derive(Debug, Clone)]
pub struct UseImport {
    pub name: String,
    pub root: String,
}

/// Statement/expression tree. Segments are flat token runs with their
/// call sites pre-extracted; control shapes get dedicated nodes so the
/// dataflow passes can reason about branches and loops.
#[derive(Debug, Clone)]
pub enum Node {
    Seg(Segment),
    Let {
        binds: Vec<String>,
        /// `Some(n)` when the pattern is a top-level n-tuple.
        arity: Option<usize>,
        init: Vec<Node>,
        /// let-else diverging block.
        else_b: Vec<Node>,
        line: usize,
    },
    If {
        uid: u32,
        cond: Vec<Node>,
        /// if-let pattern bindings.
        binds: Vec<String>,
        then_b: Vec<Node>,
        else_b: Vec<Node>,
        line: usize,
    },
    Loop {
        uid: u32,
        kind: LoopKind,
        /// Condition (while) or iterated expression (for); empty for `loop`.
        cond: Vec<Node>,
        /// while-let / for pattern bindings.
        binds: Vec<String>,
        body: Vec<Node>,
        line: usize,
    },
    Match {
        uid: u32,
        scrutinee: Vec<Node>,
        arms: Vec<Arm>,
        line: usize,
    },
    Block(Vec<Node>),
    Exit {
        kind: ExitKind,
        value: Vec<Node>,
        line: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    While,
    For,
    Loop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    Return,
    Break,
    Continue,
}

/// A flat expression run: token range plus the call sites inside it.
#[derive(Debug, Clone)]
pub struct Segment {
    pub toks: Range<usize>,
    pub calls: Vec<CallSite>,
    pub line: usize,
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    pub binds: Vec<String>,
    pub guard: Vec<Node>,
    pub body: Vec<Node>,
    pub line: usize,
}

/// One call site: `name(args…)`, `recv.name(args…)`, `qual::name(args…)`,
/// or `name!(args…)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// Leading path segments for plain calls (`Vec::new` → `["Vec"]`).
    pub qual: Vec<String>,
    pub is_method: bool,
    pub is_macro: bool,
    pub line: usize,
    pub col: usize,
    /// Index of the name token (lets callers relate a call to its
    /// surrounding tokens, e.g. the receiver at `tok - 2`).
    pub tok: usize,
    /// Top-level argument token ranges (macros also split at `;`, so
    /// `vec![v; n]` yields two).
    pub args: Vec<Range<usize>>,
}

/// Rust keywords: never call names, never pattern binders.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

const PUNCT3: &[&str] = &["..=", "<<=", ">>="];
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>", "..",
];

/// Tokenize scanned lines (code side only; comments never reach here).
pub fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (li, line) in lines.iter().enumerate() {
        let code = line.code.as_bytes();
        let mut i = 0usize;
        while i < code.len() {
            let b = code[i];
            if !b.is_ascii() || b.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            let c = b as char;
            let start = i;
            let (kind, end) = if c.is_ascii_alphabetic() || c == '_' {
                let mut j = i + 1;
                while j < code.len() && (code[j].is_ascii_alphanumeric() || code[j] == b'_') {
                    j += 1;
                }
                (TokKind::Ident, j)
            } else if c.is_ascii_digit() {
                let mut j = i + 1;
                while j < code.len() {
                    let d = code[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.' && code.get(j + 1).is_some_and(u8::is_ascii_digit) {
                        j += 2;
                    } else {
                        break;
                    }
                }
                (TokKind::Num, j)
            } else if c == '"' {
                // Scanner-blanked string: `""`, or a lone `"` when the
                // literal spans lines.
                let j = if code.get(i + 1) == Some(&b'"') { i + 2 } else { i + 1 };
                (TokKind::Str, j)
            } else if c == '\'' {
                match code.get(i + 1) {
                    Some(&b'\'') => (TokKind::Char, i + 2),
                    Some(&n) if n.is_ascii_alphanumeric() || n == b'_' => {
                        let mut j = i + 2;
                        while j < code.len() && (code[j].is_ascii_alphanumeric() || code[j] == b'_')
                        {
                            j += 1;
                        }
                        (TokKind::Lifetime, j)
                    }
                    _ => (TokKind::Char, i + 1),
                }
            } else {
                let rest = &line.code[i..];
                let n = if PUNCT3.iter().any(|p| rest.starts_with(p)) {
                    3
                } else if PUNCT2.iter().any(|p| rest.starts_with(p)) {
                    2
                } else {
                    1
                };
                (TokKind::Punct, i + n)
            };
            toks.push(Tok { kind, text: line.code[start..end].to_string(), line: li + 1, col: start });
            i = end;
        }
    }
    toks
}

/// Parse a scanned file into items and statement trees.
pub fn parse_file(lines: &[Line]) -> Result<ParsedFile, ParseErr> {
    let toks = tokenize(lines);
    let mut p = Parser {
        toks: &toks,
        lines,
        pos: 0,
        uid: 0,
        pending_test: false,
        fns: Vec::new(),
        impls: Vec::new(),
        uses: Vec::new(),
    };
    p.items(None)?;
    if p.pos < toks.len() {
        return Err(p.err("trailing tokens after top-level items"));
    }
    Ok(ParsedFile { fns: p.fns, impls: p.impls, uses: p.uses, toks })
}

/// Terminator set for one [`Parser::expr_seq`] invocation. `}` and
/// unbalanced `)`/`]` always stop the sequence.
#[derive(Clone, Copy, Default)]
struct Term {
    semi: bool,
    comma: bool,
    fat_arrow: bool,
    else_kw: bool,
    /// NoStruct position (cond/scrutinee/iter): `{` at depth 0 stops.
    brace_opens: bool,
}

impl Term {
    fn stmt() -> Self {
        Term { semi: true, ..Term::default() }
    }
    fn let_init() -> Self {
        Term { semi: true, else_kw: true, ..Term::default() }
    }
    fn cond() -> Self {
        Term { semi: true, brace_opens: true, ..Term::default() }
    }
    fn guard() -> Self {
        Term { semi: true, fat_arrow: true, ..Term::default() }
    }
    fn arm() -> Self {
        Term { semi: true, comma: true, ..Term::default() }
    }
    fn exit() -> Self {
        Term { semi: true, comma: true, ..Term::default() }
    }
}

/// How a pattern ends.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PatEnd {
    /// `let`/`if let`/`while let`: at `=`.
    Eq,
    /// `for`: at the `in` keyword.
    In,
    /// match arm: at `=>` or a guard `if`.
    Arm,
}

/// A parsed pattern: its binding idents and tuple arity (if top-level
/// tuple).
struct Pat {
    binds: Vec<String>,
    arity: Option<usize>,
}

struct Parser<'a> {
    toks: &'a [Tok],
    lines: &'a [Line],
    pos: usize,
    uid: u32,
    /// A just-skipped attribute mentioned `test`.
    pending_test: bool,
    fns: Vec<FnItem>,
    impls: Vec<ImplBlock>,
    uses: Vec<UseImport>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }
    fn at(&self, k: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + k)
    }
    fn bump(&mut self) {
        self.pos += 1;
    }
    fn cur_line(&self) -> usize {
        self.peek().map_or_else(|| self.lines.len(), |t| t.line)
    }
    fn err(&self, msg: &str) -> ParseErr {
        ParseErr { line: self.cur_line(), msg: msg.to_string() }
    }
    fn fresh_uid(&mut self) -> u32 {
        self.uid += 1;
        self.uid
    }
    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_some_and(|t| t.kind == TokKind::Punct && t.is(p)) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_punct(&mut self, p: &str) -> Result<(), ParseErr> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{p}`")))
        }
    }
    fn eat_ident(&mut self) -> Option<String> {
        let t = self.peek()?;
        if t.kind == TokKind::Ident {
            let s = t.text.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    /// Parse items until `}` (not consumed) or EOF.
    fn items(&mut self, qual: Option<&str>) -> Result<(), ParseErr> {
        while let Some(t) = self.peek() {
            if t.is("}") && t.kind == TokKind::Punct {
                return Ok(());
            }
            self.item(qual)?;
        }
        Ok(())
    }

    /// Consume one item (or one item prefix: attribute, `pub`, modifier).
    fn item(&mut self, qual: Option<&str>) -> Result<(), ParseErr> {
        let Some(t) = self.peek() else { return Ok(()) };
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "#" => return self.skip_attr(),
                ";" => {
                    self.bump();
                    return Ok(());
                }
                _ => {
                    // Tolerance: stray punctuation at item level.
                    self.bump();
                    return Ok(());
                }
            }
        }
        // Item-level macro invocation (`thread_local! { … }`, vendored
        // macro fan-outs): skip the delimited body.
        if t.kind == TokKind::Ident
            && !t.is("macro_rules")
            && !is_keyword(&t.text)
            && self.at(1).is_some_and(|n| n.is("!"))
        {
            self.bump();
            self.bump();
            match self.peek().map(|t| t.text.as_str()) {
                Some("(") => self.skip_group("(", ")")?,
                Some("[") => self.skip_group("[", "]")?,
                Some("{") => self.skip_group("{", "}")?,
                _ => {}
            }
            let _ = self.eat_punct(";");
            self.pending_test = false;
            return Ok(());
        }
        match t.text.as_str() {
            "pub" => {
                self.bump();
                if self.peek().is_some_and(|t| t.is("(")) {
                    self.skip_group("(", ")")?;
                }
                Ok(())
            }
            "unsafe" | "async" | "default" => {
                self.bump();
                Ok(())
            }
            "extern" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                    self.bump();
                }
                if self.peek().is_some_and(|t| t.is("{")) {
                    self.skip_group("{", "}")?;
                    self.pending_test = false;
                } else if self.peek().is_some_and(|t| t.is_kw("crate")) {
                    self.skip_to_semi()?;
                    self.pending_test = false;
                }
                Ok(())
            }
            "const" => {
                if self.at(1).is_some_and(|t| t.is_kw("fn")) {
                    self.bump();
                } else {
                    self.skip_to_semi()?;
                    self.pending_test = false;
                }
                Ok(())
            }
            "use" => {
                self.parse_use()?;
                self.pending_test = false;
                Ok(())
            }
            "fn" => self.parse_fn(qual),
            "impl" => self.parse_impl(),
            "trait" => self.parse_trait(),
            "struct" | "enum" | "union" => {
                self.skip_decl()?;
                self.pending_test = false;
                Ok(())
            }
            "type" | "static" => {
                self.skip_to_semi()?;
                self.pending_test = false;
                Ok(())
            }
            "mod" => {
                self.bump();
                let _name = self.eat_ident();
                if self.eat_punct(";") {
                    self.pending_test = false;
                    return Ok(());
                }
                self.expect_punct("{")?;
                self.items(qual)?;
                self.expect_punct("}")?;
                self.pending_test = false;
                Ok(())
            }
            "macro_rules" => {
                self.bump();
                let _ = self.eat_punct("!");
                let _name = self.eat_ident();
                if self.peek().is_some_and(|t| t.is("{")) {
                    self.skip_group("{", "}")?;
                } else {
                    self.skip_to_semi()?;
                }
                self.pending_test = false;
                Ok(())
            }
            _ => {
                // Tolerance: unknown item-level token.
                self.bump();
                Ok(())
            }
        }
    }

    /// Skip `#[…]` / `#![…]`, noting whether it mentions `test`.
    fn skip_attr(&mut self) -> Result<(), ParseErr> {
        self.expect_punct("#")?;
        let _ = self.eat_punct("!");
        let start = self.pos;
        self.skip_group("[", "]")?;
        if self.toks[start..self.pos].iter().any(|t| t.is_kw("test")) {
            self.pending_test = true;
        }
        Ok(())
    }

    /// Skip a balanced `open … close` group (counting only that pair).
    fn skip_group(&mut self, open: &str, close: &str) -> Result<(), ParseErr> {
        self.expect_punct(open)?;
        let mut depth = 1u32;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                if t.is(open) {
                    depth += 1;
                } else if t.is(close) {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return Ok(());
                    }
                }
            }
            self.bump();
        }
        Err(self.err("unbalanced group at end of file"))
    }

    /// Skip to `;` at delimiter depth 0, consuming balanced groups.
    fn skip_to_semi(&mut self) -> Result<(), ParseErr> {
        let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" if p == 0 && b == 0 && c == 0 => {
                        self.bump();
                        return Ok(());
                    }
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => b += 1,
                    "]" => b -= 1,
                    "{" => c += 1,
                    "}" => {
                        if c == 0 {
                            // `}` closing our enclosing scope: stop here.
                            return Ok(());
                        }
                        c -= 1;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        Ok(())
    }

    /// Skip a struct/enum/union declaration: to `;` or over a brace body.
    fn skip_decl(&mut self) -> Result<(), ParseErr> {
        let (mut p, mut b) = (0i32, 0i32);
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" if p == 0 && b == 0 => {
                        self.bump();
                        return Ok(());
                    }
                    "{" if p == 0 && b == 0 => return self.skip_group("{", "}"),
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => b += 1,
                    "]" => b -= 1,
                    "}" => return Ok(()),
                    _ => {}
                }
            }
            self.bump();
        }
        Ok(())
    }

    /// `use tree;` — record every leaf with its root path segment.
    fn parse_use(&mut self) -> Result<(), ParseErr> {
        self.bump(); // use
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix)?;
        let _ = self.eat_punct(";");
        Ok(())
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) -> Result<(), ParseErr> {
        let depth0 = prefix.len();
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Ident {
                let name = t.text.clone();
                self.bump();
                if self.peek().is_some_and(|t| t.is_kw("as")) {
                    self.bump();
                    let alias = self.eat_ident().unwrap_or(name);
                    self.record_use(prefix, &alias);
                    break;
                }
                if self.eat_punct("::") {
                    prefix.push(name);
                    continue;
                }
                // `self` leaf imports the prefix's own last segment.
                let leaf = if name == "self" {
                    prefix.last().cloned().unwrap_or(name)
                } else {
                    name
                };
                self.record_use(prefix, &leaf);
                break;
            } else if t.is("*") {
                self.bump();
                self.record_use(prefix, "*");
                break;
            } else if t.is("{") {
                self.bump();
                loop {
                    if self.eat_punct("}") {
                        break;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unclosed use group"));
                    }
                    self.use_tree(prefix)?;
                    let _ = self.eat_punct(",");
                }
                break;
            } else {
                break;
            }
        }
        prefix.truncate(depth0);
        Ok(())
    }

    fn record_use(&mut self, prefix: &[String], leaf: &str) {
        let root = prefix.first().cloned().unwrap_or_else(|| leaf.to_string());
        self.uses.push(UseImport { name: leaf.to_string(), root });
    }

    /// Skip `<…>` generics (shift-aware), starting at `<`.
    fn skip_angles(&mut self) -> Result<(), ParseErr> {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return Ok(());
            }
        }
        Err(self.err("unclosed generics"))
    }

    /// A type path: consume tokens until `for`/`where`/`{` at angle depth
    /// 0; return the last depth-0 identifier.
    fn type_path(&mut self, stop_for: bool) -> Result<String, ParseErr> {
        let mut angle = 0i32;
        let mut last = String::from("?");
        while let Some(t) = self.peek() {
            if angle == 0 {
                if t.is("{") || t.is_kw("where") || (stop_for && t.is_kw("for")) {
                    return Ok(last);
                }
                if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                    last = t.text.clone();
                }
            }
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                _ => {}
            }
            self.bump();
        }
        Err(self.err("unterminated type path"))
    }

    fn parse_impl(&mut self) -> Result<(), ParseErr> {
        let start_line = self.cur_line();
        self.bump(); // impl
        if self.peek().is_some_and(|t| t.is("<")) {
            self.skip_angles()?;
        }
        let first = self.type_path(true)?;
        let (trait_name, self_ty) = if self.peek().is_some_and(|t| t.is_kw("for")) {
            self.bump();
            (Some(first), self.type_path(false)?)
        } else {
            (None, first)
        };
        while let Some(t) = self.peek() {
            if t.is("{") {
                break;
            }
            self.bump();
        }
        self.expect_punct("{")?;
        self.pending_test = false;
        self.items(Some(&self_ty))?;
        let end_line = self.cur_line();
        self.expect_punct("}")?;
        self.impls.push(ImplBlock { trait_name, self_ty, start_line, end_line, is_trait_decl: false });
        Ok(())
    }

    fn parse_trait(&mut self) -> Result<(), ParseErr> {
        let start_line = self.cur_line();
        self.bump(); // trait
        let name = self.eat_ident().ok_or_else(|| self.err("trait needs a name"))?;
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if angle == 0 && t.is("{") {
                break;
            }
            if angle == 0 && t.is(";") {
                // `trait X: Y;`-style forward decl (not real Rust, tolerate).
                self.bump();
                return Ok(());
            }
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                _ => {}
            }
            self.bump();
        }
        self.expect_punct("{")?;
        self.pending_test = false;
        self.items(Some(&name))?;
        let end_line = self.cur_line();
        self.expect_punct("}")?;
        self.impls.push(ImplBlock {
            trait_name: Some(name.clone()),
            self_ty: name,
            start_line,
            end_line,
            is_trait_decl: true,
        });
        Ok(())
    }

    fn parse_fn(&mut self, qual: Option<&str>) -> Result<(), ParseErr> {
        let line = self.cur_line();
        self.bump(); // fn
        let name = self.eat_ident().ok_or_else(|| self.err("fn needs a name"))?;
        if self.peek().is_some_and(|t| t.is("<")) {
            self.skip_angles()?;
        }
        self.expect_punct("(")?;
        let params = self.fn_params()?;
        // Return type + where clause: to `{` (body) or `;` (trait decl).
        let (mut p, mut b, mut angle) = (0i32, 0i32, 0i32);
        loop {
            let Some(t) = self.peek() else {
                return Err(self.err("unterminated fn signature"));
            };
            if p == 0 && b == 0 && angle == 0 {
                if t.is("{") {
                    break;
                }
                if t.is(";") {
                    self.bump(); // bodyless trait method decl
                    self.pending_test = false;
                    return Ok(());
                }
            }
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => b += 1,
                "]" => b -= 1,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                _ => {}
            }
            self.bump();
        }
        let body = self.parse_block()?;
        let in_cfg_test =
            self.lines.get(line.saturating_sub(1)).is_some_and(|l| l.in_cfg_test);
        let is_test = self.pending_test || in_cfg_test;
        self.pending_test = false;
        self.fns.push(FnItem { name, qual: qual.map(str::to_string), params, line, body, is_test });
        Ok(())
    }

    /// Parameter binding idents; called with `(` consumed, consumes `)`.
    fn fn_params(&mut self) -> Result<Vec<String>, ParseErr> {
        let mut out = Vec::new();
        let (mut p, mut b, mut c, mut angle) = (1i32, 0i32, 0i32, 0i32);
        let mut collecting = true;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => p += 1,
                    ")" => {
                        p -= 1;
                        if p == 0 {
                            self.bump();
                            return Ok(out);
                        }
                    }
                    "[" => b += 1,
                    "]" => b -= 1,
                    "{" => c += 1,
                    "}" => c -= 1,
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle = (angle - 1).max(0),
                    ">>" => angle = (angle - 2).max(0),
                    ":" if p == 1 && b == 0 && c == 0 && angle == 0 => collecting = false,
                    "," if p == 1 && b == 0 && c == 0 && angle == 0 => collecting = true,
                    _ => {}
                }
            } else if collecting
                && angle == 0
                && t.kind == TokKind::Ident
                && !is_keyword(&t.text)
                && t.text != "_"
            {
                out.push(t.text.clone());
            }
            self.bump();
        }
        Err(self.err("unclosed parameter list"))
    }

    /// `{ statements }` — consumes both braces.
    fn parse_block(&mut self) -> Result<Vec<Node>, ParseErr> {
        self.expect_punct("{")?;
        let mut nodes = Vec::new();
        loop {
            let Some(t) = self.peek() else {
                return Err(self.err("unexpected end of file in block"));
            };
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "}" => {
                        self.bump();
                        return Ok(nodes);
                    }
                    ";" => {
                        self.bump();
                        continue;
                    }
                    "#" => {
                        self.skip_attr()?;
                        continue;
                    }
                    "{" => {
                        nodes.push(Node::Block(self.parse_block()?));
                        continue;
                    }
                    _ => {}
                }
            }
            if t.kind == TokKind::Lifetime && self.at(1).is_some_and(|t| t.is(":")) {
                // Loop label: drop it, next iteration parses the loop.
                self.bump();
                self.bump();
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "let" => {
                        nodes.push(self.stmt_let()?);
                        continue;
                    }
                    "if" => {
                        nodes.push(self.expr_if()?);
                        continue;
                    }
                    "match" => {
                        nodes.push(self.expr_match()?);
                        continue;
                    }
                    "while" => {
                        nodes.push(self.expr_while()?);
                        continue;
                    }
                    "for" => {
                        nodes.push(self.expr_for()?);
                        continue;
                    }
                    "loop" => {
                        nodes.push(self.expr_loop()?);
                        continue;
                    }
                    "unsafe" if self.at(1).is_some_and(|t| t.is("{")) => {
                        self.bump();
                        nodes.push(Node::Block(self.parse_block()?));
                        continue;
                    }
                    "return" => {
                        nodes.push(self.stmt_exit(ExitKind::Return)?);
                        continue;
                    }
                    "break" => {
                        nodes.push(self.stmt_exit(ExitKind::Break)?);
                        continue;
                    }
                    "continue" => {
                        nodes.push(self.stmt_exit(ExitKind::Continue)?);
                        continue;
                    }
                    // Nested items inside fn bodies.
                    "fn" | "struct" | "enum" | "union" | "impl" | "trait" | "use" | "mod"
                    | "type" | "static" | "macro_rules" | "pub" | "const" | "extern" => {
                        self.item(None)?;
                        continue;
                    }
                    _ => {}
                }
            }
            // Expression statement.
            let mut seq = self.expr_seq(Term::stmt())?;
            nodes.append(&mut seq);
            let _ = self.eat_punct(";");
        }
    }

    fn stmt_let(&mut self) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump(); // let
        let pat = self.pattern(PatEnd::Eq)?;
        let mut init = Vec::new();
        let mut else_b = Vec::new();
        if self.eat_punct("=") {
            init = self.expr_seq(Term::let_init())?;
            if self.peek().is_some_and(|t| t.is_kw("else")) {
                self.bump();
                else_b = self.parse_block()?;
            }
        }
        let _ = self.eat_punct(";");
        Ok(Node::Let { binds: pat.binds, arity: pat.arity, init, else_b, line })
    }

    fn stmt_exit(&mut self, kind: ExitKind) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump();
        if kind != ExitKind::Return && self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
            self.bump();
        }
        let value = self.expr_seq(Term::exit())?;
        let _ = self.eat_punct(";");
        Ok(Node::Exit { kind, value, line })
    }

    fn expr_if(&mut self) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump(); // if
        let mut binds = Vec::new();
        if self.peek().is_some_and(|t| t.is_kw("let")) {
            self.bump();
            binds = self.pattern(PatEnd::Eq)?.binds;
            let _ = self.eat_punct("=");
        }
        let cond = self.expr_seq(Term::cond())?;
        let then_b = self.parse_block()?;
        let mut else_b = Vec::new();
        if self.peek().is_some_and(|t| t.is_kw("else")) {
            self.bump();
            if self.peek().is_some_and(|t| t.is_kw("if")) {
                else_b.push(self.expr_if()?);
            } else {
                else_b = self.parse_block()?;
            }
        }
        Ok(Node::If { uid: self.fresh_uid(), cond, binds, then_b, else_b, line })
    }

    fn expr_while(&mut self) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump(); // while
        let mut binds = Vec::new();
        if self.peek().is_some_and(|t| t.is_kw("let")) {
            self.bump();
            binds = self.pattern(PatEnd::Eq)?.binds;
            let _ = self.eat_punct("=");
        }
        let cond = self.expr_seq(Term::cond())?;
        let body = self.parse_block()?;
        Ok(Node::Loop { uid: self.fresh_uid(), kind: LoopKind::While, cond, binds, body, line })
    }

    fn expr_for(&mut self) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump(); // for
        let binds = self.pattern(PatEnd::In)?.binds;
        if self.peek().is_some_and(|t| t.is_kw("in")) {
            self.bump();
        }
        let cond = self.expr_seq(Term::cond())?;
        let body = self.parse_block()?;
        Ok(Node::Loop { uid: self.fresh_uid(), kind: LoopKind::For, cond, binds, body, line })
    }

    fn expr_loop(&mut self) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump(); // loop
        let body = self.parse_block()?;
        Ok(Node::Loop {
            uid: self.fresh_uid(),
            kind: LoopKind::Loop,
            cond: Vec::new(),
            binds: Vec::new(),
            body,
            line,
        })
    }

    fn expr_match(&mut self) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump(); // match
        let scrutinee = self.expr_seq(Term::cond())?;
        self.expect_punct("{")?;
        let mut arms = Vec::new();
        loop {
            let Some(t) = self.peek() else {
                return Err(self.err("unexpected end of file in match"));
            };
            if t.is("}") {
                self.bump();
                break;
            }
            if t.is("#") {
                self.skip_attr()?;
                continue;
            }
            let _ = self.eat_punct("|");
            let arm_line = self.cur_line();
            let pat = self.pattern(PatEnd::Arm)?;
            let mut guard = Vec::new();
            if self.peek().is_some_and(|t| t.is_kw("if")) {
                self.bump();
                guard = self.expr_seq(Term::guard())?;
            }
            self.expect_punct("=>")?;
            let body = if self.peek().is_some_and(|t| t.is("{")) {
                self.parse_block()?
            } else {
                self.expr_seq(Term::arm())?
            };
            let _ = self.eat_punct(",");
            arms.push(Arm { binds: pat.binds, guard, body, line: arm_line });
        }
        Ok(Node::Match { uid: self.fresh_uid(), scrutinee, arms, line })
    }

    /// Parse a pattern (plus, for `Eq`, any `: Type` annotation) up to its
    /// end token, collecting binding idents.
    fn pattern(&mut self, end: PatEnd) -> Result<Pat, ParseErr> {
        let mut binds = Vec::new();
        let (mut p, mut b, mut c, mut angle) = (0i32, 0i32, 0i32, 0i32);
        let tuple = self.peek().is_some_and(|t| t.is("("));
        let mut arity = 0usize;
        let mut in_type = false;
        while let Some(t) = self.peek() {
            let depth0 = p == 0 && b == 0 && c == 0 && angle == 0;
            if depth0 {
                let done = match end {
                    PatEnd::Eq => t.is("=") && t.kind == TokKind::Punct,
                    PatEnd::In => t.is_kw("in"),
                    PatEnd::Arm => t.is("=>") || t.is_kw("if"),
                };
                // A `{` after a path is a struct pattern (consumed via
                // brace depth below); any other `;`/`{`/`}` means the
                // caller's construct ended early: stop without consuming.
                let struct_pat = t.is("{")
                    && t.kind == TokKind::Punct
                    && self
                        .pos
                        .checked_sub(1)
                        .and_then(|k| self.toks.get(k))
                        .is_some_and(|pt| pt.kind == TokKind::Ident && !is_keyword(&pt.text));
                if done
                    || t.is(";")
                    || t.is("}")
                    || (t.is("{") && t.kind == TokKind::Punct && !struct_pat)
                {
                    break;
                }
                if t.is(":") && t.kind == TokKind::Punct {
                    in_type = true;
                }
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => p += 1,
                    ")" => {
                        if p == 0 {
                            break;
                        }
                        p -= 1;
                    }
                    "[" => b += 1,
                    "]" => {
                        if b == 0 {
                            break;
                        }
                        b -= 1;
                    }
                    "{" => c += 1,
                    "}" => c -= 1,
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle = (angle - 1).max(0),
                    ">>" => angle = (angle - 2).max(0),
                    "," if tuple && p == 1 && b == 0 && c == 0 && angle == 0 && !in_type => {
                        arity += 1;
                    }
                    _ => {}
                }
            } else if !in_type
                && angle == 0
                && t.kind == TokKind::Ident
                && !is_keyword(&t.text)
                && t.text != "_"
            {
                let qualified =
                    self.pos > 0 && self.toks.get(self.pos - 1).is_some_and(|p| p.is("::"));
                let callish = self.at(1).is_some_and(|n| {
                    n.is("::") || n.is("(") || n.is("{") || n.is("!") || n.is("<")
                });
                if !qualified && !callish {
                    binds.push(t.text.clone());
                }
            }
            self.bump();
        }
        let arity = if tuple { Some(arity + 1) } else { None };
        Ok(Pat { binds, arity })
    }

    /// The expression-sequence parser: consumes tokens into flat segments,
    /// recursing into control expressions at delimiter depth 0. Stops
    /// (without consuming) at a terminator from `term`, at `}`, or at an
    /// unbalanced closer.
    fn expr_seq(&mut self, term: Term) -> Result<Vec<Node>, ParseErr> {
        let mut nodes = Vec::new();
        let mut seg_start = self.pos;
        let (mut p, mut b, mut c, mut angle) = (0i32, 0i32, 0i32, 0i32);
        macro_rules! flush {
            () => {
                if seg_start < self.pos {
                    let r = seg_start..self.pos;
                    nodes.push(Node::Seg(Segment {
                        calls: extract_calls(self.toks, r.clone()),
                        line: self.toks[seg_start].line,
                        toks: r,
                    }));
                }
            };
        }
        loop {
            let Some(t) = self.peek() else {
                flush!();
                return Ok(nodes);
            };
            let depth0 = p == 0 && b == 0 && c == 0;
            if depth0 {
                if t.kind == TokKind::Punct {
                    let stop = t.is("}")
                        || (t.is(";") && term.semi)
                        || (t.is(",") && term.comma && angle == 0)
                        || (t.is("=>") && term.fat_arrow)
                        || (t.is("{") && term.brace_opens);
                    if stop {
                        flush!();
                        return Ok(nodes);
                    }
                    if t.is("{") {
                        // Struct literal / closure body → into the segment;
                        // otherwise a block expression.
                        let prev = self.pos.checked_sub(1).and_then(|k| self.toks.get(k));
                        let swallow = prev.is_some_and(|pt| {
                            (pt.kind == TokKind::Ident && !is_keyword(&pt.text))
                                || pt.is(">")
                                || pt.is("|")
                                || pt.is("||")
                                || pt.is_kw("move")
                        });
                        if swallow {
                            c += 1;
                            self.bump();
                            continue;
                        }
                        flush!();
                        nodes.push(Node::Block(self.parse_block()?));
                        seg_start = self.pos;
                        continue;
                    }
                } else if t.kind == TokKind::Ident {
                    if term.else_kw && t.is("else") {
                        flush!();
                        return Ok(nodes);
                    }
                    let recurse = match t.text.as_str() {
                        "if" => Some(self.pos),
                        "match" | "while" | "for" | "loop" => Some(self.pos),
                        "unsafe" if self.at(1).is_some_and(|n| n.is("{")) => Some(self.pos),
                        "return" | "break" | "continue" => Some(self.pos),
                        _ => None,
                    };
                    if recurse.is_some() {
                        flush!();
                        let node = match t.text.as_str() {
                            "if" => self.expr_if()?,
                            "match" => self.expr_match()?,
                            "while" => self.expr_while()?,
                            "for" => self.expr_for()?,
                            "loop" => self.expr_loop()?,
                            "unsafe" => {
                                self.bump();
                                Node::Block(self.parse_block()?)
                            }
                            "return" => self.stmt_exit_inline(ExitKind::Return, term)?,
                            "break" => self.stmt_exit_inline(ExitKind::Break, term)?,
                            _ => self.stmt_exit_inline(ExitKind::Continue, term)?,
                        };
                        nodes.push(node);
                        seg_start = self.pos;
                        continue;
                    }
                }
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => p += 1,
                    ")" => {
                        if p == 0 {
                            flush!();
                            return Ok(nodes);
                        }
                        p -= 1;
                    }
                    "[" => b += 1,
                    "]" => {
                        if b == 0 {
                            flush!();
                            return Ok(nodes);
                        }
                        b -= 1;
                    }
                    "{" => c += 1,
                    "}" => {
                        if c == 0 {
                            flush!();
                            return Ok(nodes);
                        }
                        c -= 1;
                    }
                    // Turbofish-only angle tracking: `<` in expression
                    // position opens generics only after `::`.
                    "<" => {
                        let after_colons =
                            self.pos.checked_sub(1).and_then(|k| self.toks.get(k)).is_some_and(
                                |pt| pt.is("::"),
                            );
                        if after_colons || angle > 0 {
                            angle += 1;
                        }
                    }
                    ">" => angle = (angle - 1).max(0),
                    ">>" => angle = (angle - 2).max(0),
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// `return`/`break`/`continue` in expression position: value inherits
    /// the surrounding terminators.
    fn stmt_exit_inline(&mut self, kind: ExitKind, term: Term) -> Result<Node, ParseErr> {
        let line = self.cur_line();
        self.bump();
        if kind != ExitKind::Return && self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
            self.bump();
        }
        let value = self.expr_seq(term)?;
        Ok(Node::Exit { kind, value, line })
    }
}

/// Find every call site inside `toks[r]`. Nested calls (inside argument
/// lists, closures, struct literals) are all reported, outermost first.
pub fn extract_calls(toks: &[Tok], r: Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = r.start;
    while i < r.end {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || is_keyword(&t.text)
            || matches!(t.text.as_str(), "Some" | "None" | "Ok" | "Err")
        {
            i += 1;
            continue;
        }
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if toks.get(i + 1).is_some_and(|n| n.is("!")) {
            if let Some(d) = toks.get(i + 2) {
                let close = match d.text.as_str() {
                    "(" => Some(match_delim(toks, i + 2, r.end, "(", ")")),
                    "[" => Some(match_delim(toks, i + 2, r.end, "[", "]")),
                    "{" => Some(match_delim(toks, i + 2, r.end, "{", "}")),
                    _ => None,
                };
                if let Some(close) = close {
                    out.push(CallSite {
                        name: t.text.clone(),
                        qual: walk_back_qual(toks, i, r.start),
                        is_method: false,
                        is_macro: true,
                        line: t.line,
                        col: t.col,
                        tok: i,
                        args: split_args(toks, i + 3, close, true),
                    });
                }
            }
            i += 1;
            continue;
        }
        // Plain or method call, with optional turbofish.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is("::")) && toks.get(j + 1).is_some_and(|n| n.is("<")) {
            j = skip_angle_toks(toks, j + 1, r.end);
        }
        if toks.get(j).is_some_and(|n| n.is("(")) && j < r.end {
            let close = match_delim(toks, j, r.end, "(", ")");
            let is_method = i > r.start && toks[i - 1].is(".");
            let qual = if is_method { Vec::new() } else { walk_back_qual(toks, i, r.start) };
            out.push(CallSite {
                name: t.text.clone(),
                qual,
                is_method,
                is_macro: false,
                line: t.line,
                col: t.col,
                tok: i,
                args: split_args(toks, j + 1, close, false),
            });
        }
        i += 1;
    }
    out
}

/// Index of the token matching the opener at `open` (clamped to `end`).
fn match_delim(toks: &[Tok], open: usize, end: usize, o: &str, c: &str) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        if toks[k].kind == TokKind::Punct {
            if toks[k].is(o) {
                depth += 1;
            } else if toks[k].is(c) {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        k += 1;
    }
    end
}

/// After `::`, skip `<…>` starting at index `lt` (which holds `<`);
/// returns the index just past the closing `>`.
fn skip_angle_toks(toks: &[Tok], lt: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = lt;
    while k < end {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            return k;
        }
    }
    end
}

/// Split the tokens in `(start..close)` at top-level `,` (and, for macro
/// bodies, `;` — so `vec![v; n]` yields `[v, n]`).
fn split_args(toks: &[Tok], start: usize, close: usize, semi_too: bool) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let (mut p, mut b, mut c, mut angle) = (0i32, 0i32, 0i32, 0i32);
    let mut arg_start = start;
    let mut k = start;
    while k < close {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => b += 1,
                "]" => b -= 1,
                "{" => c += 1,
                "}" => c -= 1,
                "<" if (k > start && toks[k - 1].is("::")) || angle > 0 => angle += 1,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                "," | ";"
                    if p == 0
                        && b == 0
                        && c == 0
                        && angle == 0
                        && (t.is(",") || semi_too) =>
                {
                    if arg_start < k {
                        out.push(arg_start..k);
                    }
                    arg_start = k + 1;
                }
                _ => {}
            }
        }
        k += 1;
    }
    if arg_start < close {
        out.push(arg_start..close);
    }
    out
}

/// Walk back over `Ident ::` pairs to collect a call's path qualifier.
fn walk_back_qual(toks: &[Tok], name_at: usize, lo: usize) -> Vec<String> {
    let mut qual = Vec::new();
    let mut k = name_at;
    while k >= lo + 2
        && toks[k - 1].is("::")
        && toks[k - 2].kind == TokKind::Ident
        && !is_keyword(&toks[k - 2].text)
    {
        qual.insert(0, toks[k - 2].text.clone());
        k -= 2;
    }
    // `Self::f(…)` / `crate::m::f(…)` keep their keyword head so callers
    // can resolve them.
    if k >= lo + 2 && toks[k - 1].is("::") && toks[k - 2].kind == TokKind::Ident {
        qual.insert(0, toks[k - 2].text.clone());
    }
    qual
}

/// Every ident token (with its index) in a range — the taint pass's view.
pub fn idents_in(toks: &[Tok], r: Range<usize>) -> impl Iterator<Item = (usize, &Tok)> {
    toks[r.clone()]
        .iter()
        .enumerate()
        .map(move |(k, t)| (r.start + k, t))
        .filter(|(_, t)| t.kind == TokKind::Ident && !is_keyword(&t.text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scan(src)).expect("parse")
    }

    fn flat_calls(nodes: &[Node], out: &mut Vec<(String, bool, bool)>) {
        for n in nodes {
            match n {
                Node::Seg(s) => {
                    for c in &s.calls {
                        out.push((c.name.clone(), c.is_method, c.is_macro));
                    }
                }
                Node::Let { init, else_b, .. } => {
                    flat_calls(init, out);
                    flat_calls(else_b, out);
                }
                Node::If { cond, then_b, else_b, .. } => {
                    flat_calls(cond, out);
                    flat_calls(then_b, out);
                    flat_calls(else_b, out);
                }
                Node::Loop { cond, body, .. } => {
                    flat_calls(cond, out);
                    flat_calls(body, out);
                }
                Node::Match { scrutinee, arms, .. } => {
                    flat_calls(scrutinee, out);
                    for a in arms {
                        flat_calls(&a.guard, out);
                        flat_calls(&a.body, out);
                    }
                }
                Node::Block(b) => flat_calls(b, out),
                Node::Exit { value, .. } => flat_calls(value, out),
            }
        }
    }

    #[test]
    fn fn_items_params_and_impl_quals() {
        let f = parse(
            "impl Comm for ThreadComm {\n    fn rank(&self) -> usize { self.r }\n}\n\
             pub fn free(rank: usize, mut n: u64) -> u64 { n + rank as u64 }\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "rank");
        assert_eq!(f.fns[0].qual.as_deref(), Some("ThreadComm"));
        assert_eq!(f.fns[1].params, vec!["rank", "n"]);
        assert_eq!(f.impls.len(), 1);
        assert_eq!(f.impls[0].trait_name.as_deref(), Some("Comm"));
        assert!(!f.impls[0].is_trait_decl);
    }

    #[test]
    fn control_heads_and_let_else() {
        let f = parse(
            "fn f(v: &[u64]) -> u64 {\n    let Some(x) = v.first() else { return 0; };\n    \
             let mut t = 0;\n    for i in 0..v.len() {\n        if *x > 1 { t += v[i]; } else { t += 1; }\n    }\n    \
             match t { 0 => 1, n if n > 9 => n, _ => 2 }\n}\n",
        );
        let body = &f.fns[0].body;
        let Node::Let { binds, else_b, .. } = &body[0] else { panic!("let-else") };
        assert_eq!(binds, &["x"]);
        assert_eq!(else_b.len(), 1);
        let Node::Loop { kind, binds, body: lb, .. } = &body[2] else { panic!("for") };
        assert_eq!(*kind, LoopKind::For);
        assert_eq!(binds, &["i"]);
        assert!(matches!(lb[0], Node::If { .. }));
        let Node::Match { arms, .. } = body.last().unwrap() else { panic!("match") };
        assert_eq!(arms.len(), 3);
        assert!(!arms[1].guard.is_empty() && arms[1].binds == ["n"]);
    }

    #[test]
    fn calls_methods_macros_turbofish_struct_literals() {
        let f = parse(
            "fn f(comm: &C) {\n    let r = comm.rank();\n    let v = vec![r; 8];\n    \
             let s = CommStats { total: r, calls: v.len() };\n    \
             let c = v.iter().collect::<Vec<_>>();\n    let n = Vec::<u8>::with_capacity(4);\n    \
             drop((s, c, n));\n}\n",
        );
        let mut calls = Vec::new();
        flat_calls(&f.fns[0].body, &mut calls);
        let names: Vec<&str> = calls.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"rank") && names.contains(&"vec") && names.contains(&"len"));
        assert!(names.contains(&"collect") && names.contains(&"with_capacity"));
        assert!(calls.iter().any(|(n, m, _)| n == "rank" && *m));
        assert!(calls.iter().any(|(n, _, mac)| n == "vec" && *mac));
        assert!(!names.contains(&"CommStats"), "struct literal is not a call: {names:?}");
    }

    #[test]
    fn vec_macro_args_split_at_semicolon() {
        let f = parse("fn f(n: usize) { let v = vec![0.5; n]; drop(v); }\n");
        let mut found = false;
        let mut calls = Vec::new();
        flat_calls(&f.fns[0].body, &mut calls);
        assert!(calls.iter().any(|(n, _, m)| n == "vec" && *m));
        fn find(nodes: &[Node], found: &mut bool) {
            for n in nodes {
                if let Node::Let { init, .. } = n {
                    for m in init {
                        if let Node::Seg(s) = m {
                            for c in &s.calls {
                                if c.name == "vec" {
                                    assert_eq!(c.args.len(), 2, "vec![v; n] splits");
                                    *found = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        find(&f.fns[0].body, &mut found);
        assert!(found);
    }

    #[test]
    fn tuple_let_arity_and_use_imports() {
        let f = parse(
            "use geographer_parcomm::{Comm, thread::run_spmd as spmd, *};\n\
             fn f(c: &C) { let (p, r) = (c.size(), c.rank()); drop((p, r)); }\n",
        );
        let Node::Let { binds, arity, .. } = &f.fns[0].body[0] else { panic!() };
        assert_eq!(binds, &["p", "r"]);
        assert_eq!(*arity, Some(2));
        let names: Vec<(&str, &str)> =
            f.uses.iter().map(|u| (u.name.as_str(), u.root.as_str())).collect();
        assert!(names.contains(&("Comm", "geographer_parcomm")));
        assert!(names.contains(&("spmd", "geographer_parcomm")));
        assert!(names.contains(&("*", "geographer_parcomm")));
    }

    #[test]
    fn test_fns_are_marked_and_trait_decls_recorded() {
        let f = parse(
            "pub trait Comm {\n    fn rank(&self) -> usize;\n    fn half(&self) -> usize { self.rank() / 2 }\n}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n",
        );
        assert_eq!(f.impls.len(), 1);
        assert!(f.impls[0].is_trait_decl && f.impls[0].self_ty == "Comm");
        let half = f.fns.iter().find(|g| g.name == "half").expect("default method");
        assert_eq!(half.qual.as_deref(), Some("Comm"));
        let t = f.fns.iter().find(|g| g.name == "t").expect("test fn");
        assert!(t.is_test);
    }
}
