//! The determinism/SPMD invariant catalog: rules D1–D10.
//!
//! D1–D6 are token-level properties over the scanned code/comment view of
//! one file ([`crate::scan`]). D7–D9 are dataflow properties over the
//! parsed expression tree ([`crate::parse`]): rank-taint propagation
//! ([`crate::taint`]) and collective-protocol summaries
//! ([`crate::protocol`]). D10 is an opt-in allocation ban over loops
//! marked `// geo-analyze: hot-loop`. Scoping is by workspace-relative
//! path, so a rule only fires where the invariant it protects actually
//! lives (DESIGN.md §11–§12 tie each rule to the PR that established its
//! invariant). `#[cfg(test)]` modules and files under `tests/` are exempt
//! from the rules whose hazards are production-only (D1/D2/D4/D5 and
//! D7–D9); D3, D6, and D10 apply everywhere.

use std::collections::BTreeSet;

use crate::parse::{CallSite, Node, ParsedFile};
use crate::scan::{self, Line};
use crate::Violation;
use crate::{callgraph, protocol, taint};

/// Rule ids and one-line summaries (the `--list` output).
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-container",
        "D1: no HashMap/HashSet in solver crates — iteration order is nondeterministic",
    ),
    (
        "unordered-float-reduce",
        "D2: no parallel-iterator float reduction outside parcomm's fixed-tree collectives",
    ),
    ("unsafe-without-safety", "D3: every `unsafe` block carries a `// SAFETY:` comment"),
    (
        "kernel-entropy",
        "D4: no Instant/SystemTime/RNG construction inside kernel modules",
    ),
    (
        "panic-in-spmd",
        "D5: no unwrap/expect/panic! inside SPMD rank closures and Comm implementations",
    ),
    ("wire-kind-table", "D6: frame-kind constants are collision-free and all used"),
    (
        "rank-tainted-guard",
        "D7: no collective call dominated by a rank-dependent branch or loop condition",
    ),
    (
        "protocol-divergence",
        "D8: every path through a rank-dependent branch issues the same collective sequence",
    ),
    (
        "rank-tainted-length",
        "D9: collective buffer lengths and broadcast roots must not be rank-dependent",
    ),
    (
        "hot-loop-alloc",
        "D10: no allocation inside loops marked `// geo-analyze: hot-loop`",
    ),
];

/// Whether `id` names a rule a waiver may reference.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// Crates whose `src/` is solver code: their outputs (partitions, cuts,
/// orderings) must be bit-reproducible, so iteration-order-nondeterministic
/// containers are banned there (D1). `parcomm`, `bench`, and `viz` are
/// infrastructure, not solvers.
const SOLVER_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/mesh/src/",
    "crates/graph/src/",
    "crates/spmv/src/",
    "crates/refine/src/",
    "crates/planner/src/",
    "crates/dsort/src/",
    "crates/baselines/src/",
    "crates/sfc/src/",
    "crates/geometry/src/",
];

/// Hot-path kernel modules: no wall clocks or entropy sources may be
/// *constructed* here (D4) — timing belongs to the callers/bench layer and
/// randomness must arrive as an explicit seeded generator.
const KERNEL_MODULES: &[&str] = &[
    "crates/core/src/kmeans.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/kdtree.rs",
    "crates/core/src/bounds.rs",
    "crates/core/src/influence.rs",
    "crates/graph/src/coarsen.rs",
    "crates/refine/src/multilevel.rs",
    "crates/spmv/src/lib.rs",
    "crates/planner/src/solve.rs",
    "crates/planner/src/hier_refine.rs",
];

/// Files that contain Comm implementations. With a parse in hand, D5
/// applies inside `impl … Comm for …` blocks and the `Comm` trait
/// declaration (a panic there strands peers inside collectives —
/// DESIGN.md §10); without one, the whole file stays in scope as before.
/// `wire.rs`/`stats.rs` are serialization helpers, not collectives, and
/// fail-loud on malformed frames by design.
const PANIC_SCOPE_FILES: &[&str] = &[
    "crates/parcomm/src/lib.rs",
    "crates/parcomm/src/thread.rs",
    "crates/parcomm/src/proc.rs",
    "crates/parcomm/src/checked.rs",
];

/// Entry points whose closure argument runs as an SPMD rank: D5 applies
/// inside the call span.
const SPMD_ENTRY_POINTS: &[&str] =
    &["run_spmd", "run_spmd_proc", "run_spmd_checked", "run_spmd_proc_checked"];

/// Run every rule over one scanned file. `parsed` is the expression-tree
/// view when the file parses (D5 scoping, D7–D10); when it is `None` the
/// dataflow rules stand down and D5 falls back to its lexical scope.
pub fn apply_rules(
    path: &str,
    lines: &[Line],
    is_tests_file: bool,
    parsed: Option<&ParsedFile>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    d1_hash_container(path, lines, is_tests_file, &mut out);
    d2_unordered_float_reduce(path, lines, is_tests_file, &mut out);
    d3_unsafe_without_safety(path, lines, &mut out);
    d4_kernel_entropy(path, lines, is_tests_file, &mut out);
    d5_panic_in_spmd(path, lines, is_tests_file, parsed, &mut out);
    d6_wire_kind_table(path, lines, &mut out);
    d7_d8_d9_protocol(path, is_tests_file, parsed, &mut out);
    d10_hot_loop_alloc(path, lines, parsed, &mut out);
    out
}

fn exempt(line: &Line, is_tests_file: bool) -> bool {
    is_tests_file || line.in_cfg_test || !line.has_code()
}

/// First identifier of `s` (empty if `s` does not start with one).
fn leading_ident(s: &str) -> &str {
    let end = s.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(s.len());
    &s[..end]
}

fn d1_hash_container(path: &str, lines: &[Line], is_tests_file: bool, out: &mut Vec<Violation>) {
    if !SOLVER_SRC.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if exempt(line, is_tests_file) {
            continue;
        }
        let trimmed = line.code.trim_start();
        // A bare import is harmless; the construction/use sites are what
        // can leak iteration order.
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        for tok in ["HashMap", "HashSet"] {
            if scan::has_token(&line.code, tok) {
                out.push(Violation::new(
                    path,
                    i + 1,
                    "hash-container",
                    format!(
                        "{tok} in solver code: iteration order is nondeterministic and can \
                         leak into partitions; use BTreeMap/sorted vectors, or waive if the \
                         container is never iterated"
                    ),
                ));
            }
        }
    }
}

fn d2_unordered_float_reduce(
    path: &str,
    lines: &[Line],
    is_tests_file: bool,
    out: &mut Vec<Violation>,
) {
    // parcomm owns the fixed-tree reductions; the vendored shims are
    // reference implementations, not workspace solver code.
    if path.starts_with("crates/parcomm/") || path.starts_with("vendor/") {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if exempt(line, is_tests_file) {
            continue;
        }
        let par = ["par_iter", "par_iter_mut", "into_par_iter"]
            .iter()
            .any(|t| scan::has_token(&line.code, t));
        if !par {
            continue;
        }
        // Statement window: this line until the statement's `;` (bounded).
        let mut stmt = String::new();
        for l in lines.iter().skip(i).take(12) {
            stmt.push_str(&l.code);
            stmt.push(' ');
            if l.code.contains(';') {
                break;
            }
        }
        for red in ["sum", "reduce", "fold"] {
            if scan::has_token(&stmt, red) {
                out.push(Violation::new(
                    path,
                    i + 1,
                    "unordered-float-reduce",
                    format!(
                        "parallel-iterator `{red}` reduction: combination order depends on \
                         the thread schedule, breaking bitwise reproducibility; reduce \
                         through parcomm's fixed-tree collectives instead"
                    ),
                ));
                break;
            }
        }
    }
}

fn d3_unsafe_without_safety(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = scan::find_token(&line.code, "unsafe") else { continue };
        let rest = line.code[at + "unsafe".len()..].trim_start();
        // `unsafe fn` / `unsafe impl` / `unsafe trait` / `unsafe extern`
        // are declarations; the rule is about unsafe *blocks*.
        if matches!(leading_ident(rest), "fn" | "impl" | "trait" | "extern") {
            continue;
        }
        if has_safety_comment(lines, i) {
            continue;
        }
        out.push(Violation::new(
            path,
            i + 1,
            "unsafe-without-safety",
            "`unsafe` block without a `// SAFETY:` comment stating the invariant that \
             makes it sound"
                .to_string(),
        ));
    }
}

/// SAFETY may sit on the `unsafe` line itself or in the contiguous run of
/// comment-only lines directly above it (blank lines break the run).
fn has_safety_comment(lines: &[Line], i: usize) -> bool {
    if lines[i].comment.contains("SAFETY") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.has_code() || l.comment.is_empty() {
            return false;
        }
        if l.comment.contains("SAFETY") {
            return true;
        }
    }
    false
}

fn d4_kernel_entropy(path: &str, lines: &[Line], is_tests_file: bool, out: &mut Vec<Violation>) {
    if !KERNEL_MODULES.contains(&path) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if exempt(line, is_tests_file) {
            continue;
        }
        let trimmed = line.code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        for tok in ["Instant", "SystemTime", "thread_rng", "from_entropy", "OsRng"] {
            if scan::has_token(&line.code, tok) {
                out.push(Violation::new(
                    path,
                    i + 1,
                    "kernel-entropy",
                    format!(
                        "`{tok}` inside a kernel module: wall clocks and entropy make \
                         kernel behavior run-dependent; time in the caller, seed \
                         explicitly, or waive for the measurement itself"
                    ),
                ));
            }
        }
    }
}

fn d5_panic_in_spmd(
    path: &str,
    lines: &[Line],
    is_tests_file: bool,
    parsed: Option<&ParsedFile>,
    out: &mut Vec<Violation>,
) {
    let spans: Vec<(usize, usize)> = if PANIC_SCOPE_FILES.contains(&path) {
        match parsed {
            Some(p) => {
                let mut spans = comm_impl_spans(p);
                spans.extend(spmd_call_spans(lines));
                spans
            }
            // No parse: lexical fallback, whole file in scope.
            None => vec![(0, lines.len())],
        }
    } else if path.starts_with("crates/") {
        spmd_call_spans(lines)
    } else {
        return;
    };
    let mut flagged = vec![false; lines.len()];
    for (s, e) in spans {
        for i in s..e.min(lines.len()) {
            if flagged[i] || exempt(&lines[i], is_tests_file) {
                continue;
            }
            if let Some(what) = panic_pattern(&lines[i].code) {
                flagged[i] = true;
                out.push(Violation::new(
                    path,
                    i + 1,
                    "panic-in-spmd",
                    format!(
                        "{what} on an SPMD rank path: a panic here strands peers inside \
                         collectives (DESIGN.md §10); return an error, or waive for \
                         deliberate fail-loud abort paths"
                    ),
                ));
            }
        }
    }
}

/// 0-based line spans (start inclusive, end exclusive) of `impl … Comm
/// for …` blocks and the `Comm` trait declaration itself (default
/// collective bodies live there).
fn comm_impl_spans(parsed: &ParsedFile) -> Vec<(usize, usize)> {
    parsed
        .impls
        .iter()
        .filter(|b| {
            b.trait_name.as_deref() == Some("Comm") || (b.is_trait_decl && b.self_ty == "Comm")
        })
        .map(|b| (b.start_line.saturating_sub(1), b.end_line))
        .collect()
}

/// Line spans (inclusive start, exclusive end) of `run_spmd*`-family call
/// arguments: the closure inside runs as a rank.
fn spmd_call_spans(lines: &[Line]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        for ep in SPMD_ENTRY_POINTS {
            let Some(at) = scan::find_token(&line.code, ep) else { continue };
            let after = line.code[at + ep.len()..].trim_start();
            if !after.starts_with('(') {
                continue; // a definition or an import, not a call
            }
            let open = at + line.code[at..].find('(').unwrap_or(0);
            if let Some(end) = scan::match_paren(lines, i, open) {
                spans.push((i, end + 1));
            }
        }
    }
    spans
}

/// The panicking constructs D5 bans. Exact-token matches, so
/// `unwrap_or_else`/`unwrap_or_default`/`expect_err` do not fire;
/// `assert!`-family macros are allowed (they express checked invariants).
fn panic_pattern(code: &str) -> Option<&'static str> {
    if let Some(at) = scan::find_token(code, "unwrap") {
        if code[at + "unwrap".len()..].trim_start().starts_with("()") {
            return Some("`.unwrap()`");
        }
    }
    if let Some(at) = scan::find_token(code, "expect") {
        if code[at + "expect".len()..].trim_start().starts_with('(') {
            return Some("`.expect(..)`");
        }
    }
    for (mac, label) in
        [("panic", "`panic!`"), ("unreachable", "`unreachable!`"), ("todo", "`todo!`")]
    {
        if let Some(at) = scan::find_token(code, mac) {
            if code[at + mac.len()..].trim_start().starts_with('!') {
                return Some(label);
            }
        }
    }
    None
}

fn d6_wire_kind_table(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    // Applies to any file that declares a `mod kind { … }` frame table.
    let Some((mod_line, open_col)) = lines.iter().enumerate().find_map(|(i, l)| {
        (scan::has_token(&l.code, "mod") && scan::has_token(&l.code, "kind"))
            .then(|| l.code.find('{').map(|c| (i, c)))
            .flatten()
    }) else {
        return;
    };
    let Some(end_line) = scan::match_brace(lines, mod_line, open_col) else { return };

    // Collect `pub const NAME: u8 = N;` declarations inside the module.
    let mut consts: Vec<(String, u64, usize)> = Vec::new();
    for (j, line) in lines.iter().enumerate().take(end_line + 1).skip(mod_line) {
        if let Some((name, value)) = parse_kind_const(&line.code) {
            if let Some((other, _, _)) = consts.iter().find(|(_, v, _)| *v == value) {
                out.push(Violation::new(
                    path,
                    j + 1,
                    "wire-kind-table",
                    format!("frame kind `{name}` = {value} collides with `{other}`"),
                ));
            }
            consts.push((name, value, j + 1));
        }
    }

    // Every declared kind must be sent/matched somewhere in the file, and
    // every `kind::X` reference must resolve — together: the table is
    // exhaustive with respect to the protocol the file implements.
    let mut referenced: Vec<(String, usize)> = Vec::new();
    for (j, line) in lines.iter().enumerate() {
        if (mod_line..=end_line).contains(&j) {
            continue;
        }
        let mut s = line.code.as_str();
        while let Some(p) = s.find("kind::") {
            let name = leading_ident(&s[p + "kind::".len()..]);
            if !name.is_empty() {
                referenced.push((name.to_string(), j + 1));
            }
            s = &s[p + "kind::".len()..];
        }
    }
    for (name, _, decl_line) in &consts {
        if !referenced.iter().any(|(n, _)| n == name) {
            out.push(Violation::new(
                path,
                *decl_line,
                "wire-kind-table",
                format!("frame kind `{name}` is declared but never used on the wire"),
            ));
        }
    }
    for (name, at) in &referenced {
        if !consts.iter().any(|(n, _, _)| n == name) {
            out.push(Violation::new(
                path,
                *at,
                "wire-kind-table",
                format!("`kind::{name}` is not declared in the frame-kind table"),
            ));
        }
    }
}

/// Parse `pub const NAME: u8 = N` out of one code line.
fn parse_kind_const(code: &str) -> Option<(String, u64)> {
    let at = scan::find_token(code, "const")?;
    let rest = code[at + "const".len()..].trim_start();
    let name = leading_ident(rest);
    if name.is_empty() {
        return None;
    }
    let rest = rest[name.len()..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix("u8")?.trim_start().strip_prefix('=')?.trim_start();
    let digits = &rest[..rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len())];
    digits.parse().ok().map(|v| (name.to_string(), v))
}

/// D7 (`rank-tainted-guard`), D8 (`protocol-divergence`), and D9
/// (`rank-tainted-length`): rank-taint dataflow plus per-fn protocol
/// comparison over the parsed tree. Production `crates/` code only;
/// `parcomm` is exempt because collective *internals* are rank-dependent
/// by construction (that is what a collective implementation is).
fn d7_d8_d9_protocol(
    path: &str,
    is_tests_file: bool,
    parsed: Option<&ParsedFile>,
    out: &mut Vec<Violation>,
) {
    if is_tests_file || !path.starts_with("crates/") || path.starts_with("crates/parcomm/") {
        return;
    }
    let Some(parsed) = parsed else { return };
    let ws = callgraph::Workspace::from_single(path, parsed.clone());
    let mut sm = protocol::Summarizer::new(&ws);
    let file = &ws.files[0];
    for f in &file.parsed.fns {
        if f.is_test {
            continue;
        }
        let t = taint::analyze_fn(path, f, &file.parsed.toks);
        out.extend(t.violations);
        out.extend(protocol::check_d8_fn(path, &mut sm, 0, f, &t.tainted_conds));
    }
}

/// Whether the loop opening at 1-based `loop_line` carries a
/// `// geo-analyze: hot-loop` marker (same line or the plain comment line
/// directly above).
fn hot_loop_marked(lines: &[Line], loop_line: usize) -> bool {
    [loop_line, loop_line.saturating_sub(1)].iter().any(|&l| {
        l >= 1
            && lines.get(l - 1).is_some_and(|ln| {
                let doc = matches!(ln.comment.trim_start().chars().next(), Some('/') | Some('!'));
                !doc && ln.comment.contains("geo-analyze: hot-loop")
            })
    })
}

/// The allocating constructs D10 bans inside marked hot loops.
fn banned_alloc(c: &CallSite) -> Option<String> {
    if c.is_macro && matches!(c.name.as_str(), "vec" | "format") {
        return Some(format!("`{}!`", c.name));
    }
    if c.is_method && matches!(c.name.as_str(), "collect" | "to_vec" | "clone") {
        return Some(format!("`.{}()`", c.name));
    }
    if !c.is_method
        && !c.is_macro
        && matches!(c.name.as_str(), "new" | "with_capacity")
        && c.qual.last().is_some_and(|q| q == "Vec")
    {
        return Some(format!("`Vec::{}()`", c.name));
    }
    None
}

/// D10 (`hot-loop-alloc`): loops marked `// geo-analyze: hot-loop` must
/// not allocate — the SoA/AoS assignment kernels are sized up front, and
/// a stray `collect`/`clone`/`vec!` in the per-point loop is a silent
/// O(n) regression the benches only catch at scale.
fn d10_hot_loop_alloc(
    path: &str,
    lines: &[Line],
    parsed: Option<&ParsedFile>,
    out: &mut Vec<Violation>,
) {
    let Some(parsed) = parsed else { return };
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for f in &parsed.fns {
        d10_walk(path, lines, &f.body, &mut seen, out);
    }
}

fn d10_walk(
    path: &str,
    lines: &[Line],
    nodes: &[Node],
    seen: &mut BTreeSet<(usize, usize)>,
    out: &mut Vec<Violation>,
) {
    for n in nodes {
        match n {
            Node::Seg(_) => {}
            Node::Block(b) => d10_walk(path, lines, b, seen, out),
            Node::Exit { value, .. } => d10_walk(path, lines, value, seen, out),
            Node::Let { init, else_b, .. } => {
                d10_walk(path, lines, init, seen, out);
                d10_walk(path, lines, else_b, seen, out);
            }
            Node::If { cond, then_b, else_b, .. } => {
                d10_walk(path, lines, cond, seen, out);
                d10_walk(path, lines, then_b, seen, out);
                d10_walk(path, lines, else_b, seen, out);
            }
            Node::Match { scrutinee, arms, .. } => {
                d10_walk(path, lines, scrutinee, seen, out);
                for a in arms {
                    d10_walk(path, lines, &a.guard, seen, out);
                    d10_walk(path, lines, &a.body, seen, out);
                }
            }
            Node::Loop { cond, body, line, .. } => {
                if hot_loop_marked(lines, *line) {
                    let mut calls = Vec::new();
                    callgraph::collect_calls(body, &mut calls);
                    for c in calls {
                        let Some(what) = banned_alloc(c) else { continue };
                        if !seen.insert((c.line, c.col)) {
                            continue; // nested marked loops: report once
                        }
                        out.push(Violation::new(
                            path,
                            c.line,
                            "hot-loop-alloc",
                            format!(
                                "{what} inside a `geo-analyze: hot-loop` kernel loop: \
                                 allocate outside the loop and reuse the buffer \
                                 (DESIGN.md §12)"
                            ),
                        ));
                    }
                }
                d10_walk(path, lines, cond, seen, out);
                d10_walk(path, lines, body, seen, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_source;

    #[test]
    fn d1_scopes_to_solver_crates_only() {
        let src = "fn f() { let m = HashMap::new(); }\n";
        assert!(!analyze_source("crates/core/src/x.rs", src).is_empty());
        assert!(analyze_source("crates/bench/src/x.rs", src).is_empty());
        assert!(analyze_source("crates/viz/src/x.rs", src).is_empty());
    }

    #[test]
    fn d1_ignores_imports_tests_and_comments() {
        let src = "use std::collections::HashMap;\n// HashMap in prose\n#[cfg(test)]\nmod tests {\n    fn t() { let m = HashMap::new(); }\n}\n";
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_fires_on_multiline_statements() {
        let src = "fn f(xs: &[f64]) -> f64 {\n    xs.par_iter()\n        .map(|x| x * 2.0)\n        .sum()\n}\n";
        let v = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].line, v[0].rule), (2, "unordered-float-reduce"));
        // A map/collect without a reduction is fine.
        let ok = "fn f(xs: &[f64]) -> Vec<f64> {\n    xs.par_iter().map(|x| x * 2.0).collect()\n}\n";
        assert!(analyze_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn d3_accepts_safety_on_line_or_above() {
        let above = "fn f(v: &mut Vec<u8>) {\n    // SAFETY: capacity reserved above.\n    unsafe { v.set_len(4) }\n}\n";
        assert!(analyze_source("crates/core/src/x.rs", above).is_empty());
        let inline = "fn f(v: &mut Vec<u8>) {\n    unsafe { v.set_len(4) } // SAFETY: capacity reserved above.\n}\n";
        assert!(analyze_source("crates/core/src/x.rs", inline).is_empty());
        let missing = "fn f(v: &mut Vec<u8>) {\n    unsafe { v.set_len(4) }\n}\n";
        let v = analyze_source("crates/core/src/x.rs", missing);
        assert_eq!((v[0].line, v[0].rule), (2, "unsafe-without-safety"));
    }

    #[test]
    fn d3_skips_unsafe_declarations() {
        let src = "unsafe fn raw() {}\nunsafe impl Send for X {}\n";
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d5_comm_impls_in_parcomm_and_spans_elsewhere() {
        // Inside an `impl Comm for …` block: in scope.
        let in_impl = "struct X;\nimpl Comm for X {\n    fn f(&self, x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let v = analyze_source("crates/parcomm/src/lib.rs", in_impl);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].line, v[0].rule), (3, "panic-in-spmd"));
        // Default methods of the `Comm` trait declaration: in scope.
        let in_trait = "trait Comm {\n    fn f(&self, x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(!analyze_source("crates/parcomm/src/lib.rs", in_trait).is_empty());
        // A free helper fn in the same file: no longer in D5 scope.
        let bare = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(analyze_source("crates/parcomm/src/lib.rs", bare).is_empty());
        // Outside parcomm, only rank-closure spans are checked.
        assert!(analyze_source("crates/bench/src/x.rs", bare).is_empty());
        let spmd = "fn go() {\n    let r = run_spmd(4, |c| {\n        c.stats().total.checked_add(1).unwrap()\n    });\n    r.first().unwrap();\n}\n";
        let v = analyze_source("crates/bench/src/x.rs", spmd);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3, "only the line inside the call span fires: {v:?}");
    }

    #[test]
    fn d5_does_not_fire_on_non_panicking_cousins() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }\nfn g(r: Result<u8, u8>) -> u8 { r.unwrap_or_else(|e| e) }\n";
        assert!(analyze_source("crates/parcomm/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d6_catches_collisions_unused_and_undeclared() {
        let src = "mod kind {\n    pub const A: u8 = 1;\n    pub const B: u8 = 1;\n    pub const C: u8 = 3;\n}\nfn f() -> (u8, u8) { (kind::A, kind::D) }\n";
        let v = analyze_source("crates/parcomm/src/x.rs", src);
        let got: Vec<(usize, &str)> =
            v.iter().map(|v| (v.line, v.message.split(['`']).nth(1).unwrap_or(""))).collect();
        assert!(v.iter().all(|v| v.rule == "wire-kind-table"), "{v:?}");
        assert!(got.contains(&(3, "B")), "collision at decl line: {got:?}");
        assert!(got.contains(&(4, "C")), "unused kind: {got:?}");
        assert!(got.contains(&(6, "kind::D")) || got.contains(&(6, "D")), "undeclared: {got:?}");
    }
}
