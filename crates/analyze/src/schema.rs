//! Schema validation for the committed `BENCH_*.json` baselines.
//!
//! Every bench binary hand-writes its JSON (the workspace has no serde),
//! which historically let key drift ship silently: a writer renames
//! `wall_s` → `wall_max_rank_s`, the committed baseline keeps the old
//! shape, and the first consumer to notice is a human reading a figure.
//! `geo-analyze bench-schema` pins the shape: each committed baseline must
//! be well-formed JSON, carry its expected top-level keys, and carry the
//! per-row timing keys (`wall_max_rank_s`, `ns_per_point`, …) the perf
//! gate and the figure scripts read. Unknown `BENCH_*.json` files fail
//! too: a new bench must register its schema here in the same PR.

use std::path::Path;

use crate::json::{parse, Value};

/// Expected shape of one committed bench file.
struct BenchSchema {
    file: &'static str,
    /// Required top-level keys.
    top: &'static [&'static str],
    /// `(array key path, required keys of each row)` — `path` addresses a
    /// top-level array (or `a.b` for an array one object deep).
    rows: &'static [(&'static str, &'static [&'static str])],
}

/// The registry. Key lists mirror what the perf gate
/// (`crates/bench/tests/perf_gate.rs`) and the figure scripts consume.
const SCHEMAS: &[BenchSchema] = &[
    BenchSchema {
        file: "BENCH_hierarchy.json",
        top: &["bench", "mesh", "epsilon", "cost_model", "static", "dynamic"],
        rows: &[(
            "static",
            &["config", "machine", "wall_s", "wall_max_rank_s", "ns_per_point", "imbalance"],
        )],
    },
    BenchSchema {
        file: "BENCH_multilevel.json",
        top: &["bench", "meshes", "n", "seed", "k", "epsilon", "coarsest_vertices", "rows"],
        rows: &[("rows", &["mesh", "tool", "cut_initial", "single", "multilevel"])],
    },
    BenchSchema {
        file: "BENCH_pipeline.json",
        top: &["bench", "tool", "mesh", "cost_model", "runs"],
        rows: &[(
            "runs",
            &[
                "p",
                "k",
                "wall_serialized_s",
                "wall_max_rank_s",
                "ns_per_point",
                "modeled_parallel_s",
                "rounds",
                "bytes_per_rank",
                "per_op",
            ],
        )],
    },
    BenchSchema {
        file: "BENCH_planner.json",
        top: &[
            "bench",
            "mesh",
            "scenario",
            "k",
            "p",
            "machine",
            "epsilon",
            "stacked_vs_best_single",
            "stacked_final_levels",
            "configs",
        ],
        rows: &[(
            "configs",
            &["config", "subsystems", "wall_s", "wall_max_rank_s", "ns_per_point", "steps"],
        )],
    },
    BenchSchema {
        file: "BENCH_proc.json",
        top: &["experiment", "description", "calibration", "collective_workloads", "tool_runs"],
        rows: &[
            (
                "collective_workloads",
                &["p", "rounds", "bytes_per_rank", "measured_seconds"],
            ),
            (
                "tool_runs",
                &[
                    "tool",
                    "n",
                    "p",
                    "assignments_agree_with_thread_backend",
                    "rounds",
                    "bytes_per_rank",
                    "proc_wall_seconds",
                ],
            ),
        ],
    },
    BenchSchema {
        file: "BENCH_repartition.json",
        top: &["bench", "scenario", "k", "p", "epsilon", "cold_vs_warm", "tools"],
        rows: &[(
            "tools",
            &["tool", "total_wall_s", "resteps_wall_s", "resteps_max_rank_wall_s", "steps"],
        )],
    },
    BenchSchema {
        file: "BENCH_scale.json",
        top: &[
            "bench",
            "tool",
            "mesh",
            "k",
            "epsilon",
            "gate",
            "kernel_reference",
            "pipeline_reference",
            "runs",
        ],
        rows: &[(
            "runs",
            &[
                "n",
                "p",
                "k",
                "wall_serialized_s",
                "wall_max_rank_s",
                "total_ns_per_point",
                "phases",
                "assignment",
            ],
        )],
    },
];

/// Validate one bench file's text against its registered schema. Returns
/// human-readable problems (empty = clean).
pub fn check_bench_file(file: &str, text: &str) -> Vec<String> {
    let Some(schema) = SCHEMAS.iter().find(|s| s.file == file) else {
        return vec![format!(
            "{file}: no schema registered — add its expected keys to \
             crates/analyze/src/schema.rs in the PR that introduces it"
        )];
    };
    let doc = match parse(text) {
        Ok(d) => d,
        Err(e) => return vec![format!("{file}: malformed JSON: {e}")],
    };
    let mut errs = Vec::new();
    for key in schema.top {
        if doc.get(key).is_none() {
            errs.push(format!("{file}: missing top-level key `{key}`"));
        }
    }
    for (path, required) in schema.rows {
        let Some(rows) = doc.get(path).and_then(Value::items) else {
            // Missing top-level key already reported; a non-array is new.
            if doc.get(path).is_some() {
                errs.push(format!("{file}: `{path}` must be an array"));
            }
            continue;
        };
        for (i, row) in rows.iter().enumerate() {
            for key in *required {
                if row.get(key).is_none() {
                    errs.push(format!("{file}: `{path}[{i}]` missing key `{key}`"));
                }
            }
        }
    }
    errs.extend(check_timing_pairs(file, &doc));
    errs
}

/// Cross-cutting invariant: every phase-timing object that reports
/// `seconds` must also report `ns_per_point` and both must be numbers —
/// the pair the scaling analysis divides. Walks the whole document.
fn check_timing_pairs(file: &str, v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    walk(v, "$", &mut |path, val| {
        if let Some(fields) = val.fields() {
            let has_seconds = fields.iter().any(|(k, _)| k == "seconds");
            if has_seconds {
                match val.get("ns_per_point") {
                    None => errs.push(format!(
                        "{file}: {path} has `seconds` but no `ns_per_point`"
                    )),
                    Some(n) if !n.is_num() => {
                        errs.push(format!("{file}: {path}.ns_per_point is not a number"));
                    }
                    _ => {}
                }
                if !val.get("seconds").is_some_and(Value::is_num) {
                    errs.push(format!("{file}: {path}.seconds is not a number"));
                }
            }
        }
    });
    errs
}

fn walk(v: &Value, path: &str, f: &mut impl FnMut(&str, &Value)) {
    f(path, v);
    match v {
        Value::Obj(fields) => {
            for (k, child) in fields {
                walk(child, &format!("{path}.{k}"), f);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(child, &format!("{path}[{i}]"), f);
            }
        }
        _ => {}
    }
}

/// Validate every `BENCH_*.json` directly under `root`.
pub fn check_bench_dir(root: &Path) -> std::io::Result<Vec<String>> {
    let mut errs = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") && entry.path().is_file() {
            names.push(name);
        }
    }
    names.sort();
    if names.is_empty() {
        errs.push(format!("no BENCH_*.json files found under {}", root.display()));
    }
    for name in names {
        let text = std::fs::read_to_string(root.join(&name))?;
        errs.extend(check_bench_file(&name, &text));
    }
    Ok(errs)
}

/// Names like `BENCH_foo.json` mentioned anywhere in `text`.
pub fn bench_refs(text: &str) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(off) = text[i..].find("BENCH_") {
        let start = i + off;
        let mut end = start + "BENCH_".len();
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        if end > start + "BENCH_".len() && text[end..].starts_with(".json") {
            out.insert(text[start..end + ".json".len()].to_string());
        }
        i = end;
    }
    out
}

/// Docs ↔ disk cross-check: every committed `BENCH_*.json` must be
/// discussed in README.md or DESIGN.md (an orphaned baseline is dead
/// weight nobody interprets), and every baseline the docs cite must be
/// committed (a dangling reference misleads readers). Both directions
/// are errors.
pub fn check_bench_docs(root: &Path) -> std::io::Result<Vec<String>> {
    let mut errs = Vec::new();
    let mut on_disk = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") && entry.path().is_file() {
            on_disk.insert(name);
        }
    }
    let mut referenced = std::collections::BTreeSet::new();
    for doc in ["README.md", "DESIGN.md"] {
        let p = root.join(doc);
        if p.is_file() {
            referenced.extend(bench_refs(&std::fs::read_to_string(p)?));
        }
    }
    for name in &on_disk {
        if !referenced.contains(name) {
            errs.push(format!(
                "{name}: orphaned baseline — committed but never referenced in README.md or DESIGN.md"
            ));
        }
    }
    for name in &referenced {
        if !on_disk.contains(name) {
            errs.push(format!(
                "{name}: dangling reference — cited in the docs but not committed at the repo root"
            ));
        }
    }
    Ok(errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_refs_extracts_exact_names() {
        let text = "See `BENCH_scale.json` and BENCH_proc.json; ignore BENCH_ and\n\
                    BENCH_partial (no extension) and bench_lower.json.";
        let refs = bench_refs(text);
        let want: Vec<&str> = vec!["BENCH_proc.json", "BENCH_scale.json"];
        assert_eq!(refs.iter().map(String::as_str).collect::<Vec<_>>(), want);
    }

    #[test]
    fn orphaned_and_dangling_baselines_are_both_errors() {
        let root = std::env::temp_dir().join("geo_analyze_bench_docs_check");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("BENCH_orphan.json"), "{}").unwrap();
        std::fs::write(root.join("README.md"), "cites BENCH_ghost.json only").unwrap();
        let errs = check_bench_docs(&root).unwrap();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].contains("BENCH_orphan.json") && errs[0].contains("orphaned"));
        assert!(errs[1].contains("BENCH_ghost.json") && errs[1].contains("dangling"));
    }

    #[test]
    fn unknown_bench_files_must_register() {
        let errs = check_bench_file("BENCH_new_thing.json", "{}");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("no schema registered"), "{errs:?}");
    }

    #[test]
    fn missing_keys_are_reported_per_row() {
        let text = r#"{"bench": "pipeline", "tool": "t", "mesh": {}, "cost_model": {},
                       "runs": [{"p": 2, "k": 4, "wall_serialized_s": 0.1}]}"#;
        let errs = check_bench_file("BENCH_pipeline.json", text);
        assert!(errs.iter().any(|e| e.contains("`runs[0]` missing key `wall_max_rank_s`")),
            "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("missing key `ns_per_point`")), "{errs:?}");
    }

    #[test]
    fn seconds_without_ns_per_point_is_drift() {
        let text = r#"{"bench": "b", "tool": "t", "mesh": {}, "k": 1, "epsilon": 0.1,
                       "gate": {}, "kernel_reference": {}, "pipeline_reference": {},
                       "runs": [{"n": 1, "p": 1, "k": 1, "wall_serialized_s": 1,
                                 "wall_max_rank_s": 1, "total_ns_per_point": 1,
                                 "phases": {"kmeans": {"seconds": 0.5}},
                                 "assignment": {"seconds": 0.2, "ns_per_point": 3.0}}]}"#;
        let errs = check_bench_file("BENCH_scale.json", text);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("phases.kmeans has `seconds` but no `ns_per_point`"));
    }

    #[test]
    fn malformed_json_is_one_clear_error() {
        let errs = check_bench_file("BENCH_scale.json", "{ not json");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("malformed JSON"), "{errs:?}");
    }
}
